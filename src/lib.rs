//! # Bellamy — reusable performance models for distributed dataflow jobs
//!
//! A from-scratch Rust reproduction of *Bellamy: Reusing Performance Models
//! for Distributed Dataflow Jobs Across Contexts* (Scheinert et al., IEEE
//! CLUSTER 2021, arXiv:2107.13921).
//!
//! Bellamy predicts the runtime of a distributed dataflow job (Spark-like)
//! from its horizontal scale-out **and** descriptive properties of the
//! execution context (node type, dataset size and characteristics, job
//! parameters). Encoding the context lets one model learn from historical
//! executions *across* contexts: pre-train a general model per algorithm,
//! then fine-tune it in seconds for the concrete situation at hand.
//!
//! ## Quickstart
//!
//! ```
//! use bellamy::prelude::*;
//!
//! // Synthetic stand-in for the public C3O traces (same shape).
//! let data = generate_c3o(&GeneratorConfig::seeded(42));
//!
//! // Pre-train a general model for one algorithm on *other* contexts ...
//! let target = data.contexts_for(Algorithm::Grep)[0];
//! let history: Vec<TrainingSample> = data
//!     .runs_for_algorithm_excluding(Algorithm::Grep, Some(target.id))
//!     .iter()
//!     .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
//!     .collect();
//! let mut model = Bellamy::new(BellamyConfig::default(), 7);
//! pretrain(&mut model, &history, &PretrainConfig { epochs: 30, ..Default::default() }, 7);
//!
//! // ... then fine-tune on a few observations from the new context ...
//! let few: Vec<TrainingSample> = data
//!     .runs_for_context(target.id)
//!     .iter()
//!     .take(3)
//!     .map(|r| TrainingSample::from_run(target, r))
//!     .collect();
//! fine_tune(
//!     &mut model,
//!     &few,
//!     &FinetuneConfig { max_epochs: 50, ..Default::default() },
//!     ReuseStrategy::PartialUnfreeze,
//!     7,
//! );
//!
//! // ... publish an immutable snapshot and predict at an unseen scale-out.
//! let state = model.snapshot().expect("fitted");
//! let props = context_properties(target);
//! let predicted = state.predict(8.0, &props);
//! assert!(predicted.is_finite() && predicted > 0.0);
//! ```
//!
//! For the full *recall → fine-tune → serve* reuse workflow (shared
//! pretrained models, on-disk registry, fine-tuned-descendant cache,
//! cross-caller micro-batched serving), go through the
//! [`core::serve::Service`] front door — see the [`prelude`] docs for the
//! 5-line quickstart and the `quickstart` / `pretrain_finetune` examples
//! for the long form.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`core`] (re-export of `bellamy-core`) | the model, pre-training, fine-tuning, reuse strategies, hyperparameter search, resource allocation |
//! | [`baselines`] | Ernest (NNLS) and Bell, the paper's comparison methods |
//! | [`data`] | synthetic C3O / Bell trace generators, CSV I/O |
//! | [`eval`] | the paper's split protocol and experiment runners (Figs. 5–8) |
//! | [`encoding`] | property encoders (binarizer, hashing vectorizer) |
//! | [`nn`] / [`autograd`] / [`linalg`] | the neural-network substrate built for this reproduction |
//! | [`par`] | the thread-pool / parallel-map substrate |
//! | [`telemetry`] | lock-free metrics registry, structured event log, JSON/Prometheus exporters |
//!
//! Run `cargo run --release -p bench --bin repro -- all` to regenerate every
//! table and figure of the paper's evaluation section; see `EXPERIMENTS.md`
//! for recorded results.

pub use bellamy_autograd as autograd;
pub use bellamy_baselines as baselines;
pub use bellamy_core as core;
pub use bellamy_data as data;
pub use bellamy_encoding as encoding;
pub use bellamy_eval as eval;
pub use bellamy_linalg as linalg;
pub use bellamy_nn as nn;
pub use bellamy_par as par;
pub use bellamy_telemetry as telemetry;

/// The most common imports in one place.
///
/// The serving front door is five lines end to end — build a [`Service`](bellamy_core::Service),
/// get a client (pre-training only on the first request for the key),
/// fine-tune for the context at hand, predict:
///
/// ```
/// use bellamy::prelude::*;
///
/// # let data = generate_c3o(&GeneratorConfig::seeded(1));
/// # let target = data.contexts_for(Algorithm::Grep)[0];
/// # let history = || data
/// #     .runs_for_algorithm_excluding(Algorithm::Grep, Some(target.id))
/// #     .iter().take(60)
/// #     .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
/// #     .collect::<Vec<_>>();
/// # let observed: Vec<TrainingSample> = data.runs_for_context(target.id)
/// #     .iter().take(3).map(|r| TrainingSample::from_run(target, r)).collect();
/// # let props = context_properties(target);
/// # let quick = PretrainConfig { epochs: 5, ..PretrainConfig::default() };
/// # let policy = FinetunePolicy {
/// #     config: FinetuneConfig { max_epochs: 20, patience: 10, ..FinetuneConfig::default() },
/// #     ..FinetunePolicy::default()
/// # };
/// let service = Service::builder().finetune_policy(policy).build()?;
/// let key = ModelKey::new("grep", "runtime", &BellamyConfig::default());
/// let general = service.client_or_pretrain(&key, &quick, 7, history)?;
/// let tuned = service.finetuned_client(&key, "new-context", &observed)?;
/// let runtime_s = tuned.predict(8.0, &props)?;
/// # assert!(runtime_s.is_finite());
///
/// // Every layer is instrumented: one snapshot call exposes serve latency
/// // histograms, hub recall metrics, train-step timing, and the kernel
/// // resolution — renderable as JSON or Prometheus text for a scrape loop.
/// let snapshot = service.telemetry();
/// assert!(snapshot.counter("bellamy_serve_queries_total") >= Some(1));
/// let _scrape_body = snapshot.to_prometheus();
/// # Ok::<(), BellamyError>(())
/// ```
///
/// Single-query `predict` calls are micro-batched **across callers**: any
/// number of threads share one clonable client (or clones of it), and the
/// serving loop coalesces their queries into one batched forward pass —
/// bit-identical to direct [`Predictor`](bellamy_core::Predictor) calls.
pub mod prelude {
    pub use bellamy_baselines::{BellModel, ErnestModel, ScaleOutModel};
    pub use bellamy_core::finetune::{fine_tune, fit_local};
    pub use bellamy_core::train::pretrain;
    pub use bellamy_core::{
        cheapest_scale_out, context_properties, min_scale_out_meeting, search_pretrain,
        BatcherConfig, BatcherStats, Bellamy, BellamyConfig, BellamyError, ContextProperties,
        Event, FinetuneConfig, FinetunePolicy, FlushPolicy, HistogramSnapshot, HubError,
        MetricValue, ModelClient, ModelHub, ModelKey, ModelState, PredictError, PredictQuery,
        Predictor, PretrainConfig, ReuseStrategy, Sample, SearchSpace, Service, ServiceBuilder,
        TelemetrySnapshot, TrainingSample,
    };
    pub use bellamy_data::{
        generate_bell, generate_c3o, ground_truth_profile, Algorithm, Dataset, Environment,
        GeneratorConfig, JobContext, JobRun, NodeType,
    };
    pub use bellamy_encoding::PropertyValue;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_workflow() {
        let data = generate_c3o(&GeneratorConfig::seeded(1));
        assert_eq!(data.contexts.len(), 155);
        let model = Bellamy::new(BellamyConfig::default(), 0);
        assert!(!model.is_fitted());
    }
}
