//! Offline shim for `crossbeam`.
//!
//! Provides the `channel::unbounded` MPMC channel the worker pool is built
//! on: cloneable senders *and* receivers, blocking `recv` that drains
//! remaining messages after all senders disconnect, and a blocking iterator.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<ChannelState<T>>,
        ready: Condvar,
    }

    struct ChannelState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like the real crate: the payload may not be Debug.
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is closed and
    /// drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(ChannelState {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors once the channel is closed
        /// *and* empty (pending messages are always delivered first).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    /// Blocking message iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn fan_in_fan_out() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let senders: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for j in 0..25 {
                        tx.send(i * 100 + j).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let collector = std::thread::spawn(move || rx2.iter().count());
        let direct = rx.iter().count();
        for s in senders {
            s.join().unwrap();
        }
        assert_eq!(direct + collector.join().unwrap(), 100);
    }

    #[test]
    fn recv_drains_after_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
