//! Offline shim for `serde`.
//!
//! The real serde abstracts over data formats; this workspace only ever
//! serializes to JSON (via the sibling `serde_json` shim), so the shim
//! collapses the data model to one tree type, [`Value`], and two traits:
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`] rebuilds it.
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! `serde_derive` shim) generate those impls for plain structs and enums,
//! honouring `#[serde(skip, default)]` on fields.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (serde_json's default map preserves
/// order only with a feature flag; for deterministic output the shim always
/// does).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without a
    /// fractional part).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element access; anything out of shape yields `Null` (matching
    /// serde_json's forgiving `Index`).
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field access; anything out of shape yields `Null`.
    fn index(&self, key: &str) -> &Value {
        self.get_field(key).unwrap_or(&NULL)
    }
}

macro_rules! value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_num!(i32, i64, u32, u64, usize, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Renders a value into the JSON data model.
pub trait Serialize {
    /// The JSON shape of `self`.
    fn to_json_value(&self) -> Value;
}

/// Rebuilds a value from the JSON data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_json_value(v: &Value) -> Result<Self, String>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_json_value(item)?;
                }
                Ok(out)
            }
            other => Err(format!("expected array of length {N}, got {other:?}")),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
                .collect(),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_forgiving() {
        let v = Value::Array(vec![Value::Object(vec![(
            "k".to_string(),
            Value::Number(3.0),
        )])]);
        assert_eq!(v[0]["k"], 3);
        assert_eq!(v[0]["missing"], Value::Null);
        assert_eq!(v[9], Value::Null);
    }

    #[test]
    fn primitives_round_trip() {
        for n in [0u64, 1, 153_600, 1 << 52] {
            let v = n.to_json_value();
            assert_eq!(u64::from_json_value(&v).unwrap(), n);
        }
        let v = Some("hi".to_string()).to_json_value();
        assert_eq!(
            Option::<String>::from_json_value(&v).unwrap().as_deref(),
            Some("hi")
        );
        assert_eq!(
            Option::<String>::from_json_value(&Value::Null).unwrap(),
            None
        );
    }
}
