//! Offline shim for the `rand` crate (0.10 API subset).
//!
//! Provides a deterministic, seedable generator ([`rngs::StdRng`], a
//! xoshiro256++ seeded through SplitMix64) plus the [`Rng`] core trait, the
//! [`RngExt`] extension trait carrying `random`/`random_range`/`random_bool`,
//! and [`SeedableRng::seed_from_u64`]. Determinism is the only contract the
//! workspace relies on: the same seed yields the same stream on every
//! platform and build. The algorithm intentionally differs from upstream
//! rand's ChaCha12 — nothing here requires cryptographic strength, and
//! xoshiro keeps the training loop's mask draws cheap.

use std::ops::{Range, RangeInclusive};

/// Core random source: everything is derived from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable uniformly from an [`Rng`] via [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn draw(rng: &mut impl Rng) -> Self;
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw(rng: &mut impl Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for u64 {
    fn draw(rng: &mut impl Rng) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn draw(rng: &mut impl Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardUniform for u8 {
    fn draw(rng: &mut impl Rng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardUniform for bool {
    fn draw(rng: &mut impl Rng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from(self, rng: &mut impl Rng) -> T;
}

/// Unbiased integer draw from `[0, span)` via Lemire-style rejection.
fn uniform_below(rng: &mut impl Rng, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from(self, rng: &mut impl Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Convenience drawing methods; blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw of `T` (see [`StandardUniform`]).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// state-initialized with SplitMix64, per Blackman & Vigna's reference
    /// seeding procedure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        let mut hit_hi = false;
        for _ in 0..200 {
            let v = r.random_range(0..=3u64);
            assert!(v <= 3);
            hit_hi |= v == 3;
        }
        assert!(hit_hi, "inclusive upper bound must be reachable");
        for _ in 0..100 {
            let v = r.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
