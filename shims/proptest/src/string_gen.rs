//! String generation from regex literals.
//!
//! proptest treats `&str` strategies as generation regexes; this module
//! implements the subset the workspace's patterns use: literal characters,
//! character classes with ranges (`[a-z0-9 -~]`), groups `( ... )`, and the
//! quantifiers `?`, `*`, `+`, `{n}`, `{m,n}`. Unsupported syntax panics
//! with the offending pattern, so a new test pattern fails loudly instead of
//! generating garbage.

use crate::test_runner::TestRng;
use rand::RngExt;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<(Node, Quant)>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    lo: usize,
    hi: usize,
}

const ONCE: Quant = Quant { lo: 1, hi: 1 };

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let seq = parse_sequence(pattern, &chars, &mut pos, false);
    assert!(pos == chars.len(), "unbalanced ')' in pattern {pattern:?}");
    let mut out = String::new();
    emit_sequence(&seq, rng, &mut out);
    out
}

fn parse_sequence(
    pattern: &str,
    chars: &[char],
    pos: &mut usize,
    in_group: bool,
) -> Vec<(Node, Quant)> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let node = match chars[*pos] {
            ')' if in_group => break,
            '(' => {
                *pos += 1;
                let inner = parse_sequence(pattern, chars, pos, true);
                assert!(
                    chars.get(*pos) == Some(&')'),
                    "unterminated group in pattern {pattern:?}"
                );
                *pos += 1;
                Node::Group(inner)
            }
            '[' => {
                *pos += 1;
                Node::Class(parse_class(pattern, chars, pos))
            }
            '\\' => {
                *pos += 1;
                let c = *chars
                    .get(*pos)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                *pos += 1;
                match c {
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    c => Node::Literal(c),
                }
            }
            '.' => {
                *pos += 1;
                // "Any character", narrowed to printable ASCII.
                Node::Class(vec![(' ', '~')])
            }
            c @ ('|' | '^' | '$') => {
                panic!("regex feature {c:?} not supported by the proptest shim: {pattern:?}")
            }
            c => {
                *pos += 1;
                Node::Literal(c)
            }
        };
        // '(' and '[' handle their own cursor; literals advanced above.
        let quant = parse_quant(pattern, chars, pos);
        seq.push((node, quant));
    }
    seq
}

fn parse_class(pattern: &str, chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    assert!(
        chars.get(*pos) != Some(&'^'),
        "negated classes not supported by the proptest shim: {pattern:?}"
    );
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = chars[*pos];
        *pos += 1;
        if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1).is_some_and(|&c| c != ']') {
            let hi = chars[*pos + 1];
            assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
            ranges.push((lo, hi));
            *pos += 2;
        } else {
            ranges.push((lo, lo));
        }
    }
    assert!(
        chars.get(*pos) == Some(&']'),
        "unterminated class in pattern {pattern:?}"
    );
    *pos += 1;
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    ranges
}

fn parse_quant(pattern: &str, chars: &[char], pos: &mut usize) -> Quant {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Quant { lo: 0, hi: 1 }
        }
        Some('*') => {
            *pos += 1;
            Quant { lo: 0, hi: 8 }
        }
        Some('+') => {
            *pos += 1;
            Quant { lo: 1, hi: 8 }
        }
        Some('{') => {
            *pos += 1;
            let mut lo = String::new();
            while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                lo.push(chars[*pos]);
                *pos += 1;
            }
            let lo: usize = lo
                .parse()
                .unwrap_or_else(|_| panic!("malformed {{m,n}} quantifier in pattern {pattern:?}"));
            let hi = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                let mut hi = String::new();
                while chars.get(*pos).is_some_and(|c| c.is_ascii_digit()) {
                    hi.push(chars[*pos]);
                    *pos += 1;
                }
                hi.parse().unwrap_or_else(|_| {
                    panic!("open-ended {{m,}} quantifier not supported: {pattern:?}")
                })
            } else {
                lo
            };
            assert!(
                chars.get(*pos) == Some(&'}') && lo <= hi,
                "malformed quantifier in pattern {pattern:?}"
            );
            *pos += 1;
            Quant { lo, hi }
        }
        _ => ONCE,
    }
}

fn emit_sequence(seq: &[(Node, Quant)], rng: &mut TestRng, out: &mut String) {
    for (node, quant) in seq {
        let reps = rng.rng().random_range(quant.lo..=quant.hi);
        for _ in 0..reps {
            match node {
                Node::Literal(c) => out.push(*c),
                Node::Class(ranges) => {
                    let idx = rng.rng().random_range(0..ranges.len());
                    let (lo, hi) = ranges[idx];
                    let c = rng.rng().random_range(lo as u32..=hi as u32);
                    out.push(char::from_u32(c).expect("class ranges are valid chars"));
                }
                Node::Group(inner) => emit_sequence(inner, rng, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string_gen")
    }

    #[test]
    fn class_with_repetition() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{3,12}", &mut r);
            assert!((3..=12).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_class() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ -~]{0,32}", &mut r);
            assert!(s.len() <= 32);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn optional_group() {
        let mut r = rng();
        let mut with = false;
        let mut without = false;
        for _ in 0..200 {
            let s = generate("[a-z]{3,12}(-[a-z]{3,10})?", &mut r);
            match s.split_once('-') {
                Some((head, tail)) => {
                    with = true;
                    assert!((3..=12).contains(&head.len()), "{s:?}");
                    assert!((3..=10).contains(&tail.len()), "{s:?}");
                }
                None => {
                    without = true;
                    assert!((3..=12).contains(&s.len()), "{s:?}");
                }
            }
        }
        assert!(with && without, "both branches of '?' must occur");
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn unsupported_syntax_is_loud() {
        let _ = generate("a|b", &mut rng());
    }
}
