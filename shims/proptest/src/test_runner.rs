//! Runner plumbing: per-test deterministic RNG, configuration, and the
//! error type threaded through generated test bodies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed.
    Fail(String),
    /// A `prop_assume!` filtered the inputs out.
    Reject,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// An input rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }

    /// True for rejections (which re-draw rather than fail).
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "input rejected by prop_assume"),
        }
    }
}

/// The generator handed to strategies. Seeded from the test's name so every
/// run of a given property explores the same deterministic input sequence.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
