//! Offline shim for `proptest`.
//!
//! A deterministic property-testing harness exposing the subset of
//! proptest's API this workspace uses: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, [`collection::vec`],
//! regex-literal string strategies, `prop_oneof!`, and the `prop_assert*`
//! macros.
//!
//! Differences from upstream, by design: no shrinking (a failing case
//! reports its inputs via the assertion message instead), and cases are
//! generated from a fixed per-test seed, so every run explores the same
//! inputs — CI failures reproduce locally by construction.

pub mod collection;
pub mod strategy;
pub mod string_gen;
pub mod test_runner;

pub mod prelude {
    //! The glob import used by test files.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0usize..10, (a, b) in (0f64..1.0, 0f64..1.0)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(let $pat = $crate::strategy::Strategy::new_value(&$strat, &mut __rng);)+
                    #[allow(unreachable_code)]
                    (|| { $body ::std::result::Result::Ok(()) })()
                };
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err(e) if e.is_reject() => {
                        __rejected += 1;
                        assert!(
                            __rejected < 1_000 + 100 * __config.cases,
                            "prop_assume rejected too many cases in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err(e) =>

                        panic!("property {} failed: {}", stringify!($name), e),
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}

/// Discards the current case (re-drawing fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Chooses uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
