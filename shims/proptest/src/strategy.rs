//! The [`Strategy`] trait and the combinators the workspace's property
//! tests compose: `prop_map`, `prop_flat_map`, `prop_filter`, tuples,
//! numeric ranges, [`Just`], [`any`], and boxed unions for `prop_oneof!`.

use crate::test_runner::TestRng;
use rand::{RngExt, SampleRange};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Object safe: the combinator methods are `Self: Sized`, so
/// `Box<dyn Strategy<Value = V>>` works (see [`boxed`]).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `keep` (re-drawing, up to a bounded
    /// number of attempts).
    fn prop_filter<R, F>(self, reason: R, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            keep,
            reason: reason.into(),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    keep: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.new_value(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive draws: {}",
            self.reason
        )
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform draws of a whole type; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The strategy behind `any::<T>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Types `any::<T>()` can produce.
pub trait ArbitraryValue {
    /// One uniform draw.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().random::<$t>()
            }
        }
    )*};
}

impl_arbitrary!(bool, u8, u32, u64, f64);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng.rng())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng.rng())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// A boxed strategy, for heterogeneous unions.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Boxes a strategy (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// Uniform choice between strategies with a common value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.rng().random_range(0..self.options.len());
        self.options[idx].new_value(rng)
    }
}

impl Strategy for &'static str {
    type Value = String;

    /// A string literal is interpreted as a generation regex (see
    /// [`crate::string_gen`]).
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string_gen::generate(self, rng)
    }
}
