//! Offline shim for `serde_derive`.
//!
//! Hand-rolled derive macros (the build has no `syn`/`quote`): the input
//! token stream is walked directly and the generated impl is assembled as a
//! string. Supported shapes — everything this workspace derives on:
//!
//! - structs with named fields (no generics),
//! - enums with unit variants and/or single-field tuple variants,
//! - the `#[serde(skip)]` / `#[serde(skip, default)]` field attribute
//!   (skipped on serialize, `Default::default()` on deserialize).
//!
//! Unit variants serialize as `"VariantName"`; single-field tuple variants
//! use serde's external tagging, `{"VariantName": value}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Variant {
    Unit(String),
    Newtype(String),
}

enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// True when an attribute body (the tokens inside `#[...]`) is a
/// `serde(...)` list containing the `skip` flag.
fn attr_has_serde_skip(tokens: &[TokenTree]) -> bool {
    let mut iter = tokens.iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes, reporting whether any was
/// `#[serde(skip)]`.
fn eat_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                skip |= attr_has_serde_skip(&inner);
            }
            other => panic!("malformed attribute after '#': {other:?}"),
        }
    }
    skip
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_visibility(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_struct_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let skip = eat_attrs(&mut tokens);
        eat_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field {name}, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for t in tokens.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_enum_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let _ = eat_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = 1 + g
                    .stream()
                    .into_iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ',' ))
                    .count();
                assert_eq!(
                    arity, 1,
                    "derive shim supports single-field tuple variants only ({name} has {arity})"
                );
                tokens.next();
                variants.push(Variant::Newtype(name));
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Consume up to (and including) the separating comma.
        for t in tokens.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    let _ = eat_attrs(&mut tokens);
    eat_visibility(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected 'struct' or 'enum', got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "derive shim supports non-generic brace-bodied types only; after {name}: {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_struct_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_enum_variants(body),
        },
        other => panic!("cannot derive for '{other}'"),
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n"
            ));
            for f in fields.iter().filter(|f| !f.skip) {
                out.push_str(&format!(
                    "fields.push((\"{0}\".to_string(), ::serde::Serialize::to_json_value(&self.{0})));\n",
                    f.name
                ));
            }
            out.push_str("::serde::Value::Object(fields)\n}\n}\n");
        }
        Shape::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                 match self {{\n"
            ));
            for v in &variants {
                match v {
                    Variant::Unit(vn) => out.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Newtype(vn) => out.push_str(&format!(
                        "{name}::{vn}(inner) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_json_value(inner))]),\n"
                    )),
                }
            }
            out.push_str("}\n}\n}\n");
        }
    }
    out.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(v: &::serde::Value) -> Result<Self, String> {{\n\
                 Ok({name} {{\n"
            ));
            for f in &fields {
                if f.skip {
                    out.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    out.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_json_value(\
                         v.get_field(\"{0}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| format!(\"field {0}: {{e}}\"))?,\n",
                        f.name
                    ));
                }
            }
            out.push_str("})\n}\n}\n");
        }
        Shape::Enum { name, variants } => {
            out.push_str(&format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(v: &::serde::Value) -> Result<Self, String> {{\n\
                 match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n"
            ));
            for v in &variants {
                if let Variant::Unit(vn) = v {
                    out.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                }
            }
            out.push_str(&format!(
                "other => Err(format!(\"unknown {name} variant {{other}}\")),\n}},\n"
            ));
            out.push_str(
                "::serde::Value::Object(fields) if fields.len() == 1 => {\n\
                 let (tag, inner) = &fields[0];\n\
                 match tag.as_str() {\n",
            );
            for v in &variants {
                if let Variant::Newtype(vn) = v {
                    out.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_json_value(inner)?)),\n"
                    ));
                }
            }
            out.push_str(&format!(
                "other => Err(format!(\"unknown {name} variant {{other}}\")),\n}}\n}},\n\
                 other => Err(format!(\"cannot deserialize {name} from {{other:?}}\")),\n\
                 }}\n}}\n}}\n"
            ));
        }
    }
    out.parse().expect("generated Deserialize impl parses")
}
