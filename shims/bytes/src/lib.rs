//! Offline shim for the `bytes` crate.
//!
//! Implements exactly the [`Buf`]/[`BufMut`] subset the checkpoint codec in
//! `bellamy-nn` uses: little-endian integer/float cursors over `&[u8]` and
//! `Vec<u8>`. Semantics match the real crate for in-bounds reads; like the
//! real crate, reading past the end panics (callers bounds-check with
//! [`Buf::remaining`] first).

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Copies the next `len` bytes into an owned buffer, advancing.
    fn copy_to_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.copy_to_slice(&mut out);
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f64_le(-1.25e-300);
        buf.put_slice(b"tail");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_f64_le(), -1.25e-300);
        assert_eq!(r.copy_to_bytes(4), b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
