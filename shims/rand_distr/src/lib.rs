//! Offline shim for `rand_distr`: the [`Distribution`] trait plus the
//! [`Normal`] and [`LogNormal`] distributions the synthetic trace generators
//! draw measurement noise from. Normal deviates come from the Box–Muller
//! transform (one fresh pair of uniforms per draw, so streams stay
//! reproducible under any call pattern).

use rand::{Rng, StandardUniform};

/// A distribution over `T` sampled with an external generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0) {
            return Err(Error);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut rng = rng;
        // Box–Muller; reject u1 == 0 to keep ln finite.
        let u1 = loop {
            let u = f64::draw(&mut rng);
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2 = f64::draw(&mut rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal with the given parameters of the underlying
    /// normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(Self {
            normal: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(3.0, 2.0).unwrap();
        let n = 40_000;
        let draws: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_mean_one_parameterization() {
        // mu = -sigma^2/2 gives a mean-one multiplicative noise.
        let sigma = 0.25f64;
        let d = LogNormal::new(-sigma * sigma / 2.0, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 40_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        let positive = (0..1000).all(|_| d.sample(&mut rng) > 0.0);
        assert!(positive);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }
}
