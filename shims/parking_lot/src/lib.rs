//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: `lock`
//! returns a guard directly, and `Condvar::wait` takes the guard by `&mut`.
//! Lock poisoning is deliberately ignored (parking_lot has no poisoning), so
//! a panicking critical section does not cascade into every other user.

use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutex with parking_lot's panic-free `lock` signature.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the inner std guard.
    inner: Option<StdGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.0.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(inner) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Default, Debug)]
pub struct Condvar(StdCondvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(StdCondvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "shim must ignore poisoning");
    }
}
