//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API: `lock`
//! returns a guard directly, and `Condvar::wait` takes the guard by `&mut`.
//! Lock poisoning is deliberately ignored (parking_lot has no poisoning), so
//! a panicking critical section does not cascade into every other user.

use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutex with parking_lot's panic-free `lock` signature.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the inner std guard.
    inner: Option<StdGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.0.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(inner) }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Default, Debug)]
pub struct Condvar(StdCondvar);

/// Outcome of a timed wait: whether the timeout elapsed before a
/// notification arrived (same shape as parking_lot's type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(StdCondvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Blocks until notified or until `timeout` elapses, releasing the
    /// guard's lock while waiting. Spurious wake-ups are possible, exactly
    /// as with [`Condvar::wait`] — callers must re-check their predicate.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with parking_lot's panic-free `read`/`write`
/// signatures.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// RAII exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Acquires shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, std::time::Duration::from_millis(5));
        assert!(result.timed_out());
        // The guard still holds the lock afterwards.
        *guard += 1;
        drop(guard);
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn wait_for_wakes_on_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let _ = cv.wait_for(&mut ready, std::time::Duration::from_secs(5));
        }
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_allows_parallel_reads_and_exclusive_writes() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.read().iter().sum::<i32>())
            })
            .collect();
        for r in readers {
            assert_eq!(r.join().unwrap(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn rwlock_survives_a_panicked_writer() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 7, "shim must ignore poisoning");
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "shim must ignore poisoning");
    }
}
