//! Offline shim for `criterion`.
//!
//! A small wall-clock benchmark harness exposing the API the workspace's
//! bench targets use: `Criterion`, benchmark groups, `iter`/`iter_batched`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Reporting: every measurement prints a `name  time: [...]` line, and when
//! the `BELLAMY_BENCH_JSON` environment variable names a file, one JSON line
//! per benchmark (`{"name": ..., "mean_ns": ..., "samples": ...}`) is
//! appended to it — the hook the `bench_snapshot` helper builds
//! `BENCH_train.json` from.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collects and reports measurements.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 20,
        }
    }
}

/// How batched inputs are sized; accepted for API compatibility (the shim
/// always times one routine invocation per setup).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Inputs cheap enough to batch aggressively.
    SmallInput,
    /// Inputs too large to hold many of in memory.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier with a parameter, e.g. `square/64`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Joins a function name and a displayable parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{}/{parameter}", name.into()),
        }
    }
}

/// Runs timed closures for one benchmark.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Sample,
}

#[derive(Default)]
struct Sample {
    total: Duration,
    iters: u64,
}

/// Per-bench time budget: stop sampling once this much time is spent.
const BUDGET: Duration = Duration::from_millis(1500);
/// Minimum time we try to cover with timed iterations for stable means.
const TARGET: Duration = Duration::from_millis(120);

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warmup + calibration: find an iteration count that covers a
        // meaningful time slice.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = (TARGET.as_nanos() / self.samples.max(1) as u128)
            .div_ceil(once.as_nanos())
            .clamp(1, 1_000_000) as u64;

        let began = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.result.total += t.elapsed();
            self.result.iters += per_sample;
            if began.elapsed() > BUDGET {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let began = Instant::now();
        for _ in 0..self.samples.max(1) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.result.total += t.elapsed();
            self.result.iters += 1;
            if began.elapsed() > BUDGET {
                break;
            }
        }
    }
}

fn report(name: &str, sample: &Sample) {
    if sample.iters == 0 {
        println!("{name:<50} time: [no samples]");
        return;
    }
    let mean_ns = sample.total.as_nanos() as f64 / sample.iters as f64;
    println!("{name:<50} time: [{}]", format_ns(mean_ns));
    if let Ok(path) = std::env::var("BELLAMY_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"name\": \"{name}\", \"mean_ns\": {mean_ns}, \"samples\": {}}}",
                sample.iters
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

impl Criterion {
    fn run_one(&mut self, name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
        let mut sample = Sample::default();
        f(&mut Bencher {
            samples,
            result: &mut sample,
        });
        report(name, &sample);
    }

    /// Benchmarks a single function.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        self.run_one(&name, self.default_samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
            samples: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for subsequent benches in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n);
        self
    }

    /// Benchmarks a function under `group/name`.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.into());
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(&full, samples, &mut f);
        self
    }

    /// Benchmarks a function over an explicit input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, id.full);
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(&full, samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_batched_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| calls += v.len() as u64,
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("sized", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
