//! Offline shim for `serde_json`: renders the serde shim's [`Value`] model
//! to JSON text and parses it back. Non-finite numbers serialize as `null`
//! (the real crate's behaviour), objects print in insertion order, and the
//! pretty printer uses two-space indentation.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes compactly.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), None, 0, &mut out);
    Ok(out)
}

/// Serializes with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_json_value(&value).map_err(Error)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ",
        ),
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(colon);
                write_value(item, indent, depth + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".to_string()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".to_string()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("bad number '{text}'")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(Error(format!("expected ',' or ']', got {other:?}"))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => return Err(Error(format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Number(3.0)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::String("x \"y\"\n".to_string())),
            ("d".to_string(), Value::Number(-1.25e-3)),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert_eq!(to_string(&(-7i64)).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<Value>("{broken").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
