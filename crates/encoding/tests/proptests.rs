//! Property-based tests for the property encoders.

use bellamy_encoding::{
    binarize, binarizer::debinarize, HashingVectorizer, MinMaxScaler, PropertyEncoder,
    PropertyValue,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn hashing_output_is_unit_norm_or_zero(text in ".{0,64}") {
        let h = HashingVectorizer::paper_default();
        let v = h.transform(&text);
        prop_assert_eq!(v.len(), 39);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(
            norm.abs() < 1e-9 || (norm - 1.0).abs() < 1e-9,
            "norm {} for {:?}", norm, text
        );
    }

    #[test]
    fn hashing_is_deterministic(text in ".{0,48}") {
        let h = HashingVectorizer::paper_default();
        prop_assert_eq!(h.transform(&text), h.transform(&text));
    }

    #[test]
    fn hashing_is_case_insensitive(text in "[a-zA-Z0-9 .:_/-]{1,32}") {
        let h = HashingVectorizer::paper_default();
        prop_assert_eq!(
            h.transform(&text.to_uppercase()),
            h.transform(&text.to_lowercase())
        );
    }

    #[test]
    fn binarize_round_trips(value in 0u64..(1u64 << 39)) {
        let bits = binarize(value, 39);
        prop_assert_eq!(bits.len(), 39);
        prop_assert!(bits.iter().all(|&b| b == 0.0 || b == 1.0));
        prop_assert_eq!(debinarize(&bits), value);
    }

    #[test]
    fn binarize_is_injective(a in 0u64..100_000, b in 0u64..100_000) {
        prop_assume!(a != b);
        prop_assert_ne!(binarize(a, 39), binarize(b, 39));
    }

    #[test]
    fn property_vectors_have_correct_prefix_and_length(
        n in 0u64..1_000_000,
        text in "[a-z0-9 .-]{1,24}"
    ) {
        let enc = PropertyEncoder::default();
        let num = enc.encode(&PropertyValue::Number(n));
        let txt = enc.encode(&PropertyValue::text(&text));
        prop_assert_eq!(num.len(), 40);
        prop_assert_eq!(txt.len(), 40);
        prop_assert_eq!(num[0], 0.0);
        prop_assert_eq!(txt[0], 1.0);
    }

    #[test]
    fn scaler_maps_training_data_into_unit_interval(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1000.0f64..1000.0, 3),
            2..20
        )
    ) {
        let scaler = MinMaxScaler::fit(&rows);
        for row in &rows {
            for v in scaler.transform(row) {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v), "escaped: {v}");
            }
        }
    }

    #[test]
    fn scaler_bounds_round_trip(
        rows in proptest::collection::vec(
            proptest::collection::vec(-50.0f64..50.0, 2),
            2..10
        ),
        probe in proptest::collection::vec(-100.0f64..100.0, 2)
    ) {
        let scaler = MinMaxScaler::fit(&rows);
        let restored = MinMaxScaler::from_bounds(
            scaler.mins().to_vec(),
            scaler.maxs().to_vec(),
        );
        prop_assert_eq!(scaler.transform(&probe), restored.transform(&probe));
    }
}
