//! Descriptive-property encoders (paper §III-C).
//!
//! A job execution context is described by properties such as the node type
//! (`"m4.2xlarge"`), job parameters (`"--iterations 100"`), or the dataset
//! size in MB. Bellamy turns each property into a fixed-size vector
//! `p = [λ, q]` of length `N = 40`:
//!
//! - numeric properties go through a [`binarizer`] (base-2 expansion — no
//!   feature scaling needed, any reasonable magnitude encodes uniquely),
//! - textual properties go through a [`hashing`] vectorizer: the string is
//!   lower-cased, characters outside a small vocabulary are stripped,
//!   character 1/2/3-grams are counted into `L = 39` buckets through
//!   MurmurHash3 with sklearn-style alternate signing, and the result is
//!   projected onto the Euclidean unit sphere,
//!
//! with the binary prefix `λ` recording which encoder produced the tail.
//!
//! The [`scaler`] module hosts the min-max normalizer applied to the
//! scale-out feature vector `[1/x, log x, x]` (§IV-A).

pub mod binarizer;
pub mod hashing;
pub mod murmur3;
pub mod ngrams;
pub mod property;
pub mod scaler;

pub use binarizer::binarize;
pub use hashing::HashingVectorizer;
pub use property::{PropertyEncoder, PropertyValue, DEFAULT_VECTOR_SIZE};
pub use scaler::MinMaxScaler;
