//! Vocabulary filtering and character n-gram extraction.
//!
//! The paper strips characters outside a "simple case insensitive
//! character-vocabulary with alphanumeric characters and a handful of
//! special symbols", then extracts unigrams, bigrams, and trigrams from the
//! remaining sequence.

/// The default special symbols kept alongside `[a-z0-9]`.
pub const DEFAULT_SPECIALS: &[char] = &['.', '-', '_', '/', ':', ' '];

/// A case-insensitive character vocabulary.
#[derive(Debug, Clone)]
pub struct Vocabulary {
    specials: Vec<char>,
}

impl Default for Vocabulary {
    fn default() -> Self {
        Self {
            specials: DEFAULT_SPECIALS.to_vec(),
        }
    }
}

impl Vocabulary {
    /// A vocabulary of `[a-z0-9]` plus the given special characters.
    pub fn with_specials(specials: &[char]) -> Self {
        Self {
            specials: specials.to_vec(),
        }
    }

    /// True if the (already lower-cased) character is in the vocabulary.
    pub fn contains(&self, c: char) -> bool {
        c.is_ascii_lowercase() || c.is_ascii_digit() || self.specials.contains(&c)
    }

    /// Lower-cases the input and strips characters outside the vocabulary.
    pub fn clean(&self, text: &str) -> Vec<char> {
        text.chars()
            .flat_map(|c| c.to_lowercase())
            .filter(|&c| self.contains(c))
            .collect()
    }
}

/// Extracts all character n-grams with lengths in `[min_n, max_n]` from the
/// cleaned character sequence, in order of occurrence (duplicates included —
/// the vectorizer counts them).
pub fn char_ngrams(chars: &[char], min_n: usize, max_n: usize) -> Vec<String> {
    assert!(
        min_n >= 1 && min_n <= max_n,
        "invalid n-gram range {min_n}..={max_n}"
    );
    let mut grams = Vec::new();
    for n in min_n..=max_n {
        if chars.len() < n {
            break;
        }
        for window in chars.windows(n) {
            grams.push(window.iter().collect());
        }
    }
    grams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_lowercases_and_strips() {
        let v = Vocabulary::default();
        let cleaned: String = v.clean("M4.2XLarge!!").iter().collect();
        assert_eq!(cleaned, "m4.2xlarge");
    }

    #[test]
    fn clean_keeps_specials() {
        let v = Vocabulary::default();
        let cleaned: String = v.clean("--max_iter=25; k:8").iter().collect();
        assert_eq!(cleaned, "--max_iter25 k:8");
    }

    #[test]
    fn custom_specials() {
        let v = Vocabulary::with_specials(&['@']);
        let cleaned: String = v.clean("a.b@c").iter().collect();
        assert_eq!(cleaned, "ab@c");
    }

    #[test]
    fn unigrams_through_trigrams() {
        let chars: Vec<char> = "abcd".chars().collect();
        let grams = char_ngrams(&chars, 1, 3);
        let expect: Vec<String> = ["a", "b", "c", "d", "ab", "bc", "cd", "abc", "bcd"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(grams, expect);
    }

    #[test]
    fn short_input_yields_short_grams_only() {
        let chars: Vec<char> = "ab".chars().collect();
        let grams = char_ngrams(&chars, 1, 3);
        assert_eq!(
            grams,
            vec!["a".to_string(), "b".to_string(), "ab".to_string()]
        );
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(char_ngrams(&[], 1, 3).is_empty());
    }

    #[test]
    fn duplicates_are_preserved_for_counting() {
        let chars: Vec<char> = "aaa".chars().collect();
        let grams = char_ngrams(&chars, 1, 2);
        assert_eq!(grams.iter().filter(|g| g.as_str() == "a").count(), 3);
        assert_eq!(grams.iter().filter(|g| g.as_str() == "aa").count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid n-gram range")]
    fn rejects_zero_min() {
        let _ = char_ngrams(&['a'], 0, 2);
    }
}
