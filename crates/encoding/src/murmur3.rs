//! MurmurHash3 (x86, 32-bit variant).
//!
//! This is the hash scikit-learn's `HashingVectorizer` uses for its
//! term-to-index mapping; reimplemented here so the textual-property encoding
//! matches the prototype's behaviour byte-for-byte. Reference: Austin
//! Appleby's public-domain `MurmurHash3_x86_32`.

/// Hashes `data` with the given `seed`.
pub fn murmur3_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e2d51;
    const C2: u32 = 0x1b873593;

    let mut h = seed;
    let mut chunks = data.chunks_exact(4);
    for chunk in &mut chunks {
        let mut k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
        h = h.rotate_left(13);
        h = h.wrapping_mul(5).wrapping_add(0xe6546b64);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k: u32 = 0;
        if tail.len() >= 3 {
            k ^= (tail[2] as u32) << 16;
        }
        if tail.len() >= 2 {
            k ^= (tail[1] as u32) << 8;
        }
        k ^= tail[0] as u32;
        k = k.wrapping_mul(C1);
        k = k.rotate_left(15);
        k = k.wrapping_mul(C2);
        h ^= k;
    }

    h ^= data.len() as u32;
    fmix32(h)
}

/// Finalization mix: forces avalanche of the last few input bits.
#[inline]
fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85ebca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2ae35);
    h ^= h >> 16;
    h
}

/// The signed-hash view scikit-learn uses: interprets the 32-bit hash as
/// `i32`, yielding `(bucket, sign)` over `n_buckets`.
pub fn signed_bucket(data: &[u8], n_buckets: usize, seed: u32) -> (usize, f64) {
    assert!(n_buckets > 0, "need at least one bucket");
    let h = murmur3_32(data, seed) as i32;
    let sign = if h < 0 { -1.0 } else { 1.0 };
    ((h.unsigned_abs() as usize) % n_buckets, sign)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the canonical C++ implementation.
    #[test]
    fn known_vectors() {
        assert_eq!(murmur3_32(b"", 0), 0);
        assert_eq!(murmur3_32(b"", 1), 0x514E28B7);
        assert_eq!(murmur3_32(b"", 0xFFFFFFFF), 0x81F16F39);
        assert_eq!(murmur3_32(b"test", 0), 0xBA6BD213);
        assert_eq!(murmur3_32(b"Hello, world!", 0), 0xC0363E43);
        assert_eq!(
            murmur3_32(b"The quick brown fox jumps over the lazy dog", 0),
            0x2E4FF723
        );
        assert_eq!(murmur3_32(b"aaaa", 0x9747B28C), 0x5A97808A);
        assert_eq!(murmur3_32(b"abc", 0), 0xB3DD93FA);
    }

    #[test]
    fn tail_lengths_all_work() {
        // 1-, 2-, and 3-byte tails exercise every branch.
        let h1 = murmur3_32(b"a", 7);
        let h2 = murmur3_32(b"ab", 7);
        let h3 = murmur3_32(b"abc", 7);
        let h4 = murmur3_32(b"abcd", 7);
        let all = [h1, h2, h3, h4];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b, "distinct inputs should hash differently here");
            }
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(murmur3_32(b"m4.2xlarge", 0), murmur3_32(b"m4.2xlarge", 0));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(murmur3_32(b"spark", 0), murmur3_32(b"spark", 1));
    }

    #[test]
    fn signed_bucket_in_range() {
        for term in ["a", "bc", "def", "m4.xlarge", "k-means --k 8"] {
            let (idx, sign) = signed_bucket(term.as_bytes(), 39, 0);
            assert!(idx < 39);
            assert!(sign == 1.0 || sign == -1.0);
        }
    }

    #[test]
    fn signed_bucket_uses_absolute_value() {
        // A hash with the top bit set must map to a valid bucket with sign -1.
        // "test" hashes to 0xBA6BD213 which is negative as i32.
        let (idx, sign) = signed_bucket(b"test", 10, 0);
        assert_eq!(sign, -1.0);
        assert_eq!(idx, (0xBA6BD213u32 as i32).unsigned_abs() as usize % 10);
    }
}
