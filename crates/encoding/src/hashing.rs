//! The hashing vectorizer for textual properties (Eq. 4, `hasher` branch).
//!
//! Mirrors scikit-learn's `HashingVectorizer(analyzer='char', ngram_range=(1,3))`
//! as configured by the prototype: character n-grams are counted into a
//! fixed number of buckets via MurmurHash3; the *alternate sign* trick adds
//! each count with the sign of the hash so collisions cancel in expectation;
//! finally the vector is projected onto the Euclidean unit sphere
//! (`sum q_j^2 = 1`).

use crate::murmur3::signed_bucket;
use crate::ngrams::{char_ngrams, Vocabulary};
use serde::{Deserialize, Serialize};

/// Configuration + behaviour of the text-property hasher.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HashingVectorizer {
    n_features: usize,
    min_n: usize,
    max_n: usize,
    alternate_sign: bool,
    #[serde(skip, default)]
    vocabulary: Vocabulary,
}

impl HashingVectorizer {
    /// A vectorizer with `n_features` output buckets and n-grams in
    /// `[min_n, max_n]`.
    pub fn new(n_features: usize, min_n: usize, max_n: usize, alternate_sign: bool) -> Self {
        assert!(n_features > 0, "need at least one feature bucket");
        assert!(min_n >= 1 && min_n <= max_n, "invalid n-gram range");
        Self {
            n_features,
            min_n,
            max_n,
            alternate_sign,
            vocabulary: Vocabulary::default(),
        }
    }

    /// The paper's configuration: 39 buckets (`N - 1` with `N = 40`),
    /// 1–3-grams, alternate sign on.
    pub fn paper_default() -> Self {
        Self::new(39, 1, 3, true)
    }

    /// Number of output buckets.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Encodes `text` into an L2-normalized bucket-count vector.
    ///
    /// Inputs with no in-vocabulary character map to the zero vector (norm
    /// projection is skipped to avoid dividing by zero).
    pub fn transform(&self, text: &str) -> Vec<f64> {
        let mut out = vec![0.0; self.n_features];
        let cleaned = self.vocabulary.clean(text);
        for gram in char_ngrams(&cleaned, self.min_n, self.max_n) {
            let (idx, sign) = signed_bucket(gram.as_bytes(), self.n_features, 0);
            out[idx] += if self.alternate_sign { sign } else { 1.0 };
        }
        let norm = out.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for v in &mut out {
                *v /= norm;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_unit_norm() {
        let h = HashingVectorizer::paper_default();
        for text in ["m4.2xlarge", "r4.2xlarge", "--iterations 100", "sgd"] {
            let v = h.transform(text);
            let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12, "norm of {text} was {norm}");
            assert_eq!(v.len(), 39);
        }
    }

    #[test]
    fn deterministic() {
        let h = HashingVectorizer::paper_default();
        assert_eq!(h.transform("c5.xlarge"), h.transform("c5.xlarge"));
    }

    #[test]
    fn case_insensitive() {
        let h = HashingVectorizer::paper_default();
        assert_eq!(h.transform("M4.2XLARGE"), h.transform("m4.2xlarge"));
    }

    #[test]
    fn different_inputs_differ() {
        let h = HashingVectorizer::paper_default();
        let a = h.transform("m4.2xlarge");
        let b = h.transform("r4.2xlarge");
        let diff: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "distinct node types must encode differently");
    }

    #[test]
    fn empty_and_out_of_vocab_input_is_zero_vector() {
        let h = HashingVectorizer::paper_default();
        assert!(h.transform("").iter().all(|&v| v == 0.0));
        assert!(h.transform("!!!???").iter().all(|&v| v == 0.0));
    }

    #[test]
    fn unsigned_mode_counts_positively() {
        let h = HashingVectorizer::new(16, 1, 1, false);
        let v = h.transform("aaaa");
        // All mass in one bucket, normalized to 1.
        let nonzero: Vec<f64> = v.into_iter().filter(|&x| x != 0.0).collect();
        assert_eq!(nonzero.len(), 1);
        assert!((nonzero[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn signed_mode_can_cancel() {
        // With alternate sign, identical counts of two terms that share a
        // bucket but differ in sign cancel; just verify signs occur at all.
        let h = HashingVectorizer::paper_default();
        let v = h.transform("grep --pattern foo/bar.txt");
        assert!(
            v.iter().any(|&x| x < 0.0),
            "alternate sign should produce negatives"
        );
    }
}
