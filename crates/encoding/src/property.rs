//! Full property vectors `p = [λ, q]` (Eq. 3).

use crate::binarizer::binarize;
use crate::hashing::HashingVectorizer;
use serde::{Deserialize, Serialize};

/// The paper's property vector length `N = 40` (§IV-A): 1 prefix bit plus
/// `L = 39` encoding dimensions.
pub const DEFAULT_VECTOR_SIZE: usize = 40;

/// A descriptive property of a job execution context.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PropertyValue {
    /// A natural number (memory MB, CPU cores, dataset size MB, ...).
    Number(u64),
    /// Free-form text (node type, job parameters, job name, ...).
    Text(String),
}

impl PropertyValue {
    /// Convenience constructor from anything stringy.
    pub fn text(s: impl Into<String>) -> Self {
        PropertyValue::Text(s.into())
    }

    /// Human-readable rendering (used in reports and Fig. 4 output).
    pub fn display(&self) -> String {
        match self {
            PropertyValue::Number(n) => n.to_string(),
            PropertyValue::Text(s) => format!("'{s}'"),
        }
    }
}

/// Encodes [`PropertyValue`]s into fixed-size vectors.
///
/// The first element is the method prefix `λ` (0 for the binarizer, 1 for
/// the hasher); the remaining `N - 1` elements carry the encoding.
#[derive(Debug, Clone)]
pub struct PropertyEncoder {
    vector_size: usize,
    hasher: HashingVectorizer,
}

impl Default for PropertyEncoder {
    fn default() -> Self {
        Self::new(DEFAULT_VECTOR_SIZE)
    }
}

impl PropertyEncoder {
    /// An encoder producing vectors of `vector_size` (`>= 2`) elements.
    pub fn new(vector_size: usize) -> Self {
        assert!(
            vector_size >= 2,
            "need room for the prefix and at least one feature"
        );
        Self {
            vector_size,
            hasher: HashingVectorizer::new(vector_size - 1, 1, 3, true),
        }
    }

    /// Output vector length `N`.
    pub fn vector_size(&self) -> usize {
        self.vector_size
    }

    /// Encodes one property into an `N`-element vector.
    pub fn encode(&self, property: &PropertyValue) -> Vec<f64> {
        let bits = self.vector_size - 1;
        let mut out = Vec::with_capacity(self.vector_size);
        match property {
            PropertyValue::Number(n) => {
                out.push(0.0);
                out.extend(binarize(*n, bits));
            }
            PropertyValue::Text(s) => {
                out.push(1.0);
                out.extend(self.hasher.transform(s));
            }
        }
        out
    }

    /// Encodes a slice of properties into a row-per-property table.
    pub fn encode_all(&self, properties: &[PropertyValue]) -> Vec<Vec<f64>> {
        properties.iter().map(|p| self.encode(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_distinguishes_methods() {
        let enc = PropertyEncoder::default();
        let num = enc.encode(&PropertyValue::Number(25));
        let txt = enc.encode(&PropertyValue::text("m4.2xlarge"));
        assert_eq!(num[0], 0.0);
        assert_eq!(txt[0], 1.0);
        assert_eq!(num.len(), 40);
        assert_eq!(txt.len(), 40);
    }

    #[test]
    fn numeric_tail_is_binary() {
        let enc = PropertyEncoder::default();
        let v = enc.encode(&PropertyValue::Number(19_353));
        assert!(v[1..].iter().all(|&b| b == 0.0 || b == 1.0));
        assert_eq!(crate::binarizer::debinarize(&v[1..]), 19_353);
    }

    #[test]
    fn text_tail_is_unit_norm() {
        let enc = PropertyEncoder::default();
        let v = enc.encode(&PropertyValue::text("--iterations 100"));
        let norm: f64 = v[1..].iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_semantic_value_same_encoding() {
        let enc = PropertyEncoder::default();
        assert_eq!(
            enc.encode(&PropertyValue::text("SGD")),
            enc.encode(&PropertyValue::text("sgd"))
        );
    }

    #[test]
    fn number_and_its_text_form_differ() {
        // '25' as a number uses the binarizer; "25" as text uses the hasher;
        // the prefix bit keeps them distinguishable even under collision.
        let enc = PropertyEncoder::default();
        let a = enc.encode(&PropertyValue::Number(25));
        let b = enc.encode(&PropertyValue::text("25"));
        assert_ne!(a, b);
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn encode_all_preserves_order() {
        let enc = PropertyEncoder::default();
        let props = vec![
            PropertyValue::text("m4.2xlarge"),
            PropertyValue::Number(8),
            PropertyValue::text("pagerank"),
        ];
        let rows = enc.encode_all(&props);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], enc.encode(&props[0]));
        assert_eq!(rows[1][0], 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PropertyValue::Number(7).display(), "7");
        assert_eq!(PropertyValue::text("x").display(), "'x'");
    }
}
