//! The binarizer for numeric properties (Eq. 4, `binarizer` branch).
//!
//! A natural number (CPU cores, memory in MB, dataset size, ...) is encoded
//! as its base-2 expansion over `L` bits — unique for every value up to
//! `2^L`, and free of any feature-scaling concerns (§III-C).

/// Encodes `value` into `bits` binary features, least-significant bit first.
///
/// # Panics
/// Panics if the value does not fit in `bits` bits.
pub fn binarize(value: u64, bits: usize) -> Vec<f64> {
    assert!(bits <= 64, "at most 64 bits supported");
    if bits < 64 {
        assert!(
            value < (1u64 << bits),
            "value {value} does not fit in {bits} bits"
        );
    }
    (0..bits).map(|i| ((value >> i) & 1) as f64).collect()
}

/// Decodes a vector produced by [`binarize`] back into the number. Values
/// above 0.5 count as set bits, making the decoder robust to float fuzz.
pub fn debinarize(bits: &[f64]) -> u64 {
    assert!(bits.len() <= 64, "at most 64 bits supported");
    bits.iter()
        .enumerate()
        .map(|(i, &b)| if b > 0.5 { 1u64 << i } else { 0 })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_known_values() {
        assert_eq!(binarize(0, 4), vec![0.0, 0.0, 0.0, 0.0]);
        assert_eq!(binarize(1, 4), vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(binarize(6, 4), vec![0.0, 1.0, 1.0, 0.0]);
        assert_eq!(binarize(15, 4), vec![1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn round_trip_typical_magnitudes() {
        // Memory sizes and dataset sizes in MB easily fit in 39 bits.
        for v in [0u64, 1, 8, 1024, 19_353, 45_056, 2u64.pow(38)] {
            assert_eq!(debinarize(&binarize(v, 39)), v, "round trip of {v}");
        }
    }

    #[test]
    fn distinct_values_distinct_codes() {
        let a = binarize(19_353, 39);
        let b = binarize(14_540, 39);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_detected() {
        let _ = binarize(16, 4);
    }

    #[test]
    fn full_width_accepts_max() {
        let v = binarize(u64::MAX, 64);
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|&b| b == 1.0));
        assert_eq!(debinarize(&v), u64::MAX);
    }

    #[test]
    fn decoder_tolerates_fuzz() {
        assert_eq!(debinarize(&[0.99, 0.01, 0.85]), 0b101);
    }
}
