//! Feature-wise min-max normalization for the scale-out features.
//!
//! "The input to `f` is normalized to the range (0, 1) feature-wise, where
//! the boundaries are determined during training and used throughout
//! inference" (§IV-A). Inference inputs outside the training bounds
//! extrapolate linearly — exactly what the extrapolation experiments need.

use serde::{Deserialize, Serialize};

/// Per-feature min-max scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits bounds from rows of feature vectors.
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let dim = rows[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "ragged feature rows");
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        Self { mins, maxs }
    }

    /// Restores a scaler from persisted bounds.
    pub fn from_bounds(mins: Vec<f64>, maxs: Vec<f64>) -> Self {
        assert_eq!(mins.len(), maxs.len(), "bound length mismatch");
        Self { mins, maxs }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// The fitted lower bounds.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// The fitted upper bounds.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Transforms one feature vector. Features whose training bounds are
    /// degenerate (`max <= min`) map to 0.5.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.dim(), "feature dimension mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &v)| bellamy_linalg::stats::min_max_normalize(v, self.mins[j], self.maxs[j]))
            .collect()
    }

    /// Transforms many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_unit_interval() {
        let rows = vec![vec![2.0, 10.0], vec![4.0, 30.0], vec![6.0, 20.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform(&[2.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[6.0, 30.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[4.0, 20.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![10.0]]);
        assert_eq!(s.transform(&[20.0]), vec![2.0]);
        assert_eq!(s.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn degenerate_feature_maps_to_half() {
        let s = MinMaxScaler::fit(&[vec![3.0, 1.0], vec![3.0, 2.0]]);
        let t = s.transform(&[3.0, 1.5]);
        assert_eq!(t[0], 0.5);
        assert_eq!(t[1], 0.5);
    }

    #[test]
    fn bounds_round_trip() {
        let s = MinMaxScaler::fit(&[vec![1.0, 5.0], vec![2.0, 9.0]]);
        let restored = MinMaxScaler::from_bounds(s.mins().to_vec(), s.maxs().to_vec());
        assert_eq!(s, restored);
    }

    #[test]
    fn scale_out_feature_vector_shape() {
        // The actual use: features [1/x, log x, x] for x in 2..=12.
        let rows: Vec<Vec<f64>> = (1..=6)
            .map(|i| {
                let x = (2 * i) as f64;
                vec![1.0 / x, x.ln(), x]
            })
            .collect();
        let s = MinMaxScaler::fit(&rows);
        let t = s.transform(&[1.0 / 2.0, 2.0f64.ln(), 2.0]);
        // 1/x is maximal at x=2; log and linear are minimal there.
        assert_eq!(t, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_rejected() {
        let _ = MinMaxScaler::fit(&[]);
    }
}
