//! Feature-wise min-max normalization for the scale-out features.
//!
//! "The input to `f` is normalized to the range (0, 1) feature-wise, where
//! the boundaries are determined during training and used throughout
//! inference" (§IV-A). Inference inputs outside the training bounds
//! extrapolate linearly — exactly what the extrapolation experiments need.

use serde::{Deserialize, Serialize};

/// Per-feature min-max scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits bounds from rows of feature vectors.
    ///
    /// # Panics
    /// Panics if `rows` is empty or ragged, or if any feature value is
    /// non-finite. `f64::min`/`max` silently skip NaN, so a NaN slipping in
    /// here would fit garbage bounds that only surface later as NaN
    /// predictions far from the actual bug — reject it at the source with a
    /// message naming the offending cell instead.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let dim = rows[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), dim, "ragged feature rows");
            for (j, &v) in row.iter().enumerate() {
                assert!(
                    v.is_finite(),
                    "non-finite feature value {v} at row {i}, feature {j}: \
                     min-max bounds would be garbage"
                );
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        Self { mins, maxs }
    }

    /// Restores a scaler from persisted bounds.
    pub fn from_bounds(mins: Vec<f64>, maxs: Vec<f64>) -> Self {
        assert_eq!(mins.len(), maxs.len(), "bound length mismatch");
        Self { mins, maxs }
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// The fitted lower bounds.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// The fitted upper bounds.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }

    /// Transforms one feature vector. Features whose training bounds are
    /// degenerate (`max <= min`, or non-finite after a corrupt restore) map
    /// to 0.5.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; row.len()];
        self.transform_into(row, &mut out);
        out
    }

    /// Transforms one feature vector into caller-owned storage (the
    /// allocation-free path the batched predictor uses). Bit-identical to
    /// [`MinMaxScaler::transform`].
    ///
    /// # Panics
    /// Panics if `row` or `out` do not match the fitted dimensionality.
    pub fn transform_into(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.dim(), "feature dimension mismatch");
        assert_eq!(out.len(), self.dim(), "output dimension mismatch");
        for (j, (o, &v)) in out.iter_mut().zip(row.iter()).enumerate() {
            *o = bellamy_linalg::stats::min_max_normalize(v, self.mins[j], self.maxs[j]);
        }
    }

    /// Transforms many rows.
    pub fn transform_all(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_unit_interval() {
        let rows = vec![vec![2.0, 10.0], vec![4.0, 30.0], vec![6.0, 20.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform(&[2.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[6.0, 30.0]), vec![1.0, 1.0]);
        assert_eq!(s.transform(&[4.0, 20.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn out_of_range_extrapolates() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![10.0]]);
        assert_eq!(s.transform(&[20.0]), vec![2.0]);
        assert_eq!(s.transform(&[-10.0]), vec![-1.0]);
    }

    #[test]
    fn degenerate_feature_maps_to_half() {
        let s = MinMaxScaler::fit(&[vec![3.0, 1.0], vec![3.0, 2.0]]);
        let t = s.transform(&[3.0, 1.5]);
        assert_eq!(t[0], 0.5);
        assert_eq!(t[1], 0.5);
    }

    #[test]
    fn bounds_round_trip() {
        let s = MinMaxScaler::fit(&[vec![1.0, 5.0], vec![2.0, 9.0]]);
        let restored = MinMaxScaler::from_bounds(s.mins().to_vec(), s.maxs().to_vec());
        assert_eq!(s, restored);
    }

    #[test]
    fn scale_out_feature_vector_shape() {
        // The actual use: features [1/x, log x, x] for x in 2..=12.
        let rows: Vec<Vec<f64>> = (1..=6)
            .map(|i| {
                let x = (2 * i) as f64;
                vec![1.0 / x, x.ln(), x]
            })
            .collect();
        let s = MinMaxScaler::fit(&rows);
        let t = s.transform(&[1.0 / 2.0, 2.0f64.ln(), 2.0]);
        // 1/x is maximal at x=2; log and linear are minimal there.
        assert_eq!(t, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_rejected() {
        let _ = MinMaxScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite feature value")]
    fn nan_feature_rejected_at_fit() {
        let _ = MinMaxScaler::fit(&[vec![1.0, 2.0], vec![1.0, f64::NAN]]);
    }

    #[test]
    #[should_panic(expected = "non-finite feature value")]
    fn infinite_feature_rejected_at_fit() {
        // 1/x with x = 0 is the realistic leak: an infinite scale-out feature.
        let _ = MinMaxScaler::fit(&[vec![f64::INFINITY, 2.0], vec![0.5, 3.0]]);
    }

    #[test]
    fn transform_into_matches_transform() {
        let s = MinMaxScaler::fit(&[vec![2.0, 10.0], vec![6.0, 30.0]]);
        for row in [[3.0, 12.0], [9.0, -4.0], [2.0, 30.0]] {
            let mut out = [0.0; 2];
            s.transform_into(&row, &mut out);
            assert_eq!(out.to_vec(), s.transform(&row));
        }
    }

    #[test]
    fn corrupt_restored_bounds_degrade_to_half_not_nan() {
        // A checkpoint edited by hand (or truncated) can restore non-finite
        // bounds; transform must stay NaN-free.
        let s = MinMaxScaler::from_bounds(vec![f64::NAN, 0.0], vec![1.0, 10.0]);
        let t = s.transform(&[0.3, 5.0]);
        assert_eq!(t, vec![0.5, 0.5_f64]);
        assert!(t.iter().all(|v| v.is_finite()));
    }
}
