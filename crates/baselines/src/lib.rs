//! Baseline runtime predictors the paper compares Bellamy against (§IV-C):
//!
//! - **Ernest / NNLS** ([`ernest::ErnestModel`]) — the parametric model
//!   `t(x) = θ1 + θ2/x + θ3·log x + θ4·x` fitted with non-negative least
//!   squares (Venkataraman et al., NSDI'16),
//! - **Bell** ([`bell::BellModel`]) — the authors' earlier work (Thamsen et
//!   al., IPCCC'16): a non-parametric interpolation model combined with the
//!   parametric model, selected automatically per job via leave-one-out
//!   cross-validation.
//!
//! Both are *single-context* models: they see only `(scale-out, runtime)`
//! pairs, which is exactly the limitation Bellamy's context encoding lifts.

pub mod bell;
pub mod ernest;
pub mod nonparametric;

pub use bell::BellModel;
pub use ernest::ErnestModel;
pub use nonparametric::NonParametricModel;

/// Why a model could not be fitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Too few (distinct) data points for this model class.
    NotEnoughData {
        /// Distinct scale-outs required.
        needed: usize,
        /// Distinct scale-outs provided.
        got: usize,
    },
    /// The underlying solver failed (degenerate inputs).
    SolverFailed(String),
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughData { needed, got } => {
                write!(f, "needs {needed} distinct scale-outs, got {got}")
            }
            FitError::SolverFailed(e) => write!(f, "solver failed: {e}"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted scale-out → runtime model.
pub trait ScaleOutModel {
    /// Predicted runtime (seconds) at `x` machines.
    fn predict(&self, x: f64) -> f64;

    /// Predicts for many scale-outs at once.
    fn predict_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.predict(x)).collect()
    }
}

/// Collapses `(scale_out, runtime)` samples to per-scale-out means, sorted
/// ascending — shared by the non-parametric model and cross-validation.
pub(crate) fn mean_by_scale_out(points: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<(f64, f64)> = points.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scale-outs"));
    let mut out: Vec<(f64, f64)> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let x = sorted[i].0;
        let mut sum = 0.0;
        let mut n = 0;
        while i < sorted.len() && sorted[i].0 == x {
            sum += sorted[i].1;
            n += 1;
            i += 1;
        }
        out.push((x, sum / n as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_by_scale_out_groups_and_sorts() {
        let pts = [
            (4.0, 10.0),
            (2.0, 20.0),
            (4.0, 14.0),
            (2.0, 22.0),
            (6.0, 8.0),
        ];
        let grouped = mean_by_scale_out(&pts);
        assert_eq!(grouped, vec![(2.0, 21.0), (4.0, 12.0), (6.0, 8.0)]);
    }

    #[test]
    fn fit_error_messages() {
        let e = FitError::NotEnoughData { needed: 3, got: 1 };
        assert!(e.to_string().contains("3"));
        let s = FitError::SolverFailed("x".into());
        assert!(s.to_string().contains("x"));
    }
}
