//! The non-parametric half of Bell: piecewise-linear interpolation over
//! per-scale-out mean runtimes, extended linearly beyond the observed range.
//!
//! Inside the observed range this is the classic interpolation estimator
//! (dense data beats any parametric form — §IV-C1 observes exactly this);
//! outside the range it continues the slope of the nearest segment, which is
//! the behaviour that makes non-parametric models weak extrapolators.

use crate::{mean_by_scale_out, FitError, ScaleOutModel};

/// Piecewise-linear interpolation model.
#[derive(Debug, Clone, PartialEq)]
pub struct NonParametricModel {
    /// `(scale_out, mean runtime)` knots, ascending, at least one.
    knots: Vec<(f64, f64)>,
}

impl NonParametricModel {
    /// Fits (groups samples by scale-out and keeps the means).
    pub fn fit(points: &[(f64, f64)]) -> Result<Self, FitError> {
        if points.is_empty() {
            return Err(FitError::NotEnoughData { needed: 1, got: 0 });
        }
        Ok(Self {
            knots: mean_by_scale_out(points),
        })
    }

    /// The interpolation knots.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }
}

impl ScaleOutModel for NonParametricModel {
    fn predict(&self, x: f64) -> f64 {
        let k = &self.knots;
        if k.len() == 1 {
            return k[0].1; // constant model
        }
        // Clamp to the outermost segment for extrapolation.
        let seg = if x <= k[0].0 {
            (k[0], k[1])
        } else if x >= k[k.len() - 1].0 {
            (k[k.len() - 2], k[k.len() - 1])
        } else {
            let hi = k.partition_point(|&(kx, _)| kx < x).min(k.len() - 1);
            (k[hi - 1], k[hi])
        };
        let ((x0, y0), (x1, y1)) = seg;
        let slope = (y1 - y0) / (x1 - x0);
        y0 + slope * (x - x0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_between_knots() {
        let m = NonParametricModel::fit(&[(2.0, 100.0), (4.0, 60.0), (8.0, 40.0)]).unwrap();
        assert_eq!(m.predict(3.0), 80.0);
        assert_eq!(m.predict(6.0), 50.0);
        // Exact at the knots.
        assert_eq!(m.predict(2.0), 100.0);
        assert_eq!(m.predict(8.0), 40.0);
    }

    #[test]
    fn repeats_are_averaged() {
        let m = NonParametricModel::fit(&[(2.0, 90.0), (2.0, 110.0), (4.0, 60.0)]).unwrap();
        assert_eq!(m.predict(2.0), 100.0);
    }

    #[test]
    fn extrapolates_linearly() {
        let m = NonParametricModel::fit(&[(4.0, 80.0), (8.0, 40.0)]).unwrap();
        // Slope -10 per machine continues on both sides.
        assert_eq!(m.predict(12.0), 0.0);
        assert_eq!(m.predict(2.0), 100.0);
    }

    #[test]
    fn single_knot_is_constant() {
        let m = NonParametricModel::fit(&[(6.0, 55.0)]).unwrap();
        assert_eq!(m.predict(2.0), 55.0);
        assert_eq!(m.predict(60.0), 55.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let m = NonParametricModel::fit(&[(8.0, 40.0), (2.0, 100.0), (4.0, 60.0)]).unwrap();
        assert_eq!(m.knots(), &[(2.0, 100.0), (4.0, 60.0), (8.0, 40.0)]);
    }

    #[test]
    fn empty_rejected() {
        assert!(NonParametricModel::fit(&[]).is_err());
    }
}
