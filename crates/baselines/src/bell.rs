//! Bell (Thamsen et al., IPCCC'16): the paper's second baseline.
//!
//! Bell "combines a non-parametric model with a parametric model based on
//! Ernest ... and automatically chooses a suitable model for predictions"
//! (§II). The selection runs leave-one-out cross-validation over the
//! training points, which is why "Bell requires at least three data points
//! due to an internally used cross-validation" (§IV-C1).

use crate::ernest::ErnestModel;
use crate::nonparametric::NonParametricModel;
use crate::{mean_by_scale_out, FitError, ScaleOutModel};

/// Which sub-model leave-one-out selection picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BellChoice {
    /// Ernest's NNLS-fitted parametric form.
    Parametric,
    /// Piecewise-linear interpolation.
    NonParametric,
}

/// The fitted Bell model.
#[derive(Debug, Clone)]
pub struct BellModel {
    parametric: ErnestModel,
    nonparametric: NonParametricModel,
    choice: BellChoice,
}

impl BellModel {
    /// Fits both sub-models and selects one by leave-one-out CV over the
    /// distinct scale-outs.
    ///
    /// Requires at least 3 distinct scale-outs; fewer yields
    /// [`FitError::NotEnoughData`].
    pub fn fit(points: &[(f64, f64)]) -> Result<Self, FitError> {
        let grouped = mean_by_scale_out(points);
        if grouped.len() < 3 {
            return Err(FitError::NotEnoughData {
                needed: 3,
                got: grouped.len(),
            });
        }

        let mut err_param = 0.0;
        let mut err_nonparam = 0.0;
        #[allow(clippy::needless_range_loop)]
        for holdout in 0..grouped.len() {
            let train: Vec<(f64, f64)> = points
                .iter()
                .filter(|p| p.0 != grouped[holdout].0)
                .copied()
                .collect();
            let (x_test, y_test) = grouped[holdout];
            if let Ok(m) = ErnestModel::fit(&train) {
                let d = m.predict(x_test) - y_test;
                err_param += d * d;
            } else {
                err_param += f64::INFINITY;
            }
            if let Ok(m) = NonParametricModel::fit(&train) {
                let d = m.predict(x_test) - y_test;
                err_nonparam += d * d;
            } else {
                err_nonparam += f64::INFINITY;
            }
        }

        let choice = if err_param <= err_nonparam {
            BellChoice::Parametric
        } else {
            BellChoice::NonParametric
        };

        Ok(Self {
            parametric: ErnestModel::fit(points)?,
            nonparametric: NonParametricModel::fit(points)?,
            choice,
        })
    }

    /// The selected sub-model.
    pub fn choice(&self) -> BellChoice {
        self.choice
    }

    /// Access to the fitted parametric sub-model.
    pub fn parametric(&self) -> &ErnestModel {
        &self.parametric
    }

    /// Access to the fitted non-parametric sub-model.
    pub fn nonparametric(&self) -> &NonParametricModel {
        &self.nonparametric
    }
}

impl ScaleOutModel for BellModel {
    fn predict(&self, x: f64) -> f64 {
        match self.choice {
            BellChoice::Parametric => self.parametric.predict(x),
            BellChoice::NonParametric => self.nonparametric.predict(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ernest_curve(x: f64) -> f64 {
        20.0 + 300.0 / x + 4.0 * x.ln() + 1.5 * x
    }

    #[test]
    fn selects_parametric_on_ernest_shaped_data() {
        let pts: Vec<(f64, f64)> = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
            .iter()
            .map(|&x| (x, ernest_curve(x)))
            .collect();
        let m = BellModel::fit(&pts).unwrap();
        assert_eq!(m.choice(), BellChoice::Parametric);
        assert!((m.predict(5.0) - ernest_curve(5.0)).abs() < 1.0);
    }

    #[test]
    fn selects_nonparametric_on_irregular_data() {
        // A sharp step no Ernest curve (non-negative coefficients, smooth
        // shape) can follow.
        let pts = vec![
            (2.0, 100.0),
            (4.0, 100.0),
            (6.0, 100.0),
            (8.0, 20.0),
            (10.0, 20.0),
            (12.0, 20.0),
        ];
        let m = BellModel::fit(&pts).unwrap();
        assert_eq!(m.choice(), BellChoice::NonParametric);
        // Interpolation nails the plateaus.
        assert!((m.predict(3.0) - 100.0).abs() < 1e-9);
        assert!((m.predict(11.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn requires_three_distinct_scale_outs() {
        let err = BellModel::fit(&[(2.0, 10.0), (2.0, 11.0), (4.0, 8.0)]).unwrap_err();
        assert_eq!(err, FitError::NotEnoughData { needed: 3, got: 2 });
    }

    #[test]
    fn three_points_fit() {
        let pts = vec![(2.0, 90.0), (6.0, 45.0), (12.0, 30.0)];
        let m = BellModel::fit(&pts).unwrap();
        let p = m.predict(4.0);
        assert!(p.is_finite() && p > 0.0);
    }

    #[test]
    fn repeats_do_not_break_cv() {
        // 5 repeats per scale-out, as in the C3O data.
        let mut pts = Vec::new();
        for &x in &[2.0, 4.0, 6.0, 8.0] {
            for r in 0..5 {
                pts.push((x, ernest_curve(x) * (1.0 + 0.01 * r as f64)));
            }
        }
        let m = BellModel::fit(&pts).unwrap();
        assert!(m.predict(5.0).is_finite());
    }
}
