//! Ernest's parametric model, fitted with NNLS (the paper's `NNLS` baseline).

use crate::{FitError, ScaleOutModel};
use bellamy_linalg::{nnls, Matrix};

/// The Ernest feature map `x -> [1, 1/x, log x, x]` (Eq. 1).
pub fn ernest_features(x: f64) -> [f64; 4] {
    assert!(x >= 1.0, "scale-out must be at least 1");
    [1.0, 1.0 / x, x.ln(), x]
}

/// `t(x) = θ1 + θ2/x + θ3·log x + θ4·x` with `θ >= 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct ErnestModel {
    theta: [f64; 4],
    residual_norm: f64,
}

impl ErnestModel {
    /// Fits the model to `(scale_out, runtime)` samples via NNLS.
    ///
    /// Any non-empty sample set is accepted — the paper notes that "using
    /// NNLS with just one data point is by design unreasonable", and the
    /// evaluation shows exactly how unreasonable, so under-determined fits
    /// must still produce a model rather than an error.
    pub fn fit(points: &[(f64, f64)]) -> Result<Self, FitError> {
        if points.is_empty() {
            return Err(FitError::NotEnoughData { needed: 1, got: 0 });
        }
        let a = Matrix::from_fn(points.len(), 4, |i, j| ernest_features(points[i].0)[j]);
        let b: Vec<f64> = points.iter().map(|p| p.1).collect();
        let sol = nnls(&a, &b).map_err(|e| FitError::SolverFailed(e.to_string()))?;
        Ok(Self {
            theta: [sol.x[0], sol.x[1], sol.x[2], sol.x[3]],
            residual_norm: sol.residual_norm,
        })
    }

    /// The fitted coefficients `[θ1, θ2, θ3, θ4]`.
    pub fn theta(&self) -> [f64; 4] {
        self.theta
    }

    /// Training residual norm from the NNLS solve.
    pub fn residual_norm(&self) -> f64 {
        self.residual_norm
    }
}

impl ScaleOutModel for ErnestModel {
    fn predict(&self, x: f64) -> f64 {
        let f = ernest_features(x);
        self.theta.iter().zip(f.iter()).map(|(t, v)| t * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(theta: [f64; 4]) -> impl Fn(f64) -> f64 {
        move |x: f64| theta[0] + theta[1] / x + theta[2] * x.ln() + theta[3] * x
    }

    #[test]
    fn recovers_exact_coefficients() {
        let truth = [30.0, 400.0, 5.0, 2.0];
        let f = curve(truth);
        let pts: Vec<(f64, f64)> = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
            .iter()
            .map(|&x| (x, f(x)))
            .collect();
        let m = ErnestModel::fit(&pts).unwrap();
        for (got, want) in m.theta().iter().zip(truth.iter()) {
            assert!((got - want).abs() < 1e-6, "{:?} vs {truth:?}", m.theta());
        }
        assert!(m.residual_norm() < 1e-8);
        // Interpolation and extrapolation on the clean curve are exact.
        assert!((m.predict(5.0) - f(5.0)).abs() < 1e-6);
        assert!((m.predict(20.0) - f(20.0)).abs() < 1e-6);
    }

    #[test]
    fn coefficients_are_nonnegative_on_noisy_data() {
        let f = curve([10.0, 120.0, 0.0, 0.5]);
        // Noise pattern that would drive an OLS log-coefficient negative.
        let pts: Vec<(f64, f64)> = [2.0, 4.0, 6.0, 8.0]
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, f(x) * if i % 2 == 0 { 1.06 } else { 0.94 }))
            .collect();
        let m = ErnestModel::fit(&pts).unwrap();
        assert!(m.theta().iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn single_point_fits_degenerately() {
        // One sample: the model must exist; its quality is the experiment's
        // business, not the API's.
        let m = ErnestModel::fit(&[(4.0, 100.0)]).unwrap();
        let p = m.predict(4.0);
        assert!(
            (p - 100.0).abs() < 1e-6,
            "must reproduce the one observation, got {p}"
        );
    }

    #[test]
    fn empty_fit_rejected() {
        assert_eq!(
            ErnestModel::fit(&[]).unwrap_err(),
            FitError::NotEnoughData { needed: 1, got: 0 }
        );
    }

    #[test]
    fn predict_all_matches_predict() {
        let m = ErnestModel::fit(&[(2.0, 50.0), (4.0, 30.0), (8.0, 20.0)]).unwrap();
        let xs = [2.0, 3.0, 4.0];
        let batch = m.predict_all(&xs);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(batch[i], m.predict(x));
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_scale_out() {
        let _ = ernest_features(0.0);
    }
}
