//! Property-based tests for the linear algebra kernels.

use bellamy_linalg::{lstsq, nnls, AlignedBuf, BufferPool, Matrix, QrDecomposition};
use proptest::prelude::*;

/// Strategy: a matrix with the given shape and bounded elements.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: shape in a small range plus matching data.
fn any_small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| matrix(r, c))
}

proptest! {
    #[test]
    fn transpose_is_involution(a in any_small_matrix()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_left_right(a in any_small_matrix()) {
        let il = Matrix::eye(a.rows());
        let ir = Matrix::eye(a.cols());
        prop_assert!(il.matmul(&a).max_abs_diff(&a) < 1e-12);
        prop_assert!(a.matmul(&ir).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn matmul_distributes_over_addition(
        (a, b, c) in (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
            (matrix(m, k), matrix(k, n), matrix(k, n))
        })
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn matmul_transpose_identity((a, b) in
        (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
            (matrix(m, k), matrix(k, n))
        })
    ) {
        // (A B)^T = B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
    }

    #[test]
    fn transposed_kernels_match_explicit((a, b) in
        (1usize..6, 1usize..6, 1usize..6).prop_flat_map(|(m, k, n)| {
            (matrix(m, k), matrix(n, k))
        })
    ) {
        let explicit = a.matmul(&b.transpose());
        let fused = a.matmul_transpose_b(&b);
        prop_assert!(explicit.max_abs_diff(&fused) < 1e-10);
    }

    #[test]
    fn hadamard_commutes((a, b) in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        (matrix(r, c), matrix(r, c))
    })) {
        prop_assert!(a.hadamard(&b).max_abs_diff(&b.hadamard(&a)) < 1e-12);
    }

    #[test]
    fn sum_rows_matches_scalar_sum(a in any_small_matrix()) {
        let total_via_rows: f64 = a.sum_rows().as_slice().iter().sum();
        prop_assert!((total_via_rows - a.sum()).abs() < 1e-9);
    }

    #[test]
    fn concat_slice_round_trip((a, b) in (1usize..5, 1usize..5, 1usize..5).prop_flat_map(
        |(r, c1, c2)| (matrix(r, c1), matrix(r, c2))
    )) {
        let joined = Matrix::concat_cols(&[&a, &b]);
        prop_assert_eq!(joined.slice_cols(0, a.cols()), a.clone());
        prop_assert_eq!(joined.slice_cols(a.cols(), a.cols() + b.cols()), b);
    }

    #[test]
    fn matmul_into_matches_allocating_bitwise((a, b) in
        (1usize..12, 1usize..12, 1usize..12).prop_flat_map(|(m, k, n)| {
            (matrix(m, k), matrix(k, n))
        })
    ) {
        // A dirty output buffer must not leak into the result.
        let mut out = Matrix::filled(a.rows(), b.cols(), f64::MAX);
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn transpose_variant_into_kernels_match_bitwise((a, b, c) in
        (1usize..10, 1usize..10, 1usize..10).prop_flat_map(|(m, k, n)| {
            (matrix(m, k), matrix(n, k), matrix(m, n))
        })
    ) {
        let mut out = Matrix::filled(a.rows(), b.rows(), -9.9);
        a.matmul_transpose_b_into(&b, &mut out);
        prop_assert_eq!(out, a.matmul_transpose_b(&b));

        let mut out2 = Matrix::filled(a.cols(), c.cols(), 7.7);
        a.transpose_a_matmul_into(&c, &mut out2);
        prop_assert_eq!(out2, a.transpose_a_matmul(&c));
    }

    #[test]
    fn elementwise_into_kernels_match_bitwise((a, b) in
        (1usize..8, 1usize..8).prop_flat_map(|(r, c)| (matrix(r, c), matrix(r, c))),
        alpha in -3.0f64..3.0
    ) {
        let mut out = Matrix::filled(a.rows(), a.cols(), 0.123);
        a.add_into(&b, &mut out);
        prop_assert_eq!(&out, &a.add(&b));

        a.scale_into(alpha, &mut out);
        prop_assert_eq!(&out, &a.scale(alpha));

        a.zip_apply_into(&b, &mut out, |x, y| x * y - 0.5 * x);
        prop_assert_eq!(&out, &a.zip_map(&b, |x, y| x * y - 0.5 * x));

        a.map_into(&mut out, |x| x * x + 1.0);
        prop_assert_eq!(&out, &a.map(|x| x * x + 1.0));

        let mut bias_out = Matrix::zeros(1, a.cols());
        a.sum_rows_into(&mut bias_out);
        prop_assert_eq!(&bias_out, &a.sum_rows());
    }

    #[test]
    fn axpy_matches_add_scaled_and_add_assign_bitwise((a, b) in
        (1usize..8, 1usize..8).prop_flat_map(|(r, c)| (matrix(r, c), matrix(r, c))),
        alpha in -2.0f64..2.0
    ) {
        let mut via_axpy = a.clone();
        via_axpy.axpy(alpha, &b);
        let mut via_add_scaled = a.clone();
        via_add_scaled.add_scaled(&b, alpha);
        prop_assert_eq!(&via_axpy, &via_add_scaled);

        let mut unit_axpy = a.clone();
        unit_axpy.axpy(1.0, &b);
        let mut via_add_assign = a.clone();
        via_add_assign.add_assign(&b);
        prop_assert_eq!(&unit_axpy, &via_add_assign);
    }

    #[test]
    fn buffer_pool_serves_zeroed_exact_lengths(lens in proptest::collection::vec(1usize..200, 1..12)) {
        let mut pool = BufferPool::new();
        // Cycle everything through the pool twice; every take must be
        // zeroed and exactly sized regardless of what was pooled before.
        for _ in 0..2 {
            let taken: Vec<AlignedBuf> = lens.iter().map(|&l| {
                let mut buf = pool.take(l);
                prop_assert_eq!(buf.len(), l);
                prop_assert!(buf.iter().all(|&v| v == 0.0));
                buf.fill(f64::MIN);
                Ok(buf)
            }).collect::<Result<_, TestCaseError>>()?;
            for buf in taken {
                pool.put(buf);
            }
        }
    }

    #[test]
    fn qr_reconstruction((m, n) in (1usize..8, 1usize..8).prop_filter("m>=n", |(m, n)| m >= n)) {
        // Deterministic well-conditioned test matrix per shape.
        let a = Matrix::from_fn(m, n, |i, j| {
            ((i + 1) as f64 * 0.37 * (j + 1) as f64).sin() + if i == j { 2.0 } else { 0.0 }
        });
        let qr = QrDecomposition::new(&a);
        let rec = qr.q().matmul(&qr.r());
        prop_assert!(rec.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn lstsq_recovers_exact_solution(coef in proptest::collection::vec(-5.0f64..5.0, 3)) {
        // Build consistent overdetermined system with distinct sample points.
        let ts: [f64; 6] = [1.0, 2.0, 3.5, 5.0, 7.25, 9.0];
        let a = Matrix::from_fn(6, 3, |i, j| ts[i].powi(j as i32));
        let b: Vec<f64> = ts
            .iter()
            .map(|&t| coef[0] + coef[1] * t + coef[2] * t * t)
            .collect();
        let x = lstsq(&a, &b).expect("well-conditioned system");
        for (got, want) in x.iter().zip(coef.iter()) {
            prop_assert!((got - want).abs() < 1e-6, "{x:?} vs {coef:?}");
        }
    }

    #[test]
    fn nnls_is_primal_feasible_and_kkt(data in proptest::collection::vec(-3.0f64..3.0, 8 * 3),
                                        rhs in proptest::collection::vec(-5.0f64..5.0, 8)) {
        let a = Matrix::from_vec(8, 3, data);
        let sol = nnls(&a, &rhs).expect("nnls should converge");
        // Primal feasibility.
        prop_assert!(sol.x.iter().all(|&v| v >= 0.0));
        // Dual feasibility + complementary slackness.
        let ax = a.matvec(&sol.x);
        let resid: Vec<f64> = rhs.iter().zip(ax.iter()).map(|(&b, &v)| b - v).collect();
        let w = a.transpose().matvec(&resid);
        #[allow(clippy::needless_range_loop)] // j indexes sol.x and w in lockstep
        for j in 0..3 {
            if sol.x[j] > 1e-9 {
                prop_assert!(w[j].abs() < 1e-5, "stationarity: w[{}]={}", j, w[j]);
            } else {
                prop_assert!(w[j] <= 1e-5, "dual feasibility: w[{}]={}", j, w[j]);
            }
        }
        // Residual norm is consistent.
        let norm = resid.iter().map(|r| r * r).sum::<f64>().sqrt();
        prop_assert!((norm - sol.residual_norm).abs() < 1e-8);
    }

    #[test]
    fn nnls_never_beats_unconstrained(data in proptest::collection::vec(-3.0f64..3.0, 10 * 2),
                                       rhs in proptest::collection::vec(-5.0f64..5.0, 10)) {
        let a = Matrix::from_vec(10, 2, data);
        let sol = nnls(&a, &rhs).expect("nnls should converge");
        if let Some(x) = lstsq(&a, &rhs) {
            let ax = a.matvec(&x);
            let unc: f64 = rhs.iter().zip(ax.iter()).map(|(&b, &v)| (b - v) * (b - v)).sum::<f64>().sqrt();
            prop_assert!(sol.residual_norm + 1e-7 >= unc,
                "constrained residual {} below unconstrained {}", sol.residual_norm, unc);
        }
    }
}
