//! Exact-vs-Fast accuracy envelope for every FMA-contracted kernel.
//!
//! The Fast tier (`kernels::fma()`) does **not** promise bit identity — it
//! promises to stay within a documented envelope of the scalar reference
//! (see the `bellamy_linalg::kernels` module docs). This suite pins that
//! envelope with property-driven shapes, the same ragged tails and register
//! fast paths (`n == 8`, `n == 4`) the bitwise suite covers, plus special
//! values. The predicate is [`bellamy_linalg::within_envelope`]: close in
//! ULPs, or — under catastrophic cancellation, where ULPs of a tiny result
//! are meaningless — small against `Σ|aᵢ·bᵢ|`, the standard dot-product
//! error scale.
//!
//! On hardware without FMA, `kernels::fma()` returns `None` and the suite
//! passes vacuously (the CI `BELLAMY_KERNEL=fma` leg degrades the same way).
//!
//! Envelope constants: fused accumulation differs from the exact chain by at
//! most `2·γₖ·Σ|aᵢbᵢ|` with `γₖ ≈ k·ε`; `REL_SLACK` doubles that bound for
//! headroom, and `MAX_ULPS` covers well-conditioned sums where the relative
//! backstop never engages.

use bellamy_linalg::kernels::{self, KernelTable};
use bellamy_linalg::ulp::within_envelope;
use proptest::prelude::*;

const MAX_ULPS: u64 = 16;
const REL_SLACK: f64 = 4.0;

fn tables() -> Option<(&'static KernelTable, &'static KernelTable)> {
    kernels::fma().map(|fast| (kernels::scalar(), fast))
}

/// Bounded data for an `m x k` operand.
fn operand(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

/// Shapes up to 13 hit every `% 4` residue plus the width-8/width-4
/// register kernels.
const DIM: std::ops::Range<usize> = 1..14;

/// Relative tolerance for a length-`k` fused-vs-exact accumulation.
fn rel_tol(k: usize) -> f64 {
    REL_SLACK * (k as f64 + 1.0) * f64::EPSILON
}

/// Asserts every element of `fast` is within the envelope of `exact`, where
/// `magnitude[i]` is the cancellation-aware scale of element `i`.
fn assert_enveloped(exact: &[f64], fast: &[f64], magnitude: &[f64], k: usize, what: &str) {
    for (i, ((&e, &f), &mag)) in exact.iter().zip(fast).zip(magnitude).enumerate() {
        assert!(
            within_envelope(e, f, MAX_ULPS, rel_tol(k), mag),
            "{what}[{i}]: exact {e:e} vs fast {f:e} (magnitude {mag:e}, k {k})"
        );
    }
}

/// `Σ|a[i,·]·b[·,j]|` for every output element of `a (m x k) * b (k x n)`.
fn matmul_magnitude(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut mag = vec![0.0; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk].abs();
            for j in 0..n {
                mag[i * n + j] += av * b[kk * n + j].abs();
            }
        }
    }
    mag
}

proptest! {
    #[test]
    fn matmul_within_envelope((m, k, n, a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (Just(m), Just(k), Just(n), operand(m * k), operand(k * n))
    })) {
        let Some((scalar, fast)) = tables() else { return Ok(()); };
        let mut want = vec![f64::MAX; m * n];
        let mut got = vec![f64::MIN; m * n];
        scalar.matmul(&a, &b, &mut want, m, k, n);
        fast.matmul(&a, &b, &mut got, m, k, n);
        assert_enveloped(&want, &got, &matmul_magnitude(&a, &b, m, k, n), k, "matmul");
    }

    #[test]
    fn matmul_transpose_b_within_envelope((m, k, n, a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (Just(m), Just(k), Just(n), operand(m * k), operand(n * k))
    })) {
        let Some((scalar, fast)) = tables() else { return Ok(()); };
        let mut want = vec![1.0; m * n];
        let mut got = vec![-1.0; m * n];
        scalar.matmul_tb(&a, &b, &mut want, m, k, n);
        fast.matmul_tb(&a, &b, &mut got, m, k, n);
        let mut mag = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                mag[i * n + j] = (0..k).map(|kk| (a[i * k + kk] * b[j * k + kk]).abs()).sum();
            }
        }
        assert_enveloped(&want, &got, &mag, k, "matmul_tb");
    }

    #[test]
    fn transpose_a_matmul_within_envelope((m, k, n, a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (Just(m), Just(k), Just(n), operand(k * m), operand(k * n))
    })) {
        let Some((scalar, fast)) = tables() else { return Ok(()); };
        let mut want = vec![7.0; m * n];
        let mut got = vec![-7.0; m * n];
        scalar.ta_matmul(&a, &b, &mut want, k, m, n);
        fast.ta_matmul(&a, &b, &mut got, k, m, n);
        let mut mag = vec![0.0; m * n];
        for r in 0..k {
            for i in 0..m {
                let av = a[r * m + i].abs();
                for j in 0..n {
                    mag[i * n + j] += av * b[r * n + j].abs();
                }
            }
        }
        assert_enveloped(&want, &got, &mag, k, "ta_matmul");
    }

    #[test]
    fn matmul_bias_rowapply_within_envelope(((m, k, n), a, b, bias, with_bias) in
        (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
            (Just((m, k, n)), operand(m * k), operand(k * n), operand(n), any::<bool>())
        })
    ) {
        let Some((scalar, fast)) = tables() else { return Ok(()); };
        let bias_opt = with_bias.then_some(bias.as_slice());
        let mut want = vec![0.5; m * n];
        let mut got = vec![-0.5; m * n];
        // Identity finisher: the envelope is stated on the linear part; a
        // nonlinear finisher would compose its own condition number on top.
        scalar.matmul_bias_rowapply(&a, &b, bias_opt, &mut want, m, k, n, &mut |_| {});
        fast.matmul_bias_rowapply(&a, &b, bias_opt, &mut got, m, k, n, &mut |_| {});
        let mut mag = matmul_magnitude(&a, &b, m, k, n);
        if with_bias {
            for i in 0..m {
                for j in 0..n {
                    mag[i * n + j] += bias[j].abs();
                }
            }
        }
        assert_enveloped(&want, &got, &mag, k + 1, "matmul_bias_rowapply");
    }

    #[test]
    fn axpy_within_envelope((len, x, y) in (0usize..70).prop_flat_map(|len| {
        (Just(len), operand(len), operand(len))
    }), alpha in -5.0f64..5.0) {
        let Some((scalar, fast)) = tables() else { return Ok(()); };
        let _ = len;
        let mut want = y.clone();
        let mut got = y.clone();
        scalar.axpy(alpha, &x, &mut want);
        fast.axpy(alpha, &x, &mut got);
        let mag: Vec<f64> = x.iter().zip(&y).map(|(&xv, &yv)| (alpha * xv).abs() + yv.abs()).collect();
        // A single fused multiply-add differs from the two-rounding exact
        // form by at most one rounding of the result.
        assert_enveloped(&want, &got, &mag, 1, "axpy");

        // alpha == 1.0 routes both tiers through the same plain-add kernel:
        // bitwise identity, even on the Fast tier.
        let mut want1 = y.clone();
        let mut got1 = y;
        scalar.axpy(1.0, &x, &mut want1);
        fast.axpy(1.0, &x, &mut got1);
        prop_assert_eq!(want1, got1);
    }

    #[test]
    fn elementwise_kernels_stay_bitwise((len, a, b) in (0usize..70).prop_flat_map(|len| {
        (Just(len), operand(len), operand(len))
    }), alpha in -5.0f64..5.0) {
        let Some((scalar, fast)) = tables() else { return Ok(()); };
        let _ = len;
        // add/sub/mul/scale have no multiply-add to contract; the Fast
        // table shares the Exact vector kernels and stays bit-identical.
        let mut want = vec![0.0; a.len()];
        let mut got = vec![9.0; a.len()];
        scalar.add(&a, &b, &mut want);
        fast.add(&a, &b, &mut got);
        prop_assert_eq!(&want, &got);
        scalar.sub(&a, &b, &mut want);
        fast.sub(&a, &b, &mut got);
        prop_assert_eq!(&want, &got);
        scalar.mul(&a, &b, &mut want);
        fast.mul(&a, &b, &mut got);
        prop_assert_eq!(&want, &got);
        scalar.scale(&a, alpha, &mut want);
        fast.scale(&a, alpha, &mut got);
        prop_assert_eq!(&want, &got);
    }
}

/// The `matmul_tb` dot-product path only engages when the transposed-b
/// scratch would overflow its stack budget (`k * n > 4096`); the
/// property-driven shapes never reach it, so pin it explicitly.
#[test]
fn matmul_tb_large_shape_hits_dot_product_path() {
    let Some((scalar, fast)) = tables() else {
        return;
    };
    let (m, k, n) = (3, 80, 60); // k * n = 4800 > 4096
    let a: Vec<f64> = (0..m * k).map(|i| ((i * 37 % 113) as f64) - 56.0).collect();
    let b: Vec<f64> = (0..n * k).map(|i| ((i * 61 % 127) as f64) - 63.0).collect();
    let mut want = vec![0.0; m * n];
    let mut got = vec![1.0; m * n];
    scalar.matmul_tb(&a, &b, &mut want, m, k, n);
    fast.matmul_tb(&a, &b, &mut got, m, k, n);
    let mut mag = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            mag[i * n + j] = (0..k).map(|kk| (a[i * k + kk] * b[j * k + kk]).abs()).sum();
        }
    }
    assert_enveloped(&want, &got, &mag, k, "matmul_tb(large)");
}

#[test]
fn one_by_one_and_empty_shapes_match_exactly() {
    let Some((scalar, fast)) = tables() else {
        return;
    };
    // 1x1: a single product has nothing to contract with — bitwise equal.
    let mut want = [0.0];
    let mut got = [1.0];
    scalar.matmul(&[3.0], &[-2.5], &mut want, 1, 1, 1);
    fast.matmul(&[3.0], &[-2.5], &mut got, 1, 1, 1);
    assert_eq!(want, got);
    // Inner dimension zero: pure zero-fill of the output.
    let mut want = [f64::MAX; 4];
    let mut got = [f64::MIN; 4];
    scalar.matmul(&[], &[], &mut want, 2, 0, 2);
    fast.matmul(&[], &[], &mut got, 2, 0, 2);
    assert_eq!(want.map(f64::to_bits), got.map(f64::to_bits));
    scalar.matmul_tb(&[], &[], &mut want, 2, 0, 2);
    fast.matmul_tb(&[], &[], &mut got, 2, 0, 2);
    assert_eq!(want.map(f64::to_bits), got.map(f64::to_bits));
}

/// NaN, infinities, and signed zeros must classify identically under the
/// Fast tier: fusing a multiply-add never changes *which* lanes are
/// NaN/±inf/±0, only the low bits of finite values.
#[test]
fn special_values_classify_identically() {
    let Some((scalar, fast)) = tables() else {
        return;
    };
    let a = [f64::NAN, 0.0, -0.0, f64::INFINITY, -3.5, 1.0e300];
    let b = [
        1.0,
        f64::NEG_INFINITY,
        2.0,
        -0.0,
        f64::NAN,
        4.0,
        0.5,
        -2.0,
        f64::INFINITY,
    ];
    let mut want = [0.0; 6];
    let mut got = [1.0; 6];
    scalar.matmul(&a, &b, &mut want, 2, 3, 3);
    fast.matmul(&a, &b, &mut got, 2, 3, 3);
    for (i, (&e, &f)) in want.iter().zip(&got).enumerate() {
        if e.is_nan() {
            assert!(f.is_nan(), "[{i}] exact NaN, fast {f:?}");
        } else if e.is_infinite() || e == 0.0 {
            // Infinities match exactly; zeros match including sign.
            assert_eq!(e.to_bits(), f.to_bits(), "[{i}] exact {e:?}, fast {f:?}");
        } else {
            assert!(f.is_finite(), "[{i}] exact {e:?}, fast {f:?}");
        }
    }
}

/// Subnormal inputs flow through the Fast kernels without being flushed:
/// a pure subnormal dot product must agree with the exact tier to the ULP
/// envelope (FMA hardware keeps full precision on subnormal operands).
#[test]
fn subnormals_survive_the_fast_tier() {
    let Some((scalar, fast)) = tables() else {
        return;
    };
    let tiny = f64::from_bits(3); // 3 * 2^-1074, deeply subnormal
    let a = [tiny, -tiny, tiny, 2.0, tiny, 0.5, -tiny, 1.0];
    let b = [0.5; 8]; // 2x4 * 4x2
    let mut want = [9.0; 4];
    let mut got = [-9.0; 4];
    scalar.matmul(&a, &b, &mut want, 2, 4, 2);
    fast.matmul(&a, &b, &mut got, 2, 4, 2);
    let mag = matmul_magnitude(&a, &b, 2, 4, 2);
    assert_enveloped(&want, &got, &mag, 4, "matmul(subnormal)");
    // The purely-subnormal row must not flush to zero.
    assert!(got[0].abs() > 0.0 || want[0] == 0.0);
}

/// A row of exact zeros keeps its `+0.0` fill on both tiers — the Fast
/// matmul preserves the `a == 0.0` skip, so signed-zero semantics of the
/// output initialisation are unchanged.
#[test]
fn zero_rows_stay_positive_zero() {
    let Some((scalar, fast)) = tables() else {
        return;
    };
    let a = [0.0, 0.0, 0.0, 1.0, 2.0, 3.0];
    let b: Vec<f64> = (0..9).map(|i| i as f64 - 4.0).collect();
    let mut want = [5.0; 6];
    let mut got = [-5.0; 6];
    scalar.matmul(&a, &b, &mut want, 2, 3, 3);
    fast.matmul(&a, &b, &mut got, 2, 3, 3);
    for j in 0..3 {
        assert_eq!(want[j].to_bits(), 0.0f64.to_bits());
        assert_eq!(got[j].to_bits(), 0.0f64.to_bits());
    }
}
