//! Scalar-vs-SIMD agreement for every dispatched kernel.
//!
//! The SIMD kernels promise **bit identity** with the scalar reference (see
//! `bellamy_linalg::kernels` module docs), so every comparison here is exact
//! `==` on the f64 bit patterns — no epsilon. Shapes are property-driven and
//! deliberately include ragged tails (`n % 4 != 0`), single elements, and
//! empty operands. On hardware without a vector unit `kernels::simd()`
//! returns `None` and the whole suite passes vacuously.

use bellamy_linalg::kernels::{self, KernelTable};
use proptest::prelude::*;

fn tables() -> Option<(&'static KernelTable, &'static KernelTable)> {
    kernels::simd().map(|simd| (kernels::scalar(), simd))
}

/// Bounded data for an `m x k` operand.
fn operand(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, len)
}

/// Shapes up to 13 hit every `% 4` residue plus the width-8 fast path.
const DIM: std::ops::Range<usize> = 1..14;

proptest! {
    #[test]
    fn matmul_agrees_bitwise((m, k, n, a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (Just(m), Just(k), Just(n), operand(m * k), operand(k * n))
    })) {
        let Some((scalar, simd)) = tables() else { return Ok(()); };
        let mut want = vec![f64::MAX; m * n];
        let mut got = vec![f64::MIN; m * n];
        scalar.matmul(&a, &b, &mut want, m, k, n);
        simd.matmul(&a, &b, &mut got, m, k, n);
        prop_assert_eq!(want, got);
    }

    #[test]
    fn matmul_transpose_b_agrees_bitwise((m, k, n, a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (Just(m), Just(k), Just(n), operand(m * k), operand(n * k))
    })) {
        let Some((scalar, simd)) = tables() else { return Ok(()); };
        let mut want = vec![1.0; m * n];
        let mut got = vec![-1.0; m * n];
        scalar.matmul_tb(&a, &b, &mut want, m, k, n);
        simd.matmul_tb(&a, &b, &mut got, m, k, n);
        prop_assert_eq!(want, got);
    }

    #[test]
    fn transpose_a_matmul_agrees_bitwise((m, k, n, a, b) in (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
        (Just(m), Just(k), Just(n), operand(k * m), operand(k * n))
    })) {
        let Some((scalar, simd)) = tables() else { return Ok(()); };
        let mut want = vec![7.0; m * n];
        let mut got = vec![-7.0; m * n];
        scalar.ta_matmul(&a, &b, &mut want, k, m, n);
        simd.ta_matmul(&a, &b, &mut got, k, m, n);
        prop_assert_eq!(want, got);
    }

    #[test]
    fn matmul_bias_rowapply_agrees_bitwise(((m, k, n), a, b, bias, with_bias) in
        (DIM, DIM, DIM).prop_flat_map(|(m, k, n)| {
            (Just((m, k, n)), operand(m * k), operand(k * n), operand(n), any::<bool>())
        })
    ) {
        let Some((scalar, simd)) = tables() else { return Ok(()); };
        let bias_opt = with_bias.then_some(bias.as_slice());
        let mut want = vec![0.5; m * n];
        let mut got = vec![-0.5; m * n];
        // Row finisher exercises a non-trivial per-row transform.
        scalar.matmul_bias_rowapply(&a, &b, bias_opt, &mut want, m, k, n, &mut |row| {
            for v in row.iter_mut() {
                *v = v.tanh() + 0.25 * *v;
            }
        });
        simd.matmul_bias_rowapply(&a, &b, bias_opt, &mut got, m, k, n, &mut |row| {
            for v in row.iter_mut() {
                *v = v.tanh() + 0.25 * *v;
            }
        });
        prop_assert_eq!(want, got);
    }

    #[test]
    fn elementwise_kernels_agree_bitwise((len, a, b) in (0usize..70).prop_flat_map(|len| {
        (Just(len), operand(len), operand(len))
    }), alpha in -5.0f64..5.0) {
        let Some((scalar, simd)) = tables() else { return Ok(()); };
        let _ = len;

        let mut want = vec![0.0; a.len()];
        let mut got = vec![9.0; a.len()];
        scalar.add(&a, &b, &mut want);
        simd.add(&a, &b, &mut got);
        prop_assert_eq!(&want, &got);

        scalar.sub(&a, &b, &mut want);
        simd.sub(&a, &b, &mut got);
        prop_assert_eq!(&want, &got);

        scalar.mul(&a, &b, &mut want);
        simd.mul(&a, &b, &mut got);
        prop_assert_eq!(&want, &got);

        scalar.scale(&a, alpha, &mut want);
        simd.scale(&a, alpha, &mut got);
        prop_assert_eq!(&want, &got);

        let mut want_y = b.clone();
        let mut got_y = b.clone();
        scalar.axpy(alpha, &a, &mut want_y);
        simd.axpy(alpha, &a, &mut got_y);
        prop_assert_eq!(&want_y, &got_y);

        // alpha == 1.0 takes the dedicated in-place add path.
        let mut want_y1 = b.clone();
        let mut got_y1 = b;
        scalar.axpy(1.0, &a, &mut want_y1);
        simd.axpy(1.0, &a, &mut got_y1);
        prop_assert_eq!(&want_y1, &got_y1);
    }
}

#[test]
fn one_by_one_and_empty_shapes_agree() {
    let Some((scalar, simd)) = tables() else {
        return;
    };
    // 1x1 matmul.
    let mut want = [0.0];
    let mut got = [1.0];
    scalar.matmul(&[3.0], &[-2.5], &mut want, 1, 1, 1);
    simd.matmul(&[3.0], &[-2.5], &mut got, 1, 1, 1);
    assert_eq!(want, got);
    // Inner dimension zero: pure zero-fill of the output.
    let mut want = [f64::MAX; 4];
    let mut got = [f64::MIN; 4];
    scalar.matmul(&[], &[], &mut want, 2, 0, 2);
    simd.matmul(&[], &[], &mut got, 2, 0, 2);
    assert_eq!(want, got);
    scalar.matmul_tb(&[], &[], &mut want, 2, 0, 2);
    simd.matmul_tb(&[], &[], &mut got, 2, 0, 2);
    assert_eq!(want, got);
    // Empty slices through every elementwise kernel.
    let mut w: [f64; 0] = [];
    let mut g: [f64; 0] = [];
    scalar.add(&[], &[], &mut w);
    simd.add(&[], &[], &mut g);
    scalar.scale(&[], 2.0, &mut w);
    simd.scale(&[], 2.0, &mut g);
    scalar.axpy(0.5, &[], &mut w);
    simd.axpy(0.5, &[], &mut g);
}

#[test]
fn special_values_propagate_identically() {
    let Some((scalar, simd)) = tables() else {
        return;
    };
    // NaN, infinities, and signed zeros must flow through both paths the
    // same way — including the zero-skip in the scalar matmul, which the
    // SIMD path replicates.
    let a = [f64::NAN, 0.0, -0.0, f64::INFINITY, -3.5, 1.0e300];
    let b = [
        1.0,
        f64::NEG_INFINITY,
        2.0,
        -0.0,
        f64::NAN,
        4.0,
        0.5,
        -2.0,
        f64::INFINITY,
    ];
    let mut want = [0.0; 6];
    let mut got = [1.0; 6];
    scalar.matmul(&a, &b, &mut want, 2, 3, 3);
    simd.matmul(&a, &b, &mut got, 2, 3, 3);
    assert_eq!(
        want.map(f64::to_bits),
        got.map(f64::to_bits),
        "want {want:?}, got {got:?}"
    );

    let mut want = [0.0; 6];
    let mut got = [1.0; 6];
    scalar.mul(&a, &a, &mut want);
    simd.mul(&a, &a, &mut got);
    assert_eq!(want.map(f64::to_bits), got.map(f64::to_bits));
}
