//! Small statistics helpers shared by the evaluation harness and tests.

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample standard deviation. Returns `0.0` for fewer than two values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Median of a slice (averaging the middle pair for even lengths).
/// Returns `NaN` for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Linear-interpolation percentile (`q` in `[0, 1]`), matching numpy's default.
/// Returns `NaN` for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    assert!((0.0..=1.0).contains(&q), "percentile q={q} outside [0,1]");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Min-max normalization of `v` into `[0, 1]` given training bounds.
/// Degenerate bounds — `max <= min`, or any non-finite bound (NaN/±inf
/// bounds carry no scale information and would otherwise poison every
/// downstream prediction with NaN) — map everything to `0.5`. A non-finite
/// `v` propagates unchanged so the caller can detect it.
pub fn min_max_normalize(v: f64, min: f64, max: f64) -> f64 {
    if !(min.is_finite() && max.is_finite() && max > min) {
        0.5
    } else {
        (v - min) / (max - min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Sample std of this classic dataset is sqrt(32/7).
        assert!((std_dev(&v) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(mean(&[]).is_nan());
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert!(median(&[]).is_nan());
        assert!(percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert!((percentile(&v, 0.5) - 25.0).abs() < 1e-12);
        assert!((percentile(&v, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_normalize_bounds() {
        assert_eq!(min_max_normalize(5.0, 0.0, 10.0), 0.5);
        assert_eq!(min_max_normalize(0.0, 0.0, 10.0), 0.0);
        assert_eq!(min_max_normalize(10.0, 0.0, 10.0), 1.0);
        // Out-of-range inputs extrapolate linearly (inference beyond training bounds).
        assert_eq!(min_max_normalize(20.0, 0.0, 10.0), 2.0);
        // Degenerate bounds collapse to 0.5.
        assert_eq!(min_max_normalize(7.0, 3.0, 3.0), 0.5);
    }

    #[test]
    fn min_max_normalize_guards_non_finite_bounds() {
        // Unfitted/corrupt bounds must not leak NaN into predictions.
        assert_eq!(min_max_normalize(7.0, f64::NAN, 3.0), 0.5);
        assert_eq!(min_max_normalize(7.0, 3.0, f64::NAN), 0.5);
        assert_eq!(
            min_max_normalize(7.0, f64::INFINITY, f64::NEG_INFINITY),
            0.5
        );
        assert_eq!(
            min_max_normalize(7.0, f64::NEG_INFINITY, f64::INFINITY),
            0.5
        );
        // A non-finite value propagates (callers reject it upstream).
        assert!(min_max_normalize(f64::NAN, 0.0, 1.0).is_nan());
    }
}
