//! Owned-vs-mapped backing storage for [`Matrix`](crate::Matrix).
//!
//! A matrix either *owns* its elements (an [`AlignedBuf`], the only variant
//! that existed before the zero-copy checkpoint store) or *borrows* them from
//! a read-only file mapping ([`Mmap`]) shared through an `Arc`. Everything
//! downstream of construction sees a plain `&[f64]` via `Deref`, so the
//! kernels, the autograd tape, and every `*_into` path are oblivious to the
//! variant.
//!
//! The contract:
//!
//! - **Reads** are identical across variants — same bytes, same alignment
//!   guarantees (owned buffers are 32-byte aligned structurally; mapped
//!   slices are 32-byte aligned because the map base is page-aligned and the
//!   checkpoint format places every payload at a 64-byte-aligned file
//!   offset, which [`Storage::mapped`] re-validates).
//! - **Mutation of a mapped matrix panics.** Mapped storage exists only for
//!   immutable serving snapshots; the type system cannot forbid `&mut`
//!   access (the `Matrix` API predates the split), so the mutable accessor
//!   is a loud runtime error instead of silent UB on read-only pages.
//! - **`Clone` materializes.** Cloning mapped storage deep-copies into an
//!   owned buffer — so deriving a trainer handle from a mapped snapshot
//!   (`Bellamy::from_state`) or re-serializing it (`to_checkpoint`) yields
//!   ordinary mutable matrices without any caller changes.
//! - **Serde materializes.** Mapped storage serializes exactly like the
//!   owned copy of itself and always deserializes as owned.

use crate::aligned::AlignedBuf;
use crate::mmap::Mmap;
use serde::{Deserialize, Serialize, Value};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// The backing store of a [`Matrix`](crate::Matrix): owned aligned elements,
/// or a borrowed window of a shared read-only file mapping.
pub enum Storage {
    /// Heap-owned, 32-byte-aligned elements (the classic variant).
    Owned(AlignedBuf),
    /// `len` `f64`s starting `offset` bytes into a shared read-only map.
    /// The `Arc` keeps the mapping alive for as long as any matrix views it.
    Mapped {
        /// The shared file mapping.
        map: Arc<Mmap>,
        /// Byte offset of the first element within the map.
        offset: usize,
        /// Number of `f64` elements.
        len: usize,
    },
}

impl Storage {
    /// Builds a mapped storage over `len` little-endian `f64`s at byte
    /// `offset` of `map`, validating bounds and alignment.
    ///
    /// # Errors
    /// Returns a message when the window exceeds the map or the resulting
    /// data pointer is not 8-byte aligned (a misaligned `f64` view would be
    /// undefined behaviour, not merely slow).
    pub fn mapped(map: Arc<Mmap>, offset: usize, len: usize) -> Result<Self, String> {
        let bytes = len
            .checked_mul(8)
            .and_then(|b| b.checked_add(offset))
            .ok_or_else(|| "mapped window length overflows".to_string())?;
        if bytes > map.len() {
            return Err(format!(
                "mapped window [{offset}, {bytes}) exceeds map of {} bytes",
                map.len()
            ));
        }
        let ptr = map.as_slice().as_ptr() as usize + offset;
        if !ptr.is_multiple_of(std::mem::align_of::<f64>()) {
            return Err(format!("mapped window at offset {offset} is misaligned"));
        }
        Ok(Self::Mapped { map, offset, len })
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Storage::Owned(buf) => buf.len(),
            Storage::Mapped { len, .. } => *len,
        }
    }

    /// True when no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the mapped variant.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self, Storage::Mapped { .. })
    }

    /// The elements as a slice (either variant).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        match self {
            Storage::Owned(buf) => buf.as_slice(),
            Storage::Mapped { map, offset, len } => {
                // SAFETY: bounds and 8-byte alignment were validated in
                // `Storage::mapped`; the map is immutable and outlives
                // `self` via the Arc; every byte pattern is a valid f64.
                unsafe {
                    std::slice::from_raw_parts(
                        map.as_slice().as_ptr().add(*offset).cast::<f64>(),
                        *len,
                    )
                }
            }
        }
    }

    /// The elements as a mutable slice.
    ///
    /// # Panics
    /// Panics for mapped storage: mapped matrices are immutable serving
    /// views. Clone the matrix first (clones are always owned).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        match self {
            Storage::Owned(buf) => buf.as_mut_slice(),
            Storage::Mapped { .. } => panic!(
                "mutable access to a memory-mapped matrix: mapped storage is an \
                 immutable serving view; clone it (clones are owned) before mutating"
            ),
        }
    }

    /// Consumes the storage, returning an owned aligned buffer — the
    /// original one for `Owned`, a deep copy for `Mapped` (the pool-recycle
    /// path never sees mapped matrices in practice; copying keeps the
    /// contract total instead of panicking).
    pub fn into_aligned(self) -> AlignedBuf {
        match self {
            Storage::Owned(buf) => buf,
            Storage::Mapped { .. } => AlignedBuf::from_slice(self.as_slice()),
        }
    }
}

impl Clone for Storage {
    /// Owned clones stay owned; mapped clones **materialize** into owned
    /// storage (see the module docs for why).
    fn clone(&self) -> Self {
        match self {
            Storage::Owned(buf) => Storage::Owned(buf.clone()),
            Storage::Mapped { .. } => Storage::Owned(AlignedBuf::from_slice(self.as_slice())),
        }
    }
}

impl Deref for Storage {
    type Target = [f64];

    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for Storage {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl PartialEq for Storage {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Storage::Owned(buf) => f.debug_tuple("Owned").field(&buf.len()).finish(),
            Storage::Mapped { offset, len, .. } => f
                .debug_struct("Mapped")
                .field("offset", offset)
                .field("len", len)
                .finish(),
        }
    }
}

impl Serialize for Storage {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl Deserialize for Storage {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        AlignedBuf::from_json_value(v).map(Storage::Owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;
    use std::io::Write;

    fn mapped_fixture(values: &[f64]) -> (Arc<Mmap>, std::path::PathBuf) {
        let path = std::env::temp_dir().join(format!(
            "bellamy-storage-{}-{}",
            std::process::id(),
            values.len()
        ));
        let mut f = File::create(&path).unwrap();
        for v in values {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        f.sync_all().unwrap();
        let map = Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        (map, path)
    }

    #[test]
    fn mapped_reads_match_owned() {
        let values = [1.5, -2.0, 0.0, f64::MAX, 1e-300];
        let (map, path) = mapped_fixture(&values);
        let mapped = Storage::mapped(map, 0, values.len()).unwrap();
        let owned = Storage::Owned(AlignedBuf::from_slice(&values));
        assert!(mapped.is_mapped());
        assert!(!owned.is_mapped());
        assert_eq!(mapped, owned);
        assert_eq!(mapped.as_slice(), &values);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_clone_is_owned_and_bit_identical() {
        let values = [3.25, -0.0, f64::MIN_POSITIVE];
        let (map, path) = mapped_fixture(&values);
        let mapped = Storage::mapped(map, 0, values.len()).unwrap();
        let clone = mapped.clone();
        assert!(!clone.is_mapped(), "clones must materialize");
        for (a, b) in mapped.as_slice().iter().zip(clone.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "mutable access to a memory-mapped matrix")]
    fn mapped_mutation_panics() {
        let (map, _path) = mapped_fixture(&[1.0, 2.0]);
        let mut mapped = Storage::mapped(map, 0, 2).unwrap();
        let _ = mapped.as_mut_slice();
    }

    #[test]
    fn mapped_rejects_out_of_bounds_windows() {
        let (map, path) = mapped_fixture(&[1.0, 2.0]);
        assert!(Storage::mapped(Arc::clone(&map), 0, 3).is_err());
        assert!(Storage::mapped(Arc::clone(&map), 8, 2).is_err());
        assert!(Storage::mapped(Arc::clone(&map), usize::MAX, 1).is_err());
        assert!(Storage::mapped(map, 8, 1).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serde_round_trip_materializes() {
        let (map, path) = mapped_fixture(&[1.0, 2.0, 3.0]);
        let mapped = Storage::mapped(map, 0, 3).unwrap();
        let back = Storage::from_json_value(&mapped.to_json_value()).unwrap();
        assert!(!back.is_mapped());
        assert_eq!(back, mapped);
        std::fs::remove_file(&path).ok();
    }
}
