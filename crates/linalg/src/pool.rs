//! A buffer pool recycling aligned `f64` backing stores by capacity.
//!
//! # Lifecycle
//!
//! The training hot path allocates the same set of matrix shapes every step.
//! Instead of round-tripping each backing store through the global allocator,
//! owners of steady-state storage (the autograd tape arena, gradient
//! workspaces) return retired stores to a [`BufferPool`] and draw
//! replacements from it:
//!
//! 1. **take** — [`BufferPool::take`] hands out the smallest pooled store
//!    whose *capacity* covers the request (best fit), resized and
//!    zero-filled; only when no store fits does it fall back to a fresh
//!    allocation.
//! 2. **use** — the caller wraps the store in a [`Matrix`] (or uses
//!    [`BufferPool::take_matrix`]) and computes into it with the `*_into`
//!    kernels.
//! 3. **put** — when the shape of a slot changes (e.g. the last, smaller
//!    minibatch of an epoch), the store goes back via [`BufferPool::put`] /
//!    [`BufferPool::put_matrix`] instead of being dropped.
//!
//! Because steady-state training replays an identical shape sequence, the
//! pool reaches a fixed point after warm-up: every `take` is served from the
//! pool and the allocator is never touched again. Shape *changes* (epoch
//! boundaries) cycle between already-pooled capacities, so they are
//! allocation-free too once each distinct shape has been seen once.
//!
//! # Alignment contract
//!
//! Pooled stores are [`AlignedBuf`]s: the data pointer of every store this
//! pool hands out — fresh or recycled, any length — is **32-byte aligned**,
//! matching the [`kernels`](crate::kernels) subsystem's alignment contract
//! for matrix backing storage. Reshaping on `take` happens inside the
//! aligned buffer, so recycling never degrades alignment.

use crate::aligned::AlignedBuf;
use crate::matrix::Matrix;

/// Recycles 32-byte-aligned backing stores by capacity (see the module
/// docs).
#[derive(Debug, Default)]
pub struct BufferPool {
    /// Retired stores, kept sorted by capacity (ascending) for best-fit
    /// lookup.
    buffers: Vec<AlignedBuf>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stores currently pooled.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// True when no stores are pooled.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// A zero-filled store of exactly `len` elements: the smallest pooled
    /// store with `capacity >= len`, or a fresh allocation when none fits.
    pub fn take(&mut self, len: usize) -> AlignedBuf {
        // Best fit: buffers are sorted by capacity, so the first store that
        // fits is the tightest one.
        match self.buffers.iter().position(|b| b.capacity() >= len) {
            Some(idx) => {
                let mut buf = self.buffers.remove(idx);
                buf.reset_zeroed(len);
                buf
            }
            None => AlignedBuf::zeroed(len),
        }
    }

    /// A zero-filled `rows x cols` matrix backed by pooled storage.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_aligned(rows, cols, self.take(rows * cols))
    }

    /// Returns a store to the pool.
    pub fn put(&mut self, buf: AlignedBuf) {
        if buf.capacity() == 0 {
            return;
        }
        let pos = self
            .buffers
            .partition_point(|b| b.capacity() < buf.capacity());
        self.buffers.insert(pos, buf);
    }

    /// Returns a matrix's backing store to the pool.
    pub fn put_matrix(&mut self, m: Matrix) {
        self.put(m.into_aligned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_prefers_tightest_fit() {
        let mut pool = BufferPool::new();
        pool.put(AlignedBuf::with_capacity(100));
        pool.put(AlignedBuf::with_capacity(10));
        pool.put(AlignedBuf::with_capacity(40));
        let buf = pool.take(12);
        assert!(
            buf.capacity() >= 12 && buf.capacity() < 100,
            "got {}",
            buf.capacity()
        );
        assert_eq!(buf.len(), 12);
        assert!(buf.iter().all(|&v| v == 0.0));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn take_falls_back_to_fresh_allocation() {
        let mut pool = BufferPool::new();
        pool.put(AlignedBuf::with_capacity(4));
        let buf = pool.take(1000);
        assert_eq!(buf.len(), 1000);
        assert_eq!(pool.len(), 1, "undersized store must stay pooled");
    }

    #[test]
    fn recycled_stores_are_zeroed() {
        let mut pool = BufferPool::new();
        pool.put(AlignedBuf::from_slice(&[7.0; 32]));
        let buf = pool.take(16);
        assert!(buf.iter().all(|&v| v == 0.0), "stale values must not leak");
    }

    #[test]
    fn stores_are_32_byte_aligned_across_recycling() {
        let mut pool = BufferPool::new();
        for len in [1usize, 5, 12, 64, 33] {
            let buf = pool.take(len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 32, 0, "len {len}");
            pool.put(buf);
        }
    }

    #[test]
    fn matrix_round_trip_reuses_capacity() {
        let mut pool = BufferPool::new();
        let m = pool.take_matrix(8, 8);
        let ptr = m.as_slice().as_ptr();
        pool.put_matrix(m);
        let m2 = pool.take_matrix(4, 4);
        assert_eq!(m2.shape(), (4, 4));
        assert_eq!(
            m2.as_slice().as_ptr(),
            ptr,
            "same backing store must be reused"
        );
    }

    #[test]
    fn steady_state_reaches_allocation_fixpoint() {
        // Replaying the same shape sequence must always be served from the
        // pool after the first round.
        let mut pool = BufferPool::new();
        let shapes = [(64usize, 40usize), (64, 8), (1, 1), (64, 40), (8, 4)];
        let mut round_ptrs: Vec<Vec<*const f64>> = Vec::new();
        for _ in 0..3 {
            let mats: Vec<Matrix> = shapes
                .iter()
                .map(|&(r, c)| pool.take_matrix(r, c))
                .collect();
            round_ptrs.push(mats.iter().map(|m| m.as_slice().as_ptr()).collect());
            for m in mats {
                pool.put_matrix(m);
            }
        }
        let mut later: Vec<*const f64> = round_ptrs[1..].concat();
        let mut first: Vec<*const f64> = round_ptrs[0].clone();
        first.sort_unstable();
        later.sort_unstable();
        later.dedup();
        assert!(
            later.iter().all(|p| first.binary_search(p).is_ok()),
            "rounds after warm-up must reuse round-one stores"
        );
    }

    #[test]
    fn empty_stores_are_not_pooled() {
        let mut pool = BufferPool::new();
        pool.put(AlignedBuf::new());
        assert!(pool.is_empty());
    }
}
