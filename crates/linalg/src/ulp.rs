//! ULP-distance measurement for the Fast-tier accuracy harness.
//!
//! The [`kernels`](crate::kernels) Fast tier promises results within a
//! documented envelope of the Exact tier. Stating that envelope in *units in
//! the last place* (ULPs) makes it scale-free: one ULP at `1e-300` and one
//! ULP at `1e300` are the same relative error (≈ 2⁻⁵²), so a single integer
//! bound covers the kernel's whole dynamic range.
//!
//! [`ulp_distance`] maps each finite `f64` onto the integer number line of
//! representable values (a monotone order-preserving bijection) and returns
//! the absolute difference of those indices — i.e. how many representable
//! doubles sit between the two arguments. `+0.0` and `-0.0` map to the same
//! index (distance 0); NaNs and differing infinities have no meaningful
//! distance and return `None`.
//!
//! A pure ULP bound on a *sum* is the wrong tool under catastrophic
//! cancellation — when `Σ aᵢbᵢ` nearly cancels, even the Exact tier's own
//! accumulation order changes the result by unbounded ULPs relative to the
//! tiny output. The harness therefore checks a compound predicate, captured
//! by [`within_envelope`]: close in ULPs **or** small relative to the
//! magnitude of the terms that produced the value (the `γₖ·Σ|aᵢbᵢ|`
//! backstop from standard dot-product error analysis).

/// Maps a finite `f64` onto the signed integer line of representable values.
///
/// Positive floats map to their IEEE-754 bit pattern, negatives mirror to
/// the negative axis, and both zeros map to `0` — so ordering and adjacency
/// of floats become ordering and adjacency of integers.
#[inline]
fn ordered_repr(x: f64) -> i64 {
    let bits = x.to_bits() as i64;
    if bits < 0 {
        // Negative floats: mirror the magnitude bits to the negative axis
        // (wrapping only for -0.0, whose bit pattern is i64::MIN itself).
        i64::MIN.wrapping_sub(bits)
    } else {
        bits
    }
}

/// Number of representable `f64` values between `a` and `b`.
///
/// Returns `Some(0)` when the values are identical (including `+0.0` vs
/// `-0.0`, and two NaNs or two equal infinities — bitwise-equal specials
/// count as distance zero). Returns `None` when either value is NaN (and
/// they are not bitwise equal) or exactly one is infinite: no finite
/// distance describes those pairs.
#[must_use]
pub fn ulp_distance(a: f64, b: f64) -> Option<u64> {
    if a.to_bits() == b.to_bits() || (a == b && a.abs() != f64::INFINITY) {
        return Some(0);
    }
    if a.is_nan() || b.is_nan() {
        return None;
    }
    if a.is_infinite() || b.is_infinite() {
        // Equal infinities were caught by the bitwise check; a mixed or
        // opposite-sign pair has no meaningful ULP distance.
        return None;
    }
    let (ra, rb) = (ordered_repr(a), ordered_repr(b));
    Some(ra.abs_diff(rb))
}

/// The Fast-tier accuracy predicate: `fast` is an acceptable stand-in for
/// `exact` if it is within `max_ulps` ULPs, **or** within
/// `rel_tol * magnitude` absolutely, where `magnitude` is the caller's
/// cancellation-aware scale (typically `Σ|aᵢ·bᵢ|` for a dot product, or
/// `|exact|` when no cancellation is possible).
///
/// Special values must agree exactly: NaN must pair with NaN, and an
/// infinity must pair with the *same* infinity — the Fast tier never turns
/// a finite result into a special or vice versa.
#[must_use]
pub fn within_envelope(exact: f64, fast: f64, max_ulps: u64, rel_tol: f64, magnitude: f64) -> bool {
    if exact.is_nan() {
        return fast.is_nan();
    }
    if exact.is_infinite() {
        return fast == exact;
    }
    if fast.is_nan() || fast.is_infinite() {
        return false;
    }
    if let Some(d) = ulp_distance(exact, fast) {
        if d <= max_ulps {
            return true;
        }
    }
    (fast - exact).abs() <= rel_tol * magnitude
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_are_zero_apart() {
        assert_eq!(ulp_distance(1.5, 1.5), Some(0));
        assert_eq!(ulp_distance(0.0, -0.0), Some(0));
        assert_eq!(ulp_distance(f64::NAN, f64::NAN), Some(0));
        assert_eq!(ulp_distance(f64::INFINITY, f64::INFINITY), Some(0));
    }

    #[test]
    fn adjacent_values_are_one_apart() {
        let x = 1.0f64;
        let next = f64::from_bits(x.to_bits() + 1);
        assert_eq!(ulp_distance(x, next), Some(1));
        let neg = -1.0f64;
        let neg_next = f64::from_bits(neg.to_bits() + 1); // toward zero
        assert_eq!(ulp_distance(neg, neg_next), Some(1));
    }

    #[test]
    fn distance_crosses_zero() {
        let pos = f64::from_bits(1); // smallest positive subnormal
        let neg = -pos;
        assert_eq!(ulp_distance(pos, neg), Some(2));
        assert_eq!(ulp_distance(0.0, pos), Some(1));
        assert_eq!(ulp_distance(-0.0, pos), Some(1));
    }

    #[test]
    fn specials_have_no_distance() {
        assert_eq!(ulp_distance(f64::NAN, 1.0), None);
        assert_eq!(ulp_distance(1.0, f64::NAN), None);
        assert_eq!(ulp_distance(f64::INFINITY, 1.0), None);
        assert_eq!(ulp_distance(f64::INFINITY, f64::NEG_INFINITY), None);
    }

    #[test]
    fn distance_is_symmetric_and_monotone() {
        let a = 2.0f64;
        let b = f64::from_bits(a.to_bits() + 7);
        assert_eq!(ulp_distance(a, b), ulp_distance(b, a));
        assert_eq!(ulp_distance(a, b), Some(7));
    }

    #[test]
    fn envelope_accepts_close_and_rejects_far() {
        assert!(within_envelope(1.0, 1.0, 0, 0.0, 0.0));
        let two_ulps = f64::from_bits(1.0f64.to_bits() + 2);
        assert!(within_envelope(1.0, two_ulps, 2, 0.0, 0.0));
        assert!(!within_envelope(1.0, two_ulps, 1, 0.0, 0.0));
        // Cancellation backstop: far in ULPs of the tiny result, but small
        // against the magnitude of the inputs that produced it.
        assert!(within_envelope(1e-20, 3e-17, 4, 1e-15, 100.0));
        assert!(!within_envelope(1e-20, 3e-10, 4, 1e-15, 100.0));
    }

    #[test]
    fn envelope_requires_matching_specials() {
        assert!(within_envelope(f64::NAN, f64::NAN, 0, 0.0, 0.0));
        assert!(!within_envelope(f64::NAN, 1.0, u64::MAX, 1.0, 1e300));
        assert!(within_envelope(f64::INFINITY, f64::INFINITY, 0, 0.0, 0.0));
        assert!(!within_envelope(
            f64::INFINITY,
            f64::NEG_INFINITY,
            0,
            0.0,
            0.0
        ));
        assert!(!within_envelope(1.0, f64::INFINITY, u64::MAX, 1.0, 1e300));
    }
}
