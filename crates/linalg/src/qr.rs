//! Householder QR decomposition and least-squares solving.
//!
//! The decomposition is the workhorse behind [`crate::nnls()`]: every iteration
//! of Lawson–Hanson solves an unconstrained least-squares problem restricted
//! to the passive variable set, which we do via QR for numerical robustness
//! (the normal equations square the condition number, and Ernest's design
//! matrix `[1, 1/x, log x, x]` is poorly conditioned for small scale-outs).

use crate::matrix::Matrix;

/// A thin Householder QR decomposition of an `m x n` matrix with `m >= n`.
///
/// `Q` is represented implicitly by its Householder reflectors; [`Self::solve`]
/// applies them to the right-hand side without materializing `Q`.
pub struct QrDecomposition {
    /// Packed factorization: upper triangle holds `R`, the strict lower
    /// triangle plus `beta` hold the reflectors.
    qr: Matrix,
    /// Scalar `beta_k = v_k[k]` terms of the reflectors (diagonal of the
    /// implicit `V` matrix).
    betas: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl QrDecomposition {
    /// Computes the decomposition of `a` (`m x n`, `m >= n`).
    ///
    /// # Panics
    /// Panics if `a` has more columns than rows.
    pub fn new(a: &Matrix) -> Self {
        let (m, n) = a.shape();
        assert!(m >= n, "QR requires rows >= cols, got {m}x{n}");
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Norm of the k-th column below (and including) the diagonal
            // (strided column iterator: no per-element index arithmetic, no
            // column copy).
            let mut norm = 0.0;
            for v in qr.col_iter(k).skip(k) {
                norm += v * v;
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            // Choose the sign that avoids cancellation.
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let vk = qr[(k, k)] - alpha;
            betas[k] = vk;
            // Store the reflector tail in place; R's diagonal entry is alpha.
            qr[(k, k)] = alpha;
            // v = [vk, qr[k+1..m, k]]; normalize applications by vtv.
            let mut vtv = vk * vk;
            for v in qr.col_iter(k).skip(k + 1) {
                vtv += v * v;
            }
            if vtv == 0.0 {
                continue;
            }
            // Apply H = I - 2 v v^T / (v^T v) to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = vk * qr[(k, j)];
                for (v, w) in qr.col_iter(k).skip(k + 1).zip(qr.col_iter(j).skip(k + 1)) {
                    dot += v * w;
                }
                let factor = 2.0 * dot / vtv;
                qr[(k, j)] -= factor * vk;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= factor * vik;
                }
            }
        }

        Self {
            qr,
            betas,
            rows: m,
            cols: n,
        }
    }

    /// Returns the upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> Matrix {
        let n = self.cols;
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// Reconstructs the thin `Q` factor (`m x n`) explicitly. Intended for
    /// tests; solving goes through the implicit representation.
    pub fn q(&self) -> Matrix {
        let (m, n) = (self.rows, self.cols);
        let mut q = Matrix::zeros(m, n);
        for j in 0..n {
            // Apply reflectors to the j-th standard basis vector.
            let mut e = vec![0.0; m];
            e[j] = 1.0;
            // Q = H_0 H_1 ... H_{n-1}; apply in reverse order.
            for k in (0..n).rev() {
                self.apply_reflector(k, &mut e);
            }
            for i in 0..m {
                q[(i, j)] = e[i];
            }
        }
        q
    }

    /// Applies reflector `k` to the vector `x` in place. The reflector tail
    /// is read through the strided column iterator — no allocation, no
    /// per-element index arithmetic.
    fn apply_reflector(&self, k: usize, x: &mut [f64]) {
        let vk = self.betas[k];
        let tail = || self.qr.col_iter(k).skip(k + 1);
        let mut vtv = vk * vk;
        for v in tail() {
            vtv += v * v;
        }
        if vtv == 0.0 {
            return;
        }
        let mut dot = vk * x[k];
        for (v, &xi) in tail().zip(x[k + 1..].iter()) {
            dot += v * xi;
        }
        let factor = 2.0 * dot / vtv;
        x[k] -= factor * vk;
        for (xi, v) in x[k + 1..].iter_mut().zip(tail()) {
            *xi -= factor * v;
        }
    }

    /// Solves the least-squares problem `min ||a x - b||_2` for the matrix
    /// this decomposition was computed from.
    ///
    /// Returns `None` if `R` is numerically singular (rank-deficient system).
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.cols;
        // y = Q^T b: apply reflectors in forward order.
        let mut y = b.to_vec();
        for k in 0..n {
            self.apply_reflector(k, &mut y);
        }
        // Back-substitution on R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            let diag = self.qr[(i, i)];
            if diag.abs() < 1e-12 {
                return None;
            }
            x[i] = acc / diag;
        }
        Some(x)
    }
}

/// Convenience wrapper: least-squares solution of `min ||a x - b||` via QR.
///
/// Returns `None` when the system is rank-deficient.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    QrDecomposition::new(a).solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.5],
            vec![1.0, 3.0, -2.0],
            vec![0.0, 1.0, 4.0],
            vec![-1.5, 2.0, 1.0],
            vec![0.3, -0.7, 2.2],
        ]);
        let qr = QrDecomposition::new(&a);
        let rec = qr.q().matmul(&qr.r());
        assert!(
            rec.max_abs_diff(&a) < 1e-10,
            "QR reconstruction failed: {rec:?}"
        );
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_fn(6, 3, |i, j| ((i + 1) as f64).powi(j as i32));
        let q = QrDecomposition::new(&a).q();
        let qtq = q.transpose_a_matmul(&q);
        assert!(qtq.max_abs_diff(&Matrix::eye(3)) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i * 4 + j) as f64 * 0.37).sin());
        let r = QrDecomposition::new(&a).r();
        for i in 1..4 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solves_square_system_exactly() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]);
        let x = lstsq(&a, &[9.0, 8.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Overdetermined fit of y = 1 + 2 t with noise-free data must recover
        // the coefficients exactly.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_residual_is_orthogonal_to_columns() {
        // Varying frequencies keep the columns linearly independent.
        let a = Matrix::from_fn(8, 3, |i, j| (i as f64 * 0.73 * (j + 1) as f64).cos());
        let b: Vec<f64> = (0..8).map(|i| (i as f64 * 1.1).sin()).collect();
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(ax.iter()).map(|(&bi, &ai)| bi - ai).collect();
        // A^T r == 0 at the least-squares optimum.
        let atr = a.transpose().matvec(&resid);
        for v in atr {
            assert!(v.abs() < 1e-9, "normal equations violated: {v}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        assert!(lstsq(&a, &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        let _ = QrDecomposition::new(&a);
    }
}
