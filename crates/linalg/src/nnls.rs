//! Non-negative least squares via the Lawson–Hanson active-set algorithm.
//!
//! Solves `min ||A x - b||_2  s.t.  x >= 0`, the problem scipy's `nnls`
//! solves and the fitting procedure Ernest \[18\] prescribes for its parametric
//! runtime model (the paper's `NNLS` baseline). The implementation follows
//! Lawson & Hanson, *Solving Least Squares Problems* (1974), ch. 23, with the
//! inner least-squares restricted to the passive set solved by Householder QR.

use crate::matrix::Matrix;
use crate::qr::QrDecomposition;

/// Failure modes of the NNLS solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnlsError {
    /// `A` and `b` disagree on the number of rows.
    DimensionMismatch { rows: usize, rhs: usize },
    /// The iteration limit was exceeded (pathological inputs).
    IterationLimit,
}

impl std::fmt::Display for NnlsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnlsError::DimensionMismatch { rows, rhs } => {
                write!(f, "A has {rows} rows but b has {rhs} entries")
            }
            NnlsError::IterationLimit => write!(f, "NNLS iteration limit exceeded"),
        }
    }
}

impl std::error::Error for NnlsError {}

/// Result of an NNLS solve.
#[derive(Debug, Clone)]
pub struct NnlsSolution {
    /// The non-negative coefficient vector.
    pub x: Vec<f64>,
    /// Euclidean norm of the residual `||A x - b||_2`.
    pub residual_norm: f64,
    /// Number of outer-loop iterations performed.
    pub iterations: usize,
}

/// Tolerance below which a dual value is considered non-positive.
const DUAL_TOLERANCE: f64 = 1e-10;

/// Solves `min ||A x - b||_2` subject to `x >= 0`.
///
/// Returns the optimal coefficients together with the residual norm. The
/// solution satisfies the KKT conditions: `x >= 0`, `w = A^T (b - A x) <= 0`
/// on the active set, and `w = 0` on the passive set (up to tolerance).
pub fn nnls(a: &Matrix, b: &[f64]) -> Result<NnlsSolution, NnlsError> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(NnlsError::DimensionMismatch {
            rows: m,
            rhs: b.len(),
        });
    }

    let mut x = vec![0.0; n];
    let mut passive = vec![false; n];
    // Standard bound from Lawson–Hanson: each variable can enter/leave a
    // bounded number of times in practice; 3n outer iterations is generous.
    let max_iterations = 3 * n.max(8);
    let mut iterations = 0;

    // Dual-vector workspaces, reused across outer iterations; the transposed
    // matvec reads A through the strided column iterator, so no per-iteration
    // transpose is ever materialized.
    let mut resid = vec![0.0; m];
    let mut w = vec![0.0; n];

    loop {
        // Dual vector w = A^T (b - A x).
        a.matvec_into(&x, &mut resid);
        for (r, &bi) in resid.iter_mut().zip(b.iter()) {
            *r = bi - *r;
        }
        a.transpose_matvec_into(&resid, &mut w);

        // Pick the most positive dual among active variables.
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if !passive[j] && w[j] > DUAL_TOLERANCE {
                match best {
                    Some((_, bw)) if bw >= w[j] => {}
                    _ => best = Some((j, w[j])),
                }
            }
        }
        let Some((enter, _)) = best else {
            // KKT satisfied: done.
            let norm = resid.iter().map(|r| r * r).sum::<f64>().sqrt();
            return Ok(NnlsSolution {
                x,
                residual_norm: norm,
                iterations,
            });
        };
        passive[enter] = true;

        // Inner loop: solve the unconstrained problem on the passive set and
        // walk back along the segment to stay feasible.
        loop {
            iterations += 1;
            if iterations > max_iterations * 10 {
                return Err(NnlsError::IterationLimit);
            }

            let passive_idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            if passive_idx.len() > m {
                // Underdetermined passive set (fewer observations than active
                // coefficients): refuse the entering variable and keep the
                // current iterate, mirroring the rank-deficient path.
                passive[enter] = false;
                break;
            }
            let sub = submatrix_cols(a, &passive_idx);
            let z_sub = match QrDecomposition::new(&sub).solve(b) {
                Some(z) => z,
                None => {
                    // Rank-deficient passive set: drop the entering variable
                    // and accept the current iterate for it.
                    passive[enter] = false;
                    break;
                }
            };
            let mut z = vec![0.0; n];
            for (&j, &v) in passive_idx.iter().zip(z_sub.iter()) {
                z[j] = v;
            }

            if passive_idx.iter().all(|&j| z[j] > 0.0) {
                x = z;
                break;
            }

            // Find the largest feasible step alpha towards z.
            let mut alpha = f64::INFINITY;
            for &j in &passive_idx {
                if z[j] <= 0.0 {
                    let denom = x[j] - z[j];
                    if denom > 0.0 {
                        alpha = alpha.min(x[j] / denom);
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for j in 0..n {
                if passive[j] {
                    x[j] += alpha * (z[j] - x[j]);
                }
            }
            // Move variables that hit zero back to the active set.
            for j in 0..n {
                if passive[j] && x[j].abs() < DUAL_TOLERANCE {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
        }
    }
}

/// Gathers the given columns of `a` into a new matrix.
fn submatrix_cols(a: &Matrix, cols: &[usize]) -> Matrix {
    let m = a.rows();
    let mut out = Matrix::zeros(m, cols.len());
    for i in 0..m {
        let row = a.row(i);
        for (dst, &j) in cols.iter().enumerate() {
            out[(i, dst)] = row[j];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> Vec<f64> {
        a.matvec(x)
            .iter()
            .zip(b.iter())
            .map(|(ax, bi)| bi - ax)
            .collect()
    }

    #[test]
    fn unconstrained_optimum_already_nonnegative() {
        // y = 1 + 2 t: NNLS must match ordinary least squares.
        let ts = [1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 1.0 + 2.0 * t).collect();
        let sol = nnls(&a, &b).unwrap();
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 2.0).abs() < 1e-8);
        assert!(sol.residual_norm < 1e-8);
    }

    #[test]
    fn clamps_negative_coefficient_to_zero() {
        // Data generated by y = -1 + 2 t: the intercept must clamp to 0.
        let ts = [1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| -1.0 + 2.0 * t).collect();
        let sol = nnls(&a, &b).unwrap();
        assert_eq!(sol.x[0], 0.0, "negative intercept must be clamped");
        assert!(sol.x[1] > 0.0);
        // Dual feasibility for the clamped variable: w_0 <= 0.
        let r = residual(&a, &sol.x, &b);
        let w = a.transpose().matvec(&r);
        assert!(w[0] <= 1e-8, "KKT dual violated: w[0] = {}", w[0]);
    }

    #[test]
    fn ernest_feature_matrix_fit() {
        // Ernest model: t(x) = th1 + th2/x + th3 log x + th4 x with known
        // non-negative coefficients must be recovered from clean data.
        let scale_outs = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let truth = [30.0, 400.0, 5.0, 2.0];
        let a = Matrix::from_fn(6, 4, |i, j| {
            let x = scale_outs[i];
            match j {
                0 => 1.0,
                1 => 1.0 / x,
                2 => x.ln(),
                _ => x,
            }
        });
        let b: Vec<f64> = scale_outs
            .iter()
            .map(|&x| truth[0] + truth[1] / x + truth[2] * x.ln() + truth[3] * x)
            .collect();
        let sol = nnls(&a, &b).unwrap();
        for (got, want) in sol.x.iter().zip(truth.iter()) {
            assert!(
                (got - want).abs() < 1e-6,
                "coefficients {:?} != {:?}",
                sol.x,
                truth
            );
        }
    }

    #[test]
    fn all_zero_rhs_gives_zero_solution() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i + j) as f64).sin().abs() + 0.1);
        let sol = nnls(&a, &[0.0; 5]).unwrap();
        assert!(sol.x.iter().all(|&v| v == 0.0));
        assert_eq!(sol.residual_norm, 0.0);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Matrix::zeros(3, 2);
        let err = nnls(&a, &[1.0, 2.0]).unwrap_err();
        assert_eq!(err, NnlsError::DimensionMismatch { rows: 3, rhs: 2 });
    }

    #[test]
    fn kkt_conditions_hold_on_random_problems() {
        // Deterministic pseudo-random problems; verify primal and dual
        // feasibility plus complementary slackness.
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..20 {
            let a = Matrix::from_fn(10, 4, |_, _| next());
            let b: Vec<f64> = (0..10).map(|_| next() * 3.0).collect();
            let sol = nnls(&a, &b).unwrap();
            let r = residual(&a, &sol.x, &b);
            let w = a.transpose().matvec(&r);
            #[allow(clippy::needless_range_loop)] // j indexes sol.x and w in lockstep
            for j in 0..4 {
                assert!(sol.x[j] >= 0.0, "primal infeasible");
                if sol.x[j] > 1e-10 {
                    assert!(w[j].abs() < 1e-6, "stationarity violated: w[{j}]={}", w[j]);
                } else {
                    assert!(w[j] <= 1e-6, "dual infeasible: w[{j}]={}", w[j]);
                }
            }
        }
    }

    #[test]
    fn rank_deficient_matrix_still_terminates() {
        // Two identical columns; solver must not loop forever.
        let a = Matrix::from_fn(6, 3, |i, j| match j {
            0 | 1 => (i + 1) as f64,
            _ => 1.0,
        });
        let b: Vec<f64> = (0..6).map(|i| (i + 1) as f64 * 2.0 + 1.0).collect();
        let sol = nnls(&a, &b).unwrap();
        assert!(sol.x.iter().all(|&v| v >= 0.0));
    }
}
