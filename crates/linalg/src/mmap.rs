//! Minimal read-only memory mapping for zero-copy matrix storage.
//!
//! The checkpoint store maps `.blmy` files straight into the address space so
//! a recalled model's weights are *borrowed from the OS page cache* instead of
//! deserialized into fresh allocations: recall becomes a header parse plus
//! page faults, many processes mapping the same file share one physical copy,
//! and a hub holding thousands of models keeps bounded RSS (the kernel evicts
//! cold *pages*, not whole models). See
//! [`Matrix::from_mapped`](crate::Matrix::from_mapped) for the consumer side.
//!
//! The build container has no crates.io access, so this is a from-scratch
//! Unix wrapper over raw `extern "C"` `mmap`/`munmap` — no `libc` crate, no
//! `memmap2`. Only what the checkpoint store needs is implemented:
//!
//! - **read-only** (`PROT_READ`), **shared** (`MAP_SHARED`) file mappings —
//!   there is deliberately no way to obtain a `&mut` into the map,
//! - page-aligned by construction (the kernel guarantees `mmap` returns a
//!   page-aligned address), so any 64-byte-aligned *file offset* yields a
//!   64-byte-aligned *pointer*,
//! - `Send + Sync`: an immutable mapping of an immutable file is freely
//!   shared across threads; unmapping happens exactly once on the last drop
//!   (holders keep the map alive through `Arc<Mmap>`).
//!
//! Mutating the underlying file while mapped is undefined behaviour at the
//! application level (the bytes under live maps would change); the checkpoint
//! store never does — files are written once via atomic rename, and the
//! quarantine path *renames* corrupt files, which on Unix leaves existing
//! maps untouched (the inode lives on until the last map drops).
//!
//! On non-Unix targets the same API is provided by a private heap fallback
//! (read the file into owned, 64-byte-aligned storage) — semantics identical,
//! zero-copy property waived.

use std::fs::File;
use std::io;

/// Access-pattern hint for a mapping, forwarded to `madvise(2)` on Unix.
///
/// Hints are pure optimization: the recall path tells the kernel when it is
/// about to stream the whole file (checksum validation → aggressive
/// readahead) and when it switches to serving (pointer-chasing reads of hot
/// weight pages → readahead off, evict cold pages freely). Off-Unix, and on
/// kernels that reject the call, hints are silently no-ops — they can never
/// change the mapped bytes, only how eagerly the OS pages them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advice {
    /// Expect reads in file order (`MADV_SEQUENTIAL`): readahead ahead of
    /// the cursor, drop pages behind it. The checksum validation pass.
    Sequential,
    /// Expect accesses at unpredictable offsets (`MADV_RANDOM`): disable
    /// readahead so hot weight pages are not diluted by speculative I/O.
    /// The steady serving state.
    Random,
    /// Expect the whole range to be needed soon (`MADV_WILLNEED`): start
    /// asynchronous read-in now. Issued before validation so the pages the
    /// checksum pass is about to touch are already in flight.
    WillNeed,
}

/// A read-only memory mapping of a file (or, off-Unix, an aligned heap copy).
///
/// The mapped bytes are reachable only as `&[u8]`; alignment of the base
/// address is at least one page (4 KiB) on Unix and 64 bytes on the fallback,
/// so callers may rely on 64-byte alignment of offset-0 data either way.
#[derive(Debug)]
pub struct Mmap {
    imp: Imp,
}

// SAFETY: the mapping is immutable for its whole lifetime (PROT_READ, no
// mutable accessor exists) and the fallback owns its storage; sharing
// read-only bytes across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// An empty file yields an empty (allocation-free) map rather than an
    /// `EINVAL` from the kernel.
    pub fn map(file: &File) -> io::Result<Self> {
        Ok(Self {
            imp: Imp::map(file)?,
        })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.imp.as_slice()
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hints the expected access pattern to the OS (see [`Advice`]).
    ///
    /// Best-effort by design: an unsupported platform or a kernel that
    /// rejects the hint leaves the mapping untouched, so this never
    /// returns an error and is safe to call at any point in the map's
    /// lifetime, from any thread.
    pub fn advise(&self, advice: Advice) {
        self.imp.advise(advice);
    }
}

#[cfg(unix)]
use unix::Imp;

#[cfg(unix)]
mod unix {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    // The raw syscall surface. Constants are the POSIX-mandated values used
    // by every Unix this workspace targets (Linux, macOS, BSDs).
    const PROT_READ: i32 = 1;
    const MAP_SHARED: i32 = 1;
    // madvise advice values — identical on Linux, macOS, and the BSDs
    // (all inherit the original BSD numbering for these three).
    const MADV_RANDOM: i32 = 1;
    const MADV_SEQUENTIAL: i32 = 2;
    const MADV_WILLNEED: i32 = 3;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        fn madvise(addr: *mut core::ffi::c_void, len: usize, advice: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Imp {
        /// Null iff `len == 0` (empty files map to an empty slice, no
        /// syscall — `mmap` with length 0 is `EINVAL`).
        ptr: *mut core::ffi::c_void,
        len: usize,
    }

    impl Imp {
        pub(super) fn map(file: &File) -> io::Result<Self> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            if len == 0 {
                return Ok(Self {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: plain read-only shared file mapping; the fd stays open
            // only for the duration of the call (the mapping survives the fd
            // per POSIX).
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            // MAP_FAILED is (void*)-1.
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `ptr` is a live PROT_READ mapping of `len` bytes,
            // valid until `munmap` in Drop; no mutable aliases exist.
            unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
        }

        pub(super) fn advise(&self, advice: super::Advice) {
            if self.len == 0 {
                return;
            }
            let advice = match advice {
                super::Advice::Sequential => MADV_SEQUENTIAL,
                super::Advice::Random => MADV_RANDOM,
                super::Advice::WillNeed => MADV_WILLNEED,
            };
            // SAFETY: `ptr`/`len` describe a live mapping (page-aligned by
            // mmap); advisory-only call, cannot alter mapped contents. The
            // result is deliberately ignored — a kernel refusing a hint is
            // indistinguishable from one silently dropping it.
            unsafe {
                madvise(self.ptr, self.len, advice);
            }
        }
    }

    impl Drop for Imp {
        fn drop(&mut self) {
            if self.len > 0 {
                // SAFETY: exactly undoes the successful mmap in `map`.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(unix))]
use fallback::Imp;

#[cfg(not(unix))]
mod fallback {
    use std::fs::File;
    use std::io::{self, Read};

    /// Heap stand-in: `u64` backing keeps the base 8-byte aligned (64-byte
    /// in practice on all mainstream allocators for blocks this size);
    /// `Matrix::from_mapped` re-checks pointer alignment, so a misaligned
    /// allocator surfaces loudly rather than as UB.
    #[derive(Debug)]
    pub(super) struct Imp {
        storage: Vec<u64>,
        len: usize,
    }

    impl Imp {
        pub(super) fn map(file: &File) -> io::Result<Self> {
            let mut bytes = Vec::new();
            let mut f = file.try_clone()?;
            f.read_to_end(&mut bytes)?;
            let len = bytes.len();
            let mut storage = vec![0u64; len.div_ceil(8)];
            // SAFETY: u64 storage reinterpreted as bytes, length bounded by
            // the allocation.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    bytes.as_ptr(),
                    storage.as_mut_ptr().cast::<u8>(),
                    len,
                );
            }
            Ok(Self { storage, len })
        }

        #[inline]
        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: the first `len` bytes of `storage` are initialized.
            unsafe { std::slice::from_raw_parts(self.storage.as_ptr().cast::<u8>(), self.len) }
        }

        /// Hints are meaningless for an owned heap copy: no-op.
        pub(super) fn advise(&self, _advice: super::Advice) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("bellamy-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_file_contents_exactly() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let path = temp_file("contents", &data);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.len(), data.len());
        assert_eq!(map.as_slice(), &data[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn base_address_is_at_least_64_byte_aligned() {
        let path = temp_file("align", &[7u8; 4096]);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.as_slice().as_ptr() as usize % 64, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_file("empty", b"");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn advise_is_harmless_in_every_state() {
        // Hints are advisory: whatever the platform does with them, the
        // mapped bytes must be untouched, in any order, repeated, and on
        // empty maps (where no syscall is issued at all).
        let data: Vec<u8> = (0..200u8).collect();
        let path = temp_file("advise", &data);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        for advice in [
            Advice::WillNeed,
            Advice::Sequential,
            Advice::Random,
            Advice::Sequential,
            Advice::Random,
        ] {
            map.advise(advice);
            assert_eq!(map.as_slice(), &data[..]);
        }
        let empty_path = temp_file("advise-empty", b"");
        let empty = Mmap::map(&File::open(&empty_path).unwrap()).unwrap();
        empty.advise(Advice::Sequential);
        empty.advise(Advice::Random);
        assert!(empty.is_empty());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&empty_path).ok();
    }

    #[test]
    fn map_survives_source_rename_and_is_shareable() {
        // The hub's quarantine path renames corrupt files while recalled
        // states may still hold maps; on Unix the inode (and the map) must
        // survive the rename. Threads share the map through Arc.
        let data = vec![42u8; 8192];
        let path = temp_file("rename", &data);
        let map = std::sync::Arc::new(Mmap::map(&File::open(&path).unwrap()).unwrap());
        let renamed = path.with_extension("corrupt");
        std::fs::rename(&path, &renamed).unwrap();

        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.as_slice().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 42 * 8192);
        }
        std::fs::remove_file(&renamed).ok();
    }
}
