//! Row-major dense `f64` matrix with the kernel set used across the workspace.

use crate::aligned::AlignedBuf;
use crate::kernels;
use crate::mmap::Mmap;
use crate::storage::Storage;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};
use std::sync::Arc;

/// Block edge for the cache-blocked matmul kernel. Matrices in this project
/// are small; 64 keeps the working set of a block pair within L1.
const MATMUL_BLOCK: usize = 64;

/// A dense, row-major matrix of `f64` values.
///
/// The element at row `i`, column `j` lives at `data[i * cols + j]`. All
/// shape-changing operations allocate a fresh matrix; in-place variants are
/// provided where the training loop is hot (`add_assign`, `scale_in_place`,
/// `zip_apply`).
///
/// Storage is a [`Storage`]: either an owned [`AlignedBuf`] (every
/// constructor below) or a read-only window into a shared file mapping
/// ([`Matrix::from_mapped`], the zero-copy checkpoint path). Owned data
/// always starts on a 32-byte boundary (the SIMD kernels' alignment
/// contract — see the [`kernels`] module docs); mapped data inherits the
/// same guarantee from the checkpoint format's 64-byte-aligned payload
/// offsets. The hot kernels (`matmul_into` and friends, `axpy`,
/// `add_into`/`sub_into`/`hadamard_into`, `scale_into`) dispatch through
/// [`kernels::active()`]; results are bit-identical on every backend and
/// across storage variants.
///
/// Mapped matrices are immutable serving views: mutating one panics, and
/// `clone()` always yields an owned matrix (see the [`crate::storage`]
/// module docs for the full contract).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Storage,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: Storage::Owned(AlignedBuf::zeroed(rows * cols)),
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self {
            rows,
            cols,
            data: Storage::Owned(AlignedBuf::from(data)),
        }
    }

    /// Builds a matrix whose elements are **borrowed** from a read-only file
    /// mapping: `rows * cols` little-endian `f64`s starting `byte_offset`
    /// bytes into `map`. No element data is copied — the matrix holds the
    /// map alive through the `Arc` and reads straight from the OS page
    /// cache.
    ///
    /// The resulting matrix is an immutable serving view: any mutable
    /// access panics, and `clone()` materializes an owned copy.
    ///
    /// # Errors
    /// Returns a message when the window falls outside the map or the data
    /// pointer would be misaligned for `f64`.
    pub fn from_mapped(
        rows: usize,
        cols: usize,
        map: Arc<Mmap>,
        byte_offset: usize,
    ) -> Result<Self, String> {
        let data = Storage::mapped(map, byte_offset, rows * cols)?;
        Ok(Self { rows, cols, data })
    }

    /// True when this matrix borrows its elements from a file mapping.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Builds a matrix directly over an aligned buffer (pool recycle path:
    /// no copy, alignment already guaranteed).
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub(crate) fn from_aligned(rows: usize, cols: usize, data: AlignedBuf) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self {
            rows,
            cols,
            data: Storage::Owned(data),
        }
    }

    /// Consumes the matrix, returning an aligned backing buffer (pool
    /// recycle path: no copy for owned storage; mapped storage — which the
    /// pool never sees in practice — is copied out).
    pub(crate) fn into_aligned(self) -> AlignedBuf {
        self.data.into_aligned()
    }

    /// Builds a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut m = Self::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} but expected {cols}",
                r.len()
            );
            m.row_mut(i).copy_from_slice(r);
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for (j, v) in m.data[i * cols..(i + 1) * cols].iter_mut().enumerate() {
                *v = f(i, j);
            }
        }
        m
    }

    /// A `1 x n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// An `n x 1` column vector.
    pub fn col_vector(values: &[f64]) -> Self {
        Self::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data slice (32-byte aligned).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// Mutable raw row-major data slice (32-byte aligned).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        self.data.as_mut_slice()
    }

    /// Consumes the matrix, returning the row-major data as a plain vector
    /// (copies out of the aligned backing store).
    pub fn into_vec(self) -> Vec<f64> {
        self.data.to_vec()
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy of column `j` as a fresh vector. Allocates; hot callers should
    /// use [`Matrix::col_iter`] or [`Matrix::col_into`] instead.
    pub fn col(&self, j: usize) -> Vec<f64> {
        self.col_iter(j).collect()
    }

    /// Strided, allocation-free iterator over column `j` (top to bottom).
    ///
    /// # Panics
    /// Panics if `j >= self.cols()`.
    #[inline]
    pub fn col_iter(&self, j: usize) -> impl ExactSizeIterator<Item = f64> + '_ {
        assert!(
            j < self.cols,
            "column {j} out of bounds for {} columns",
            self.cols
        );
        self.data[j..].iter().step_by(self.cols.max(1)).copied()
    }

    /// Copies column `j` into `out` without allocating.
    ///
    /// # Panics
    /// Panics if `j >= self.cols()` or `out.len() != self.rows()`.
    pub fn col_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.rows,
            "col_into output length {} does not match {} rows",
            out.len(),
            self.rows
        );
        for (o, v) in out.iter_mut().zip(self.col_iter(j)) {
            *o = v;
        }
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (o, &v) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(v);
        }
        out
    }

    /// Elementwise combination of two equally-shaped matrices.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        let mut out = Matrix::zeros(self.rows, self.cols);
        for ((o, &a), &b) in out
            .data
            .iter_mut()
            .zip(self.data.iter())
            .zip(other.data.iter())
        {
            *o = f(a, b);
        }
        out
    }

    /// In-place elementwise combination: `self[i] = f(self[i], other[i])`.
    pub fn zip_apply(&mut self, other: &Matrix, f: impl Fn(f64, f64) -> f64) {
        self.assert_same_shape(other, "zip_apply");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = f(*a, b);
        }
    }

    /// Output-parameter elementwise combination:
    /// `out[i] = f(self[i], other[i])`. Bit-identical to [`Matrix::zip_map`].
    pub fn zip_apply_into(&self, other: &Matrix, out: &mut Matrix, f: impl Fn(f64, f64) -> f64) {
        self.assert_same_shape(other, "zip_apply_into");
        self.assert_same_shape(out, "zip_apply_into (out)");
        for ((o, &a), &b) in out
            .data
            .iter_mut()
            .zip(self.data.iter())
            .zip(other.data.iter())
        {
            *o = f(a, b);
        }
    }

    /// Output-parameter elementwise map: `out[i] = f(self[i])`. Bit-identical
    /// to [`Matrix::map`].
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f64) -> f64) {
        self.assert_same_shape(out, "map_into");
        for (o, &a) in out.data.iter_mut().zip(self.data.iter()) {
            *o = f(a);
        }
    }

    /// Overwrites `self` with `src` (same shape; no allocation).
    pub fn copy_from(&mut self, src: &Matrix) {
        self.assert_same_shape(src, "copy_from");
        self.data.copy_from_slice(&src.data);
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// Output-parameter elementwise sum. Bit-identical to [`Matrix::add`].
    pub fn add_into(&self, other: &Matrix, out: &mut Matrix) {
        self.assert_same_shape(other, "add_into");
        self.assert_same_shape(out, "add_into (out)");
        kernels::active().add(&self.data, &other.data, &mut out.data);
    }

    /// In-place elementwise sum.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        kernels::active().axpy(1.0, &other.data, &mut self.data);
    }

    /// In-place `self += alpha * x` (BLAS axpy). The gradient-accumulation
    /// kernel: with `alpha = 1` it is bit-identical to [`Matrix::add_assign`].
    pub fn axpy(&mut self, alpha: f64, x: &Matrix) {
        self.assert_same_shape(x, "axpy");
        kernels::active().axpy(alpha, &x.data, &mut self.data);
    }

    /// In-place `self += alpha * other` ([`Matrix::axpy`] with its
    /// historical argument order).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f64) {
        self.axpy(alpha, other);
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Output-parameter elementwise difference. Bit-identical to
    /// [`Matrix::sub`].
    pub fn sub_into(&self, other: &Matrix, out: &mut Matrix) {
        self.assert_same_shape(other, "sub_into");
        self.assert_same_shape(out, "sub_into (out)");
        kernels::active().sub(&self.data, &other.data, &mut out.data);
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// Output-parameter Hadamard product. Bit-identical to
    /// [`Matrix::hadamard`].
    pub fn hadamard_into(&self, other: &Matrix, out: &mut Matrix) {
        self.assert_same_shape(other, "hadamard_into");
        self.assert_same_shape(out, "hadamard_into (out)");
        kernels::active().mul(&self.data, &other.data, &mut out.data);
    }

    /// Scalar multiple as a new matrix.
    pub fn scale(&self, alpha: f64) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// Output-parameter scalar multiple. Bit-identical to [`Matrix::scale`].
    pub fn scale_into(&self, alpha: f64, out: &mut Matrix) {
        self.assert_same_shape(out, "scale_into");
        kernels::active().scale(&self.data, alpha, &mut out.data);
    }

    /// In-place scalar multiply.
    pub fn scale_in_place(&mut self, alpha: f64) {
        for v in self.data.iter_mut() {
            *v *= alpha;
        }
    }

    /// Fills every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn broadcast_add_row(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(
            bias.cols, self.cols,
            "bias has {} columns but matrix has {}",
            bias.cols, self.cols
        );
        let mut out = self.clone();
        for i in 0..out.rows {
            let row = out.row_mut(i);
            for (v, &b) in row.iter_mut().zip(bias.data.iter()) {
                *v += b;
            }
        }
        out
    }

    /// Output-parameter bias broadcast: `out = self + broadcast(bias)`.
    /// Bit-identical to [`Matrix::broadcast_add_row`].
    pub fn broadcast_add_row_into(&self, bias: &Matrix, out: &mut Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(
            bias.cols, self.cols,
            "bias has {} columns but matrix has {}",
            bias.cols, self.cols
        );
        self.assert_same_shape(out, "broadcast_add_row_into");
        for i in 0..self.rows {
            let src = &self.data[i * self.cols..(i + 1) * self.cols];
            let dst = &mut out.data[i * self.cols..(i + 1) * self.cols];
            for ((o, &v), &b) in dst.iter_mut().zip(src.iter()).zip(bias.data.iter()) {
                *o = v + b;
            }
        }
    }

    /// Sum over rows, producing a `1 x cols` row vector. This is the adjoint
    /// of [`Matrix::broadcast_add_row`].
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.sum_rows_into(&mut out);
        out
    }

    /// Output-parameter row sum; `out` must be `1 x self.cols()` and is
    /// overwritten. Bit-identical to [`Matrix::sum_rows`].
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (1, self.cols),
            "sum_rows_into output shape mismatch"
        );
        out.data.fill(0.0);
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &v) in out.data.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
    }

    /// Mean over rows, producing a `1 x cols` row vector.
    pub fn mean_rows(&self) -> Matrix {
        assert!(self.rows > 0, "mean_rows of an empty matrix");
        let mut out = self.sum_rows();
        out.scale_in_place(1.0 / self.rows as f64);
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "mean of an empty matrix");
        self.sum() / self.data.len() as f64
    }

    /// Largest element. Returns `f64::NEG_INFINITY` for an empty matrix.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest element. Returns `f64::INFINITY` for an empty matrix.
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Frobenius norm (`sqrt(sum of squares)`).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// True if every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Matrix product `self * other`.
    ///
    /// Uses a cache-blocked i-k-j kernel; dimensions in this workspace are
    /// small enough that this runs well within L1/L2.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Output-parameter matrix product. `out` must be
    /// `self.rows() x other.cols()`; its previous contents are overwritten.
    /// Bit-identical to [`Matrix::matmul`].
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        assert_eq!(
            (out.rows, out.cols),
            (m, n),
            "matmul_into output shape mismatch"
        );
        kernels::active().matmul(&self.data, &other.data, &mut out.data, m, k, n);
    }

    /// Fused linear-layer forward kernel: `out = finish(self * other + bias)`
    /// where `bias` (a `1 x n` row vector, optional) is broadcast over rows
    /// and `row_finish` is applied to each completed output row in place
    /// (the activation slice pass). The bias add and activation happen while
    /// the freshly computed row is still in registers/L1 — for the `n == 8`
    /// register kernel literally on the stack accumulator before it is
    /// stored — instead of as two further whole-matrix passes.
    ///
    /// Equivalent to `matmul_into` + `broadcast_add_row` + an elementwise
    /// map, bit-for-bit, since all three stages are elementwise per row.
    pub fn matmul_bias_rowapply_into(
        &self,
        other: &Matrix,
        bias: Option<&Matrix>,
        out: &mut Matrix,
        mut row_finish: impl FnMut(&mut [f64]),
    ) {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        assert_eq!(
            (out.rows, out.cols),
            (m, n),
            "matmul_bias_rowapply_into output shape mismatch"
        );
        if let Some(b) = bias {
            assert_eq!(
                (b.rows, b.cols),
                (1, n),
                "bias must be 1x{n}, got {}x{}",
                b.rows,
                b.cols
            );
        }
        kernels::active().matmul_bias_rowapply(
            &self.data,
            &other.data,
            bias.map(|b| b.data.as_slice()),
            &mut out.data,
            m,
            k,
            n,
            &mut row_finish,
        );
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// This is the back-propagation kernel `dX = dY * W^T`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_transpose_b_into(other, &mut out);
        out
    }

    /// Output-parameter `self * other^T`. `out` must be
    /// `self.rows() x other.rows()`; contents are overwritten. Bit-identical
    /// to [`Matrix::matmul_transpose_b`].
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        assert_eq!(
            (out.rows, out.cols),
            (m, n),
            "matmul_transpose_b_into output shape mismatch"
        );
        kernels::active().matmul_tb(&self.data, &other.data, &mut out.data, m, k, n);
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// This is the back-propagation kernel `dW = X^T * dY`.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.transpose_a_matmul_into(other, &mut out);
        out
    }

    /// Output-parameter `self^T * other`. `out` must be
    /// `self.cols() x other.cols()`; contents are overwritten. Bit-identical
    /// to [`Matrix::transpose_a_matmul`].
    pub fn transpose_a_matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "transpose_a_matmul shape mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        assert_eq!(
            (out.rows, out.cols),
            (m, n),
            "transpose_a_matmul_into output shape mismatch"
        );
        kernels::active().ta_matmul(&self.data, &other.data, &mut out.data, k, m, n);
    }

    /// The seed implementation's matmul kernel (cache-blocked i-k-j, no
    /// width specialization). Kept verbatim so the train-step benchmark can
    /// measure the original code as its baseline.
    #[doc(hidden)]
    #[allow(clippy::needless_range_loop)] // index-based blocking is the kernel's shape
    pub fn matmul_reference_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        assert_eq!((out.rows, out.cols), (m, n), "output shape mismatch");
        out.data.fill(0.0);
        for ib in (0..m).step_by(MATMUL_BLOCK) {
            let imax = (ib + MATMUL_BLOCK).min(m);
            for kb in (0..k).step_by(MATMUL_BLOCK) {
                let kmax = (kb + MATMUL_BLOCK).min(k);
                for i in ib..imax {
                    let arow = &self.data[i * k..(i + 1) * k];
                    let orow = &mut out.data[i * n..(i + 1) * n];
                    for kk in kb..kmax {
                        let a = arow[kk];
                        if a == 0.0 {
                            continue;
                        }
                        let brow = &other.data[kk * n..(kk + 1) * n];
                        for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
    }

    /// The seed implementation's `self * otherᵀ` kernel (one latency-bound
    /// dot product per output element). Benchmark baseline only.
    #[doc(hidden)]
    pub fn matmul_transpose_b_reference_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_transpose_b shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        assert_eq!((out.rows, out.cols), (m, n), "output shape mismatch");
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// Matrix-vector product `self * v` where `v.len() == self.cols()`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec length mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Allocation-free matrix-vector product: `out = self * v`. Bit-identical
    /// to [`Matrix::matvec`].
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.cols, "matvec length mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).iter().zip(v.iter()).map(|(&a, &b)| a * b).sum();
        }
    }

    /// Allocation-free transposed matrix-vector product: `out = selfᵀ * v`
    /// (`v.len() == self.rows()`, `out.len() == self.cols()`), without
    /// materializing the transpose. Bit-identical to
    /// `self.transpose().matvec(v)` for the shapes the NNLS solver uses
    /// (each output element accumulates top-to-bottom over the rows in both
    /// formulations).
    pub fn transpose_matvec_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.rows, "transpose_matvec length mismatch");
        assert_eq!(
            out.len(),
            self.cols,
            "transpose_matvec output length mismatch"
        );
        for (j, o) in out.iter_mut().enumerate() {
            *o = self.col_iter(j).zip(v.iter()).map(|(a, &b)| a * b).sum();
        }
    }

    /// Horizontally concatenates matrices with equal row counts.
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols of no matrices");
        let rows = parts[0].rows;
        for p in parts {
            assert_eq!(p.rows, rows, "concat_cols row mismatch");
        }
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let orow = out.row_mut(i);
            let mut offset = 0;
            for p in parts {
                orow[offset..offset + p.cols].copy_from_slice(p.row(i));
                offset += p.cols;
            }
        }
        out
    }

    /// Vertically stacks matrices with equal column counts.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows of no matrices");
        let cols = parts[0].cols;
        let rows = parts
            .iter()
            .map(|p| {
                assert_eq!(p.cols, cols, "concat_rows column mismatch");
                p.rows
            })
            .sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut offset = 0;
        for p in parts {
            out.data[offset..offset + p.data.len()].copy_from_slice(&p.data);
            offset += p.data.len();
        }
        out
    }

    /// Copies the half-open column range `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        let mut out = Matrix::zeros(self.rows, end.saturating_sub(start));
        self.slice_cols_into(start, end, &mut out);
        out
    }

    /// Output-parameter column slice; `out` must be
    /// `self.rows() x (end - start)`. Bit-identical to
    /// [`Matrix::slice_cols`].
    pub fn slice_cols_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(
            start <= end && end <= self.cols,
            "slice_cols range out of bounds"
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, end - start),
            "slice_cols_into output shape mismatch"
        );
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(&self.row(i)[start..end]);
        }
    }

    /// Copies the rows with the given indices into a new matrix (gather).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "row index {src} out of bounds");
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Maximum absolute difference from `other`; useful in tests.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "{op}: shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ... ({} more rows)", self.rows - max_rows)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d])
    }

    #[test]
    fn zeros_and_filled() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Matrix::filled(3, 2, 1.5);
        assert!(f.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let i = Matrix::eye(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]])
        );
    }

    #[test]
    fn matmul_transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_fn(5, 7, |i, j| (i * 7 + j) as f64 * 0.3 - 2.0);
        let b = Matrix::from_fn(4, 7, |i, j| (i as f64 - j as f64) * 0.11);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transpose_b(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-12);

        let c = Matrix::from_fn(5, 3, |i, j| ((i + 2) * (j + 1)) as f64 * 0.05);
        let via_t2 = a.transpose().matmul(&c);
        let direct2 = a.transpose_a_matmul(&c);
        assert!(via_t2.max_abs_diff(&direct2) < 1e-12);
    }

    #[test]
    fn matmul_blocked_matches_naive_on_larger_sizes() {
        // Exercise the blocking logic across block boundaries.
        let a = Matrix::from_fn(130, 70, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(70, 90, |i, j| ((i * 7 + j * 3) % 11) as f64 * 0.25);
        let c = a.matmul(&b);
        // Naive reference.
        let mut r = Matrix::zeros(130, 90);
        for i in 0..130 {
            for j in 0..90 {
                let mut acc = 0.0;
                for k in 0..70 {
                    acc += a[(i, k)] * b[(k, j)];
                }
                r[(i, j)] = acc;
            }
        }
        assert!(c.max_abs_diff(&r) < 1e-9);
    }

    #[test]
    fn fused_linear_kernel_matches_unfused_chain_bitwise() {
        // Cover both the n == 8 register kernel and the general path, with
        // and without bias.
        for (m, k, n) in [(5, 3, 8), (64, 40, 8), (4, 8, 40), (7, 28, 16), (1, 8, 1)] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 13 + j * 7) % 19) as f64 * 0.21 - 1.7);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 11) % 17) as f64 * 0.13 - 0.9);
            let bias = Matrix::from_fn(1, n, |_, j| j as f64 * 0.3 - 1.0);
            let act = |v: f64| if v > 0.0 { 2.0 * v } else { v * v };

            for with_bias in [false, true] {
                let mut reference = a.matmul(&b);
                if with_bias {
                    reference = reference.broadcast_add_row(&bias);
                }
                reference = reference.map(act);

                let mut fused = Matrix::zeros(m, n);
                a.matmul_bias_rowapply_into(&b, with_bias.then_some(&bias), &mut fused, |row| {
                    for v in row.iter_mut() {
                        *v = act(*v);
                    }
                });
                assert_eq!(fused, reference, "m={m} k={k} n={n} bias={with_bias}");
            }
        }
    }

    #[test]
    fn broadcast_add_row_and_sum_rows_are_adjoint_shapes() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.broadcast_add_row(&b);
        assert_eq!(y[(0, 0)], 11.0);
        assert_eq!(y[(2, 1)], 26.0);
        let s = x.sum_rows();
        assert_eq!(s, Matrix::row_vector(&[9.0, 12.0]));
        let mr = x.mean_rows();
        assert_eq!(mr, Matrix::row_vector(&[3.0, 4.0]));
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        assert_eq!(a.add(&b), m22(6.0, 8.0, 10.0, 12.0));
        assert_eq!(b.sub(&a), m22(4.0, 4.0, 4.0, 4.0));
        assert_eq!(a.hadamard(&b), m22(5.0, 12.0, 21.0, 32.0));
        assert_eq!(a.scale(2.0), m22(2.0, 4.0, 6.0, 8.0));
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c, m22(3.5, 5.0, 6.5, 8.0));
    }

    #[test]
    fn reductions() {
        let a = m22(1.0, -2.0, 3.0, -4.0);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -4.0);
        assert!((a.frobenius_norm() - (30.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn concat_and_slice_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0], vec![6.0]]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 5.0]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);

        let v = Matrix::concat_rows(&[&a, &a]);
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v.row(3), &[3.0, 4.0]);
    }

    #[test]
    fn select_rows_gathers() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let g = a.select_rows(&[2, 0, 2]);
        assert_eq!(g, Matrix::from_rows(&[vec![3.0], vec![1.0], vec![3.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = a.matvec(&[10.0, 100.0]);
        assert_eq!(v, vec![210.0, 430.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut a = Matrix::zeros(2, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.all_finite());
    }

    #[test]
    fn mapped_matrix_is_bit_identical_to_owned_under_kernels() {
        use std::io::Write;

        let owned = Matrix::from_fn(6, 8, |i, j| ((i * 8 + j) as f64).sin() * 3.7);
        let path = std::env::temp_dir().join(format!("bellamy-matrix-map-{}", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        for v in owned.as_slice() {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        f.sync_all().unwrap();
        let map = Arc::new(Mmap::map(&std::fs::File::open(&path).unwrap()).unwrap());
        let mapped = Matrix::from_mapped(6, 8, map, 0).unwrap();

        assert!(mapped.is_mapped());
        assert_eq!(mapped, owned);

        // The kernels see a plain &[f64] either way; products must agree
        // bitwise.
        let rhs = Matrix::from_fn(8, 8, |i, j| ((i + 1) * (j + 2)) as f64 * 0.017 - 0.4);
        let prod_owned = owned.matmul(&rhs);
        let prod_mapped = mapped.matmul(&rhs);
        for (a, b) in prod_owned.as_slice().iter().zip(prod_mapped.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Clones materialize: mutating a clone of a mapped matrix is fine.
        let mut clone = mapped.clone();
        assert!(!clone.is_mapped());
        clone.fill(0.0);

        std::fs::remove_file(&path).ok();
    }
}
