//! SIMD `f64x4` microkernels behind one-time runtime dispatch.
//!
//! # Dispatch table
//!
//! Every hot slice-level kernel (the matmul family, `axpy`, the elementwise
//! arithmetic) exists in up to three implementations: a scalar one that is
//! always available, a bit-identical SIMD one — AVX2 `__m256d` on `x86_64`,
//! NEON `float64x2_t` on `aarch64` — and an **opt-in FMA-contracted** one
//! (AVX2+FMA / NEON `vfmaq_f64`). A [`KernelTable`] bundles one full set as
//! plain function pointers; the active table is resolved **once per
//! process** (cached in a [`OnceLock`]) from:
//!
//! 1. a programmatic request made before first use ([`request_tier`],
//!    threaded through `bellamy::serve::ServiceBuilder::kernel_tier`) —
//!    takes precedence over the environment;
//! 2. the `BELLAMY_KERNEL` environment variable — `scalar` forces the
//!    fallback, `simd` requests the bit-identical vector path, `fma`
//!    requests the FMA-contracted Fast tier, `auto` (or unset) picks the
//!    best available **Exact** backend;
//! 3. runtime CPU feature detection (`is_x86_feature_detected!("avx2")`,
//!    `("fma")`); NEON (including FMA) is architecturally guaranteed on
//!    `aarch64`.
//!
//! Requests degrade gracefully, in order `fma → simd → scalar`, when the
//! CPU lacks a feature; the degradation is reported once on stderr and
//! permanently via [`resolution()`] (requested vs resolved), so a forced
//! override never fails silently.
//!
//! [`Matrix`](crate::Matrix) routes its kernels through [`active()`], so
//! every layer above — `nn::Linear`, the autograd tape's fused linear op,
//! `core::Predictor`, the `Pretrainer` — inherits the fast path with zero
//! call-site changes. Steady-state dispatch is one atomic load plus an
//! indirect call; nothing allocates.
//!
//! # Tier contract
//!
//! Every backend belongs to one of two [`KernelTier`]s:
//!
//! | Tier | Backends | Selected by | Numerical contract |
//! |------|----------|-------------|--------------------|
//! | [`KernelTier::Exact`] (default) | `scalar`, `avx2`, `neon` | `auto` / `scalar` / `simd` | **Bit-identical** to the scalar reference: no FMA contraction, identical per-element accumulation order, identical NaN/±0 semantics. Backend choice never changes a single bit of any result. |
//! | [`KernelTier::Fast`] (opt-in) | `avx2-fma`, `neon-fma` | `fma` only — never `auto` | Multiply-adds contract to fused operations (one rounding instead of two). Results stay within a **documented ULP envelope** of the Exact tier: for a length-`k` accumulation, `|fast − exact| ≤ 2·γₖ·Σ|aᵢ·bᵢ|` (`γₖ ≈ k·ε`), i.e. a few ULP for the well-conditioned shapes of this workspace. NaN/±inf/±0/subnormal *propagation* is identical (FMA is IEEE-correctly rounded, never flushes). Pinned by `tests/fma_accuracy.rs` and the end-to-end tolerance suite in `bellamy-core`. |
//!
//! Degradation order on unsupported hardware: `fma → simd → scalar` (the
//! Fast tier degrades to the *Exact* tier, never the other way around).
//! Precedence of selection sources: [`request_tier`] > `BELLAMY_KERNEL` >
//! auto-detection.
//!
//! # Determinism and bit-identity (Exact tier)
//!
//! The Exact-tier SIMD kernels are **bit-identical** to their scalar
//! counterparts, not merely deterministic:
//!
//! - no FMA contraction — every `a * b + c` stays a rounded multiply
//!   followed by a rounded add, exactly as the scalar code computes it;
//! - identical per-element accumulation order — vector lanes span the
//!   *output* (columns) or replicate the scalar code's existing fixed
//!   4-way-split reduction, so each output element sees its additions in
//!   the same sequence on every backend;
//! - ragged tails (`cols % 4 != 0`) run the scalar epilogue on the same
//!   values.
//!
//! Exact backend choice therefore never changes results — the reproduction
//! tests pass bit-for-bit under `BELLAMY_KERNEL=scalar` and `=auto` — and
//! every backend (including Fast) is deterministic run-to-run by
//! construction: the FMA kernels use one fixed contraction scheme, so two
//! runs on the same hardware agree bitwise with each other.
//!
//! # Alignment
//!
//! [`Matrix`](crate::Matrix) and [`BufferPool`](crate::BufferPool) back
//! their storage with [`AlignedBuf`](crate::AlignedBuf), so row 0 of every
//! operand starts on a 32-byte boundary. The kernels use unaligned
//! loads/stores (`loadu`/`storeu`) because interior rows of odd-width
//! matrices are not chunk-aligned, but thanks to the aligned base the
//! dominant shapes (the width-8 layer kernels) split no cache lines.

use std::sync::OnceLock;

/// Which kernel family is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar kernels (always available; the reproduction
    /// baseline).
    Scalar,
    /// `f64x4`/`f64x2` vector kernels (AVX2 on `x86_64`, NEON on
    /// `aarch64`), bit-identical to scalar.
    Simd,
    /// FMA-contracted vector kernels (AVX2+FMA / NEON `vfmaq`): the
    /// opt-in [`KernelTier::Fast`] tier. See the module docs' tier
    /// contract for the accuracy envelope.
    Fma,
}

/// The numerical contract a backend operates under (see the module docs'
/// tier-contract table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Bit-identical to the scalar reference. The default.
    Exact,
    /// FMA-contracted, within a documented ULP envelope of Exact.
    /// Explicitly opted into; never chosen by `auto`.
    Fast,
}

impl KernelTier {
    /// `"exact"` or `"fast"`, recorded in bench snapshots.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Exact => "exact",
            KernelTier::Fast => "fast",
        }
    }
}

impl Backend {
    /// Human-readable backend name, recorded in bench snapshots:
    /// `"scalar"`, `"avx2"`, `"neon"`, `"avx2-fma"`, or `"neon-fma"`.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Simd => {
                #[cfg(target_arch = "x86_64")]
                {
                    "avx2"
                }
                #[cfg(target_arch = "aarch64")]
                {
                    "neon"
                }
                #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
                {
                    "simd"
                }
            }
            Backend::Fma => {
                #[cfg(target_arch = "x86_64")]
                {
                    "avx2-fma"
                }
                #[cfg(target_arch = "aarch64")]
                {
                    "neon-fma"
                }
                #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
                {
                    "fma"
                }
            }
        }
    }

    /// The tier this backend belongs to.
    pub fn tier(self) -> KernelTier {
        match self {
            Backend::Scalar | Backend::Simd => KernelTier::Exact,
            Backend::Fma => KernelTier::Fast,
        }
    }
}

/// `out = a · b` for row-major `a: m×k`, `b: k×n`, `out: m×n`.
type MatmulFn = fn(&[f64], &[f64], &mut [f64], usize, usize, usize);
/// `out = finish(a · b + bias)` with the finish pass applied per row.
type MatmulBiasRowapplyFn =
    fn(&[f64], &[f64], Option<&[f64]>, &mut [f64], usize, usize, usize, &mut dyn FnMut(&mut [f64]));
/// `y += alpha · x`.
type AxpyFn = fn(f64, &[f64], &mut [f64]);
/// `out = lhs ∘ rhs` elementwise.
type BinaryFn = fn(&[f64], &[f64], &mut [f64]);
/// `out = alpha · a` elementwise.
type ScaleFn = fn(&[f64], f64, &mut [f64]);

/// One complete kernel set. Obtain via [`active()`], [`scalar()`], or
/// [`simd()`]; all entry points are bit-identical across tables (see the
/// module docs).
pub struct KernelTable {
    backend: Backend,
    matmul: MatmulFn,
    matmul_tb: MatmulFn,
    ta_matmul: MatmulFn,
    matmul_bias_rowapply: MatmulBiasRowapplyFn,
    axpy: AxpyFn,
    add: BinaryFn,
    sub: BinaryFn,
    mul: BinaryFn,
    scale: ScaleFn,
}

impl KernelTable {
    /// The backend this table executes on.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The numerical tier this table operates under.
    pub fn tier(&self) -> KernelTier {
        self.backend.tier()
    }

    /// `out = a · b` (`a: m×k`, `b: k×n`, `out: m×n`, all row-major).
    #[inline]
    pub fn matmul(&self, a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        debug_assert!(a.len() == m * k && b.len() == k * n && out.len() == m * n);
        (self.matmul)(a, b, out, m, k, n);
    }

    /// `out = a · bᵀ` (`a: m×k`, `b: n×k`, `out: m×n`).
    #[inline]
    pub fn matmul_tb(&self, a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        debug_assert!(a.len() == m * k && b.len() == n * k && out.len() == m * n);
        (self.matmul_tb)(a, b, out, m, k, n);
    }

    /// `out = aᵀ · b` (`a: k×m`, `b: k×n`, `out: m×n`).
    #[inline]
    pub fn ta_matmul(&self, a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
        debug_assert!(a.len() == k * m && b.len() == k * n && out.len() == m * n);
        (self.ta_matmul)(a, b, out, k, m, n);
    }

    /// Fused `out = row_finish(a · b + bias)`: the broadcast bias add and the
    /// per-row finish pass happen while each output row is still hot.
    /// `row_finish` is invoked once per row, in row order.
    #[inline]
    #[allow(clippy::too_many_arguments)] // mirrors the kernel signature
    pub fn matmul_bias_rowapply(
        &self,
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        row_finish: &mut dyn FnMut(&mut [f64]),
    ) {
        debug_assert!(a.len() == m * k && b.len() == k * n && out.len() == m * n);
        debug_assert!(bias.is_none_or(|bv| bv.len() == n));
        (self.matmul_bias_rowapply)(a, b, bias, out, m, k, n, row_finish);
    }

    /// `y += alpha · x`. With `alpha == 1.0` no multiply is performed
    /// (bit-compatible with a plain add).
    #[inline]
    pub fn axpy(&self, alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        (self.axpy)(alpha, x, y);
    }

    /// `out[i] = a[i] + b[i]`.
    #[inline]
    pub fn add(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert!(a.len() == b.len() && a.len() == out.len());
        (self.add)(a, b, out);
    }

    /// `out[i] = a[i] - b[i]`.
    #[inline]
    pub fn sub(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert!(a.len() == b.len() && a.len() == out.len());
        (self.sub)(a, b, out);
    }

    /// `out[i] = a[i] * b[i]` (Hadamard).
    #[inline]
    pub fn mul(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        debug_assert!(a.len() == b.len() && a.len() == out.len());
        (self.mul)(a, b, out);
    }

    /// `out[i] = a[i] * alpha`.
    #[inline]
    pub fn scale(&self, a: &[f64], alpha: f64, out: &mut [f64]) {
        debug_assert_eq!(a.len(), out.len());
        (self.scale)(a, alpha, out);
    }
}

static SCALAR_TABLE: KernelTable = KernelTable {
    backend: Backend::Scalar,
    matmul: scalar::matmul,
    matmul_tb: scalar::matmul_tb,
    ta_matmul: scalar::ta_matmul,
    matmul_bias_rowapply: scalar::matmul_bias_rowapply,
    axpy: scalar::axpy,
    add: scalar::add,
    sub: scalar::sub,
    mul: scalar::mul,
    scale: scalar::scale,
};

#[cfg(target_arch = "x86_64")]
static SIMD_TABLE: KernelTable = KernelTable {
    backend: Backend::Simd,
    matmul: avx2::matmul,
    matmul_tb: avx2::matmul_tb,
    ta_matmul: avx2::ta_matmul,
    matmul_bias_rowapply: avx2::matmul_bias_rowapply,
    axpy: avx2::axpy,
    add: avx2::add,
    sub: avx2::sub,
    mul: avx2::mul,
    scale: avx2::scale,
};

#[cfg(target_arch = "aarch64")]
static SIMD_TABLE: KernelTable = KernelTable {
    backend: Backend::Simd,
    matmul: neon::matmul,
    matmul_tb: neon::matmul_tb,
    ta_matmul: neon::ta_matmul,
    matmul_bias_rowapply: neon::matmul_bias_rowapply,
    axpy: neon::axpy,
    add: neon::add,
    sub: neon::sub,
    mul: neon::mul,
    scale: neon::scale,
};

// The Fast tier only re-implements the kernels with multiply-add chains
// (the matmul family and axpy); the pure elementwise kernels have nothing
// to contract, so the FMA table shares the Exact SIMD entries for them —
// those remain bit-identical even under `fma`.
#[cfg(target_arch = "x86_64")]
static FMA_TABLE: KernelTable = KernelTable {
    backend: Backend::Fma,
    matmul: avx2fma::matmul,
    matmul_tb: avx2fma::matmul_tb,
    ta_matmul: avx2fma::ta_matmul,
    matmul_bias_rowapply: avx2fma::matmul_bias_rowapply,
    axpy: avx2fma::axpy,
    add: avx2::add,
    sub: avx2::sub,
    mul: avx2::mul,
    scale: avx2::scale,
};

#[cfg(target_arch = "aarch64")]
static FMA_TABLE: KernelTable = KernelTable {
    backend: Backend::Fma,
    matmul: neonfma::matmul,
    matmul_tb: neonfma::matmul_tb,
    ta_matmul: neonfma::ta_matmul,
    matmul_bias_rowapply: neonfma::matmul_bias_rowapply,
    axpy: neonfma::axpy,
    add: neon::add,
    sub: neon::sub,
    mul: neon::mul,
    scale: neon::scale,
};

/// The always-available scalar kernel set.
pub fn scalar() -> &'static KernelTable {
    &SCALAR_TABLE
}

/// The bit-identical vector kernel set, when this CPU supports it (`None`
/// otherwise). Ignores `BELLAMY_KERNEL`; tests use this to exercise the
/// SIMD path explicitly regardless of the process-wide selection.
pub fn simd() -> Option<&'static KernelTable> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(&SIMD_TABLE);
        }
        None
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON (incl. f64x2) is part of the aarch64 baseline.
        Some(&SIMD_TABLE)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

/// The FMA-contracted [`KernelTier::Fast`] kernel set, when this CPU
/// supports it (`None` otherwise). Ignores `BELLAMY_KERNEL`; the accuracy
/// harness uses this to compare Fast against Exact regardless of the
/// process-wide selection.
pub fn fma() -> Option<&'static KernelTable> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Some(&FMA_TABLE);
        }
        None
    }
    #[cfg(target_arch = "aarch64")]
    {
        // vfmaq_f64 is part of the aarch64 NEON baseline.
        Some(&FMA_TABLE)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

/// What a caller (environment or program) asked the dispatch layer for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierRequest {
    /// Best available **Exact** backend (the default; never picks FMA).
    Auto,
    /// Force the scalar reference kernels.
    Scalar,
    /// The bit-identical vector kernels (degrades to scalar).
    Simd,
    /// The FMA-contracted Fast tier (degrades to simd, then scalar).
    Fma,
}

impl TierRequest {
    /// The request's spelling, as accepted by `BELLAMY_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            TierRequest::Auto => "auto",
            TierRequest::Scalar => "scalar",
            TierRequest::Simd => "simd",
            TierRequest::Fma => "fma",
        }
    }
}

/// Where the winning [`TierRequest`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestSource {
    /// Nothing was requested; auto-detection picked the backend.
    Default,
    /// The `BELLAMY_KERNEL` environment variable.
    Env,
    /// A [`request_tier`] call (e.g. through `ServiceBuilder`).
    Program,
}

/// The outcome of the one-time kernel dispatch: what was asked for, where
/// the request came from, and what actually resolved. `degraded` is the
/// requested-vs-resolved signal the ROADMAP's silent-fallback fix calls
/// for: `BELLAMY_KERNEL=fma` on a non-FMA CPU no longer vanishes into a
/// quieter backend unnoticed — it is reported once on stderr and
/// permanently here (surfaced through `BatcherStats` and the bench
/// snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// The winning request.
    pub requested: TierRequest,
    /// Where the winning request came from.
    pub source: RequestSource,
    /// The backend that actually resolved.
    pub backend: Backend,
    /// True when the resolved backend is weaker than the request (the CPU
    /// lacked a requested feature and the dispatch degraded
    /// `fma → simd → scalar`).
    pub degraded: bool,
}

impl Resolution {
    /// The requested tier's name (`"auto"`, `"scalar"`, `"simd"`, `"fma"`).
    pub fn requested_name(&self) -> &'static str {
        self.requested.name()
    }

    /// The resolved backend's name (see [`Backend::name`]).
    pub fn resolved_name(&self) -> &'static str {
        self.backend.name()
    }
}

struct Resolved {
    table: &'static KernelTable,
    resolution: Resolution,
}

static ACTIVE: OnceLock<Resolved> = OnceLock::new();
static PROGRAM_REQUEST: OnceLock<TierRequest> = OnceLock::new();

/// Requests a kernel tier programmatically, without touching the
/// environment. Must run before the first kernel dispatch of the process
/// (the table resolves once and stays resolved): on success the request
/// wins over `BELLAMY_KERNEL` and the returned [`Resolution`] reflects it
/// (possibly degraded if the CPU lacks the feature). If dispatch had
/// already resolved — a kernel already ran, or an earlier caller requested
/// a different tier — the request is *not* applied and the standing
/// resolution comes back as the `Err` value, so callers can detect and
/// report the mismatch instead of silently serving on an unexpected tier.
pub fn request_tier(request: TierRequest) -> Result<Resolution, Resolution> {
    if ACTIVE.get().is_none() {
        let _ = PROGRAM_REQUEST.set(request);
    }
    let res = resolution();
    if res.source == RequestSource::Program && res.requested == request {
        Ok(res)
    } else {
        Err(res)
    }
}

/// Resolves the winning request (program > env > default) and the backend
/// it lands on; runs exactly once, so the degradation warnings print once.
fn resolve() -> Resolved {
    let (requested, source) = match PROGRAM_REQUEST.get() {
        Some(&req) => (req, RequestSource::Program),
        None => match std::env::var("BELLAMY_KERNEL").as_deref() {
            Ok("scalar") => (TierRequest::Scalar, RequestSource::Env),
            Ok("simd") => (TierRequest::Simd, RequestSource::Env),
            Ok("fma") => (TierRequest::Fma, RequestSource::Env),
            Ok("auto") => (TierRequest::Auto, RequestSource::Env),
            Err(_) => (TierRequest::Auto, RequestSource::Default),
            Ok(other) => {
                eprintln!(
                    "unknown BELLAMY_KERNEL value {other:?} \
                     (expected auto|scalar|simd|fma); using auto"
                );
                (TierRequest::Auto, RequestSource::Env)
            }
        },
    };
    let table = match requested {
        TierRequest::Scalar => scalar(),
        TierRequest::Simd => simd().unwrap_or_else(|| {
            let fallback = scalar();
            note_degradation(requested, source, fallback.backend);
            fallback
        }),
        TierRequest::Fma => fma().unwrap_or_else(|| {
            let fallback = simd().unwrap_or(scalar());
            note_degradation(requested, source, fallback.backend);
            fallback
        }),
        // `auto` deliberately never picks the Fast tier: the default
        // contract stays bit-identical to scalar.
        TierRequest::Auto => simd().unwrap_or(scalar()),
    };
    let degraded = match requested {
        TierRequest::Simd => table.backend != Backend::Simd,
        TierRequest::Fma => table.backend != Backend::Fma,
        TierRequest::Auto | TierRequest::Scalar => false,
    };
    Resolved {
        table,
        resolution: Resolution {
            requested,
            source,
            backend: table.backend,
            degraded,
        },
    }
}

/// Reports a kernel-tier degradation to both sinks: the process-global
/// structured event log (machine-readable, kind `kernel.degraded`) and a
/// one-line stderr warning (human-readable). `resolve()` runs once per
/// process, so each sink sees at most one degradation report.
fn note_degradation(requested: TierRequest, source: RequestSource, fallback: Backend) {
    let detail = format!(
        "kernel tier `{}` requested ({}) but this CPU does not support it; \
         degraded to `{}`",
        requested.name(),
        source_label(source),
        fallback.name()
    );
    bellamy_telemetry::events().record(
        bellamy_telemetry::event_kind::KERNEL_DEGRADED,
        detail.as_str(),
    );
    eprintln!("bellamy: {detail}");
}

fn source_label(source: RequestSource) -> &'static str {
    match source {
        RequestSource::Default => "by default",
        RequestSource::Env => "via BELLAMY_KERNEL",
        RequestSource::Program => "programmatically",
    }
}

/// The process-wide kernel table, resolved once from [`request_tier`],
/// `BELLAMY_KERNEL`, and CPU feature detection (see the module docs).
/// Steady-state cost: one atomic load.
#[inline]
pub fn active() -> &'static KernelTable {
    ACTIVE.get_or_init(resolve).table
}

/// The one-time dispatch outcome: requested vs resolved (see
/// [`Resolution`]). Forces resolution on first call, like [`active()`].
pub fn resolution() -> Resolution {
    ACTIVE.get_or_init(resolve).resolution
}

/// The active backend (see [`active()`]).
#[inline]
pub fn active_backend() -> Backend {
    active().backend
}

/// The active tier (see [`active()`]): [`KernelTier::Fast`] only under an
/// explicit `fma` opt-in on supporting hardware.
#[inline]
pub fn active_tier() -> KernelTier {
    active_backend().tier()
}

/// The active backend's name: `"scalar"`, `"avx2"`, `"neon"`, `"avx2-fma"`,
/// or `"neon-fma"`. Recorded in every `BENCH_*.json` so the perf trajectory
/// distinguishes scalar-container runs from vectorized hardware.
pub fn backend_name() -> &'static str {
    active_backend().name()
}

/// Block edge for the cache-blocked matmul kernels. Matrices in this
/// workspace are small; 64 keeps the working set of a block pair within L1.
const MATMUL_BLOCK: usize = 64;

/// Stack-buffer budget (in `f64`s) for materializing `bᵀ` in the
/// `a · bᵀ` kernels; covers every weight shape in this workspace.
const STACK_BT: usize = 4096;

/// The portable scalar kernels (the pre-SIMD `Matrix` loop bodies, moved
/// here verbatim so both backends live side by side).
mod scalar {
    use super::{MATMUL_BLOCK, STACK_BT};

    pub(super) fn matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        // Specialized register-accumulator kernel for the narrow outputs
        // that dominate this workspace (hidden width 8): the whole output
        // row lives in registers across the k loop.
        if n == 8 && k > 0 {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let mut acc = [0.0f64; 8];
                for (kk, &av) in arow.iter().enumerate() {
                    let brow = &b[kk * 8..kk * 8 + 8];
                    for j in 0..8 {
                        acc[j] += av * brow[j];
                    }
                }
                out[i * 8..i * 8 + 8].copy_from_slice(&acc);
            }
            return;
        }
        out.fill(0.0);
        for ib in (0..m).step_by(MATMUL_BLOCK) {
            let imax = (ib + MATMUL_BLOCK).min(m);
            for kb in (0..k).step_by(MATMUL_BLOCK) {
                let kmax = (kb + MATMUL_BLOCK).min(k);
                for i in ib..imax {
                    let arow = &a[i * k..(i + 1) * k];
                    let orow = &mut out[i * n..(i + 1) * n];
                    for kk in kb..kmax {
                        let av = arow[kk];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[kk * n..(kk + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the dispatch signature
    pub(super) fn matmul_bias_rowapply(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        row_finish: &mut dyn FnMut(&mut [f64]),
    ) {
        if n == 8 && k > 0 {
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let mut acc = [0.0f64; 8];
                for (kk, &av) in arow.iter().enumerate() {
                    let brow = &b[kk * 8..kk * 8 + 8];
                    for j in 0..8 {
                        acc[j] += av * brow[j];
                    }
                }
                if let Some(bv) = bias {
                    for (av, &biasv) in acc.iter_mut().zip(bv.iter()) {
                        *av += biasv;
                    }
                }
                row_finish(&mut acc);
                out[i * 8..i * 8 + 8].copy_from_slice(&acc);
            }
            return;
        }
        matmul(a, b, out, m, k, n);
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            if let Some(bv) = bias {
                for (o, &biasv) in orow.iter_mut().zip(bv.iter()) {
                    *o += biasv;
                }
            }
            row_finish(orow);
        }
    }

    pub(super) fn matmul_tb(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        // This is the hottest backward kernel (dX = dY·Wᵀ). For the weight
        // shapes of this workspace, materialize Wᵀ in a stack buffer and run
        // the cache-friendly i-k-j row-axpy form: long independent adds
        // vectorize, unlike a latency-bound dot product per element.
        if k * n <= STACK_BT && k > 0 {
            let mut bt = [0.0f64; STACK_BT];
            for (j, brow) in b.chunks_exact(k).enumerate() {
                for (kk, &bv) in brow.iter().enumerate() {
                    bt[kk * n + j] = bv;
                }
            }
            if n == 8 {
                // Register-accumulator variant (as in `matmul`).
                for i in 0..m {
                    let arow = &a[i * k..(i + 1) * k];
                    let mut acc = [0.0f64; 8];
                    for (kk, &av) in arow.iter().enumerate() {
                        let btrow = &bt[kk * 8..kk * 8 + 8];
                        for j in 0..8 {
                            acc[j] += av * btrow[j];
                        }
                    }
                    out[i * 8..i * 8 + 8].copy_from_slice(&acc);
                }
                return;
            }
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                orow.fill(0.0);
                for (kk, &av) in arow.iter().enumerate() {
                    let btrow = &bt[kk * n..(kk + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(btrow.iter()) {
                        *o += av * bv;
                    }
                }
            }
            return;
        }
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                // Four independent accumulators break the FP add dependency
                // chain.
                let mut acc = [0.0f64; 4];
                let mut a4 = arow.chunks_exact(4);
                let mut b4 = brow.chunks_exact(4);
                for (ac, bc) in (&mut a4).zip(&mut b4) {
                    acc[0] += ac[0] * bc[0];
                    acc[1] += ac[1] * bc[1];
                    acc[2] += ac[2] * bc[2];
                    acc[3] += ac[3] * bc[3];
                }
                let mut tail = 0.0;
                for (&av, &bv) in a4.remainder().iter().zip(b4.remainder()) {
                    tail += av * bv;
                }
                *o = (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail;
            }
        }
    }

    pub(super) fn ta_matmul(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
        out.fill(0.0);
        // Tile the shared (row) dimension by 4: each pass over `out` folds
        // four rank-1 updates, quartering memory traffic on the hot
        // dW = Xᵀ·dY backward kernel.
        let tiles = k / 4 * 4;
        for r in (0..tiles).step_by(4) {
            let at = &a[r * m..(r + 4) * m];
            let bt = &b[r * n..(r + 4) * n];
            for i in 0..m {
                let (x0, x1, x2, x3) = (at[i], at[m + i], at[2 * m + i], at[3 * m + i]);
                let orow = &mut out[i * n..(i + 1) * n];
                for (j, o) in orow.iter_mut().enumerate() {
                    *o += x0 * bt[j] + x1 * bt[n + j] + x2 * bt[2 * n + j] + x3 * bt[3 * n + j];
                }
            }
        }
        for r in tiles..k {
            let arow = &a[r * m..(r + 1) * m];
            let brow = &b[r * n..(r + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    }

    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        if alpha == 1.0 {
            // Bit-compatibility with a plain add: no multiply by one.
            for (yv, &xv) in y.iter_mut().zip(x.iter()) {
                *yv += xv;
            }
        } else {
            for (yv, &xv) in y.iter_mut().zip(x.iter()) {
                *yv += alpha * xv;
            }
        }
    }

    pub(super) fn add(a: &[f64], b: &[f64], out: &mut [f64]) {
        for ((o, &av), &bv) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
            *o = av + bv;
        }
    }

    pub(super) fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
        for ((o, &av), &bv) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
            *o = av - bv;
        }
    }

    pub(super) fn mul(a: &[f64], b: &[f64], out: &mut [f64]) {
        for ((o, &av), &bv) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
            *o = av * bv;
        }
    }

    pub(super) fn scale(a: &[f64], alpha: f64, out: &mut [f64]) {
        for (o, &av) in out.iter_mut().zip(a.iter()) {
            *o = av * alpha;
        }
    }
}

/// AVX2 `f64x4` kernels. Every function here is a safe wrapper around an
/// `unsafe` `#[target_feature(enable = "avx2")]` body; the wrappers are only
/// ever reachable through [`SIMD_TABLE`], which [`simd()`] hands out strictly
/// after `is_x86_feature_detected!("avx2")` succeeded, so the calls are
/// sound. See the module docs for the bit-identity argument (no FMA, scalar
/// accumulation order preserved).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{MATMUL_BLOCK, STACK_BT};
    use std::arch::x86_64::*;

    pub(super) fn matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        // SAFETY: AVX2 availability checked before this table is handed out.
        unsafe { matmul_impl(a, b, out, m, k, n) }
    }

    pub(super) fn matmul_tb(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        // SAFETY: as in `matmul`.
        unsafe { matmul_tb_impl(a, b, out, m, k, n) }
    }

    pub(super) fn ta_matmul(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
        // SAFETY: as in `matmul`.
        unsafe { ta_matmul_impl(a, b, out, k, m, n) }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the dispatch signature
    pub(super) fn matmul_bias_rowapply(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        row_finish: &mut dyn FnMut(&mut [f64]),
    ) {
        // SAFETY: as in `matmul`.
        unsafe { matmul_bias_rowapply_impl(a, b, bias, out, m, k, n, row_finish) }
    }

    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        // SAFETY: as in `matmul`.
        unsafe { axpy_impl(alpha, x, y) }
    }

    pub(super) fn add(a: &[f64], b: &[f64], out: &mut [f64]) {
        // SAFETY: as in `matmul`.
        unsafe { add_impl(a, b, out) }
    }

    pub(super) fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
        // SAFETY: as in `matmul`.
        unsafe { sub_impl(a, b, out) }
    }

    pub(super) fn mul(a: &[f64], b: &[f64], out: &mut [f64]) {
        // SAFETY: as in `matmul`.
        unsafe { mul_impl(a, b, out) }
    }

    pub(super) fn scale(a: &[f64], alpha: f64, out: &mut [f64]) {
        // SAFETY: as in `matmul`.
        unsafe { scale_impl(a, alpha, out) }
    }

    /// The width-8 register kernel shared by `matmul` and the stack-`bᵀ`
    /// path of `matmul_tb`: four output rows per pass reuse each loaded
    /// 8-wide `b` row, quartering load traffic (8 accumulators + 2 `b`
    /// halves + 1 broadcast stay within the 16 ymm registers).
    /// Accumulation per output element stays in ascending-`kk` order, so
    /// this is bit-identical to the scalar register kernel. `finish`
    /// post-processes each completed row (bias + activation) on a stack
    /// buffer before it is stored, in row order.
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_n8(
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
        m: usize,
        k: usize,
        mut finish: impl FnMut(&mut [f64; 8]),
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let ar0 = ap.add(i * k);
            let ar1 = ap.add((i + 1) * k);
            let ar2 = ap.add((i + 2) * k);
            let ar3 = ap.add((i + 3) * k);
            let mut acc00 = _mm256_setzero_pd();
            let mut acc01 = _mm256_setzero_pd();
            let mut acc10 = _mm256_setzero_pd();
            let mut acc11 = _mm256_setzero_pd();
            let mut acc20 = _mm256_setzero_pd();
            let mut acc21 = _mm256_setzero_pd();
            let mut acc30 = _mm256_setzero_pd();
            let mut acc31 = _mm256_setzero_pd();
            for kk in 0..k {
                let b0 = _mm256_loadu_pd(bp.add(kk * 8));
                let b1 = _mm256_loadu_pd(bp.add(kk * 8 + 4));
                let a0 = _mm256_set1_pd(*ar0.add(kk));
                acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(a0, b0));
                acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(a0, b1));
                let a1 = _mm256_set1_pd(*ar1.add(kk));
                acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(a1, b0));
                acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(a1, b1));
                let a2 = _mm256_set1_pd(*ar2.add(kk));
                acc20 = _mm256_add_pd(acc20, _mm256_mul_pd(a2, b0));
                acc21 = _mm256_add_pd(acc21, _mm256_mul_pd(a2, b1));
                let a3 = _mm256_set1_pd(*ar3.add(kk));
                acc30 = _mm256_add_pd(acc30, _mm256_mul_pd(a3, b0));
                acc31 = _mm256_add_pd(acc31, _mm256_mul_pd(a3, b1));
            }
            let mut row = [0.0f64; 8];
            for (r, (lo, hi)) in [
                (acc00, acc01),
                (acc10, acc11),
                (acc20, acc21),
                (acc30, acc31),
            ]
            .into_iter()
            .enumerate()
            {
                _mm256_storeu_pd(row.as_mut_ptr(), lo);
                _mm256_storeu_pd(row.as_mut_ptr().add(4), hi);
                finish(&mut row);
                out[(i + r) * 8..(i + r) * 8 + 8].copy_from_slice(&row);
            }
            i += 4;
        }
        while i + 2 <= m {
            let ar0 = ap.add(i * k);
            let ar1 = ap.add((i + 1) * k);
            let mut acc00 = _mm256_setzero_pd();
            let mut acc01 = _mm256_setzero_pd();
            let mut acc10 = _mm256_setzero_pd();
            let mut acc11 = _mm256_setzero_pd();
            for kk in 0..k {
                let b0 = _mm256_loadu_pd(bp.add(kk * 8));
                let b1 = _mm256_loadu_pd(bp.add(kk * 8 + 4));
                let a0 = _mm256_set1_pd(*ar0.add(kk));
                let a1 = _mm256_set1_pd(*ar1.add(kk));
                acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(a0, b0));
                acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(a0, b1));
                acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(a1, b0));
                acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(a1, b1));
            }
            let mut row = [0.0f64; 8];
            _mm256_storeu_pd(row.as_mut_ptr(), acc00);
            _mm256_storeu_pd(row.as_mut_ptr().add(4), acc01);
            finish(&mut row);
            out[i * 8..i * 8 + 8].copy_from_slice(&row);
            _mm256_storeu_pd(row.as_mut_ptr(), acc10);
            _mm256_storeu_pd(row.as_mut_ptr().add(4), acc11);
            finish(&mut row);
            out[(i + 1) * 8..(i + 1) * 8 + 8].copy_from_slice(&row);
            i += 2;
        }
        if i < m {
            let ar = ap.add(i * k);
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for kk in 0..k {
                let av = _mm256_set1_pd(*ar.add(kk));
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(av, _mm256_loadu_pd(bp.add(kk * 8))));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(av, _mm256_loadu_pd(bp.add(kk * 8 + 4))));
            }
            let mut row = [0.0f64; 8];
            _mm256_storeu_pd(row.as_mut_ptr(), acc0);
            _mm256_storeu_pd(row.as_mut_ptr().add(4), acc1);
            finish(&mut row);
            out[i * 8..i * 8 + 8].copy_from_slice(&row);
        }
    }

    /// `orow[j..] += av * brow[j..]` with a scalar ragged tail.
    #[target_feature(enable = "avx2")]
    unsafe fn row_axpy(av: f64, brow: *const f64, orow: *mut f64, n: usize) {
        let avv = _mm256_set1_pd(av);
        let mut j = 0;
        while j + 4 <= n {
            let o = _mm256_loadu_pd(orow.add(j));
            let bv = _mm256_loadu_pd(brow.add(j));
            _mm256_storeu_pd(orow.add(j), _mm256_add_pd(o, _mm256_mul_pd(avv, bv)));
            j += 4;
        }
        while j < n {
            *orow.add(j) += av * *brow.add(j);
            j += 1;
        }
    }

    /// Width-4 register kernel: one `__m256d` accumulator holds the whole
    /// output row, so the inner loop never touches `out` memory. The
    /// encoder matmuls (`batch x F` times `F x 4` property codes) dominate
    /// the predict forward and land exactly here. Replicates the scalar
    /// general path bit for bit: ascending-`kk` accumulation from a zeroed
    /// row, including the `av == 0.0` skip.
    #[target_feature(enable = "avx2")]
    unsafe fn matmul_n4(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for i in 0..m {
            let ar = ap.add(i * k);
            let mut acc = _mm256_setzero_pd();
            for kk in 0..k {
                let av = *ar.add(kk);
                if av == 0.0 {
                    continue;
                }
                let bv = _mm256_loadu_pd(bp.add(kk * 4));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(av), bv));
            }
            _mm256_storeu_pd(op.add(i * 4), acc);
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn matmul_impl(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        if n == 8 && k > 0 {
            matmul_n8(a, b, out, m, k, |_| {});
            return;
        }
        if n == 4 && k > 0 {
            matmul_n4(a, b, out, m, k);
            return;
        }
        out.fill(0.0);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for ib in (0..m).step_by(MATMUL_BLOCK) {
            let imax = (ib + MATMUL_BLOCK).min(m);
            for kb in (0..k).step_by(MATMUL_BLOCK) {
                let kmax = (kb + MATMUL_BLOCK).min(k);
                for i in ib..imax {
                    for kk in kb..kmax {
                        let av = *ap.add(i * k + kk);
                        // Same sparse skip as the scalar kernel (also needed
                        // for bit-identity: skipping ±0·b ≠ adding it when
                        // the accumulator holds -0.0).
                        if av == 0.0 {
                            continue;
                        }
                        row_axpy(av, bp.add(kk * n), op.add(i * n), n);
                    }
                }
            }
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)] // mirrors the dispatch signature
    unsafe fn matmul_bias_rowapply_impl(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        row_finish: &mut dyn FnMut(&mut [f64]),
    ) {
        if n == 8 && k > 0 {
            matmul_n8(a, b, out, m, k, |row| {
                if let Some(bv) = bias {
                    for (rv, &biasv) in row.iter_mut().zip(bv.iter()) {
                        *rv += biasv;
                    }
                }
                row_finish(row);
            });
            return;
        }
        matmul_impl(a, b, out, m, k, n);
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            if let Some(bv) = bias {
                add_assign_impl(bv, orow);
            }
            row_finish(orow);
        }
    }

    /// `y[i] += x[i]` (the bias broadcast body). Shared with the FMA table
    /// (a plain add has nothing to contract).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign_impl(x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= n {
            let s = _mm256_add_pd(_mm256_loadu_pd(yp.add(j)), _mm256_loadu_pd(xp.add(j)));
            _mm256_storeu_pd(yp.add(j), s);
            j += 4;
        }
        while j < n {
            *yp.add(j) += *xp.add(j);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn matmul_tb_impl(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        if k * n <= STACK_BT && k > 0 {
            let mut bt = [0.0f64; STACK_BT];
            for (j, brow) in b.chunks_exact(k).enumerate() {
                for (kk, &bv) in brow.iter().enumerate() {
                    bt[kk * n + j] = bv;
                }
            }
            if n == 8 {
                matmul_n8(a, &bt[..k * 8], out, m, k, |_| {});
                return;
            }
            let ap = a.as_ptr();
            let btp = bt.as_ptr();
            let op = out.as_mut_ptr();
            for i in 0..m {
                let orow = &mut out[i * n..(i + 1) * n];
                orow.fill(0.0);
                for kk in 0..k {
                    let av = *ap.add(i * k + kk);
                    row_axpy(av, btp.add(kk * n), op.add(i * n), n);
                }
            }
            return;
        }
        // Dot-product form: one f64x4 accumulator whose lanes replicate the
        // scalar kernel's four-way split, reduced in the same fixed order
        // (lane0+lane1) + (lane2+lane3) + tail — bit-identical.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = _mm256_setzero_pd();
                let quads = k / 4 * 4;
                let mut kk = 0;
                while kk < quads {
                    let av = _mm256_loadu_pd(arow.as_ptr().add(kk));
                    let bv = _mm256_loadu_pd(brow.as_ptr().add(kk));
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
                    kk += 4;
                }
                let mut tail = 0.0;
                for (&av, &bv) in arow[quads..].iter().zip(brow[quads..].iter()) {
                    tail += av * bv;
                }
                let lo = _mm256_castpd256_pd128(acc);
                let hi = _mm256_extractf128_pd(acc, 1);
                let l0 = _mm_cvtsd_f64(lo);
                let l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
                let l2 = _mm_cvtsd_f64(hi);
                let l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
                *o = (l0 + l1) + (l2 + l3) + tail;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn ta_matmul_impl(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
        out.fill(0.0);
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let tiles = k / 4 * 4;
        for r in (0..tiles).step_by(4) {
            let at = &a[r * m..(r + 4) * m];
            for i in 0..m {
                let x0 = _mm256_set1_pd(at[i]);
                let x1 = _mm256_set1_pd(at[m + i]);
                let x2 = _mm256_set1_pd(at[2 * m + i]);
                let x3 = _mm256_set1_pd(at[3 * m + i]);
                let orow = op.add(i * n);
                let b0 = bp.add(r * n);
                let mut j = 0;
                while j + 4 <= n {
                    // Same association as the scalar tile:
                    // ((x0·b0 + x1·b1) + x2·b2) + x3·b3, then += into out.
                    let m0 = _mm256_mul_pd(x0, _mm256_loadu_pd(b0.add(j)));
                    let m1 = _mm256_mul_pd(x1, _mm256_loadu_pd(b0.add(n + j)));
                    let m2 = _mm256_mul_pd(x2, _mm256_loadu_pd(b0.add(2 * n + j)));
                    let m3 = _mm256_mul_pd(x3, _mm256_loadu_pd(b0.add(3 * n + j)));
                    let s = _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(m0, m1), m2), m3);
                    let o = _mm256_loadu_pd(orow.add(j));
                    _mm256_storeu_pd(orow.add(j), _mm256_add_pd(o, s));
                    j += 4;
                }
                while j < n {
                    let s = at[i] * *b0.add(j)
                        + at[m + i] * *b0.add(n + j)
                        + at[2 * m + i] * *b0.add(2 * n + j)
                        + at[3 * m + i] * *b0.add(3 * n + j);
                    *orow.add(j) += s;
                    j += 1;
                }
            }
        }
        for r in tiles..k {
            let arow = &a[r * m..(r + 1) * m];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                row_axpy(av, bp.add(r * n), op.add(i * n), n);
            }
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn axpy_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        if alpha == 1.0 {
            add_assign_impl(x, y);
            return;
        }
        let av = _mm256_set1_pd(alpha);
        let mut j = 0;
        while j + 4 <= n {
            let s = _mm256_add_pd(
                _mm256_loadu_pd(yp.add(j)),
                _mm256_mul_pd(av, _mm256_loadu_pd(xp.add(j))),
            );
            _mm256_storeu_pd(yp.add(j), s);
            j += 4;
        }
        while j < n {
            *yp.add(j) += alpha * *xp.add(j);
            j += 1;
        }
    }

    macro_rules! binary_impl {
        ($name:ident, $vop:ident, $sop:tt) => {
            #[target_feature(enable = "avx2")]
            unsafe fn $name(a: &[f64], b: &[f64], out: &mut [f64]) {
                let n = out.len();
                let ap = a.as_ptr();
                let bp = b.as_ptr();
                let op = out.as_mut_ptr();
                let mut j = 0;
                while j + 4 <= n {
                    let v = $vop(_mm256_loadu_pd(ap.add(j)), _mm256_loadu_pd(bp.add(j)));
                    _mm256_storeu_pd(op.add(j), v);
                    j += 4;
                }
                while j < n {
                    *op.add(j) = *ap.add(j) $sop *bp.add(j);
                    j += 1;
                }
            }
        };
    }

    binary_impl!(add_impl, _mm256_add_pd, +);
    binary_impl!(sub_impl, _mm256_sub_pd, -);
    binary_impl!(mul_impl, _mm256_mul_pd, *);

    #[target_feature(enable = "avx2")]
    unsafe fn scale_impl(a: &[f64], alpha: f64, out: &mut [f64]) {
        let n = out.len();
        let ap = a.as_ptr();
        let op = out.as_mut_ptr();
        let av = _mm256_set1_pd(alpha);
        let mut j = 0;
        while j + 4 <= n {
            _mm256_storeu_pd(op.add(j), _mm256_mul_pd(_mm256_loadu_pd(ap.add(j)), av));
            j += 4;
        }
        while j < n {
            *op.add(j) = *ap.add(j) * alpha;
            j += 1;
        }
    }
}

/// AVX2+FMA kernels — the [`KernelTier::Fast`] tier. Structure mirrors the
/// `avx2` module, with every multiply-add contracted to `_mm256_fmadd_pd`
/// (one rounding instead of two). **Not** bit-identical to scalar; the
/// accuracy contract is the documented ULP envelope in the module docs,
/// pinned by `tests/fma_accuracy.rs`. Safety story is identical to `avx2`:
/// every entry is a safe wrapper around an `unsafe`
/// `#[target_feature(enable = "avx2,fma")]` body, reachable only through
/// [`FMA_TABLE`], which [`fma()`] hands out strictly after both features
/// were detected.
#[cfg(target_arch = "x86_64")]
mod avx2fma {
    use super::{avx2, MATMUL_BLOCK, STACK_BT};
    use std::arch::x86_64::*;

    pub(super) fn matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        // SAFETY: AVX2+FMA availability checked before this table is
        // handed out.
        unsafe { matmul_impl(a, b, out, m, k, n) }
    }

    pub(super) fn matmul_tb(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        // SAFETY: as in `matmul`.
        unsafe { matmul_tb_impl(a, b, out, m, k, n) }
    }

    pub(super) fn ta_matmul(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
        // SAFETY: as in `matmul`.
        unsafe { ta_matmul_impl(a, b, out, k, m, n) }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the dispatch signature
    pub(super) fn matmul_bias_rowapply(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        row_finish: &mut dyn FnMut(&mut [f64]),
    ) {
        // SAFETY: as in `matmul`.
        unsafe { matmul_bias_rowapply_impl(a, b, bias, out, m, k, n, row_finish) }
    }

    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        // SAFETY: as in `matmul`.
        unsafe { axpy_impl(alpha, x, y) }
    }

    /// The width-8 register kernel, FMA-contracted: same 4-row blocking and
    /// ascending-`kk` accumulation order as the Exact variant, but each
    /// lane update is one fused `acc = a·b + acc` instead of a rounded
    /// multiply followed by a rounded add. Halves the FP-op count of the
    /// inner loop on the kernel that dominates predict.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn matmul_n8(
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
        m: usize,
        k: usize,
        mut finish: impl FnMut(&mut [f64; 8]),
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let ar0 = ap.add(i * k);
            let ar1 = ap.add((i + 1) * k);
            let ar2 = ap.add((i + 2) * k);
            let ar3 = ap.add((i + 3) * k);
            let mut acc00 = _mm256_setzero_pd();
            let mut acc01 = _mm256_setzero_pd();
            let mut acc10 = _mm256_setzero_pd();
            let mut acc11 = _mm256_setzero_pd();
            let mut acc20 = _mm256_setzero_pd();
            let mut acc21 = _mm256_setzero_pd();
            let mut acc30 = _mm256_setzero_pd();
            let mut acc31 = _mm256_setzero_pd();
            for kk in 0..k {
                let b0 = _mm256_loadu_pd(bp.add(kk * 8));
                let b1 = _mm256_loadu_pd(bp.add(kk * 8 + 4));
                let a0 = _mm256_set1_pd(*ar0.add(kk));
                acc00 = _mm256_fmadd_pd(a0, b0, acc00);
                acc01 = _mm256_fmadd_pd(a0, b1, acc01);
                let a1 = _mm256_set1_pd(*ar1.add(kk));
                acc10 = _mm256_fmadd_pd(a1, b0, acc10);
                acc11 = _mm256_fmadd_pd(a1, b1, acc11);
                let a2 = _mm256_set1_pd(*ar2.add(kk));
                acc20 = _mm256_fmadd_pd(a2, b0, acc20);
                acc21 = _mm256_fmadd_pd(a2, b1, acc21);
                let a3 = _mm256_set1_pd(*ar3.add(kk));
                acc30 = _mm256_fmadd_pd(a3, b0, acc30);
                acc31 = _mm256_fmadd_pd(a3, b1, acc31);
            }
            let mut row = [0.0f64; 8];
            for (r, (lo, hi)) in [
                (acc00, acc01),
                (acc10, acc11),
                (acc20, acc21),
                (acc30, acc31),
            ]
            .into_iter()
            .enumerate()
            {
                _mm256_storeu_pd(row.as_mut_ptr(), lo);
                _mm256_storeu_pd(row.as_mut_ptr().add(4), hi);
                finish(&mut row);
                out[(i + r) * 8..(i + r) * 8 + 8].copy_from_slice(&row);
            }
            i += 4;
        }
        while i < m {
            let ar = ap.add(i * k);
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            for kk in 0..k {
                let av = _mm256_set1_pd(*ar.add(kk));
                acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bp.add(kk * 8)), acc0);
                acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bp.add(kk * 8 + 4)), acc1);
            }
            let mut row = [0.0f64; 8];
            _mm256_storeu_pd(row.as_mut_ptr(), acc0);
            _mm256_storeu_pd(row.as_mut_ptr().add(4), acc1);
            finish(&mut row);
            out[i * 8..i * 8 + 8].copy_from_slice(&row);
            i += 1;
        }
    }

    /// `orow[j..] = fma(av, brow[j..], orow[j..])` with a fused scalar
    /// ragged tail.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn row_axpy(av: f64, brow: *const f64, orow: *mut f64, n: usize) {
        let avv = _mm256_set1_pd(av);
        let mut j = 0;
        while j + 4 <= n {
            let o = _mm256_loadu_pd(orow.add(j));
            let bv = _mm256_loadu_pd(brow.add(j));
            _mm256_storeu_pd(orow.add(j), _mm256_fmadd_pd(avv, bv, o));
            j += 4;
        }
        while j < n {
            *orow.add(j) = av.mul_add(*brow.add(j), *orow.add(j));
            j += 1;
        }
    }

    /// Width-4 register kernel, FMA-contracted (see the Exact variant for
    /// the layout; the `av == 0.0` skip is preserved so ±0 semantics and
    /// the sparse-input advantage carry over).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn matmul_n4(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for i in 0..m {
            let ar = ap.add(i * k);
            let mut acc = _mm256_setzero_pd();
            for kk in 0..k {
                let av = *ar.add(kk);
                if av == 0.0 {
                    continue;
                }
                let bv = _mm256_loadu_pd(bp.add(kk * 4));
                acc = _mm256_fmadd_pd(_mm256_set1_pd(av), bv, acc);
            }
            _mm256_storeu_pd(op.add(i * 4), acc);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn matmul_impl(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        if n == 8 && k > 0 {
            matmul_n8(a, b, out, m, k, |_| {});
            return;
        }
        if n == 4 && k > 0 {
            matmul_n4(a, b, out, m, k);
            return;
        }
        out.fill(0.0);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for ib in (0..m).step_by(MATMUL_BLOCK) {
            let imax = (ib + MATMUL_BLOCK).min(m);
            for kb in (0..k).step_by(MATMUL_BLOCK) {
                let kmax = (kb + MATMUL_BLOCK).min(k);
                for i in ib..imax {
                    for kk in kb..kmax {
                        let av = *ap.add(i * k + kk);
                        // Same sparse skip as the Exact kernels (also keeps
                        // ±0 accumulator semantics identical).
                        if av == 0.0 {
                            continue;
                        }
                        row_axpy(av, bp.add(kk * n), op.add(i * n), n);
                    }
                }
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)] // mirrors the dispatch signature
    unsafe fn matmul_bias_rowapply_impl(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        row_finish: &mut dyn FnMut(&mut [f64]),
    ) {
        if n == 8 && k > 0 {
            matmul_n8(a, b, out, m, k, |row| {
                if let Some(bv) = bias {
                    for (rv, &biasv) in row.iter_mut().zip(bv.iter()) {
                        *rv += biasv;
                    }
                }
                row_finish(row);
            });
            return;
        }
        matmul_impl(a, b, out, m, k, n);
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            if let Some(bv) = bias {
                avx2::add_assign_impl(bv, orow);
            }
            row_finish(orow);
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn matmul_tb_impl(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        if k * n <= STACK_BT && k > 0 {
            let mut bt = [0.0f64; STACK_BT];
            for (j, brow) in b.chunks_exact(k).enumerate() {
                for (kk, &bv) in brow.iter().enumerate() {
                    bt[kk * n + j] = bv;
                }
            }
            if n == 8 {
                matmul_n8(a, &bt[..k * 8], out, m, k, |_| {});
                return;
            }
            let ap = a.as_ptr();
            let btp = bt.as_ptr();
            let op = out.as_mut_ptr();
            for i in 0..m {
                let orow = &mut out[i * n..(i + 1) * n];
                orow.fill(0.0);
                for kk in 0..k {
                    let av = *ap.add(i * k + kk);
                    row_axpy(av, btp.add(kk * n), op.add(i * n), n);
                }
            }
            return;
        }
        // Dot-product form: one fused accumulator per four lanes; the lane
        // reduction keeps the Exact kernel's (l0+l1)+(l2+l3)+tail order.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = _mm256_setzero_pd();
                let quads = k / 4 * 4;
                let mut kk = 0;
                while kk < quads {
                    let av = _mm256_loadu_pd(arow.as_ptr().add(kk));
                    let bv = _mm256_loadu_pd(brow.as_ptr().add(kk));
                    acc = _mm256_fmadd_pd(av, bv, acc);
                    kk += 4;
                }
                let mut tail = 0.0;
                for (&av, &bv) in arow[quads..].iter().zip(brow[quads..].iter()) {
                    tail = av.mul_add(bv, tail);
                }
                let lo = _mm256_castpd256_pd128(acc);
                let hi = _mm256_extractf128_pd(acc, 1);
                let l0 = _mm_cvtsd_f64(lo);
                let l1 = _mm_cvtsd_f64(_mm_unpackhi_pd(lo, lo));
                let l2 = _mm_cvtsd_f64(hi);
                let l3 = _mm_cvtsd_f64(_mm_unpackhi_pd(hi, hi));
                *o = (l0 + l1) + (l2 + l3) + tail;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn ta_matmul_impl(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
        out.fill(0.0);
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let tiles = k / 4 * 4;
        for r in (0..tiles).step_by(4) {
            let at = &a[r * m..(r + 4) * m];
            for i in 0..m {
                let x0 = _mm256_set1_pd(at[i]);
                let x1 = _mm256_set1_pd(at[m + i]);
                let x2 = _mm256_set1_pd(at[2 * m + i]);
                let x3 = _mm256_set1_pd(at[3 * m + i]);
                let orow = op.add(i * n);
                let b0 = bp.add(r * n);
                let mut j = 0;
                while j + 4 <= n {
                    // The whole 4-way tile update folds into a fused chain
                    // ending in the accumulator:
                    // out = x0·b0 + (x1·b1 + (x2·b2 + (x3·b3 + out))).
                    let o = _mm256_loadu_pd(orow.add(j));
                    let s = _mm256_fmadd_pd(
                        x0,
                        _mm256_loadu_pd(b0.add(j)),
                        _mm256_fmadd_pd(
                            x1,
                            _mm256_loadu_pd(b0.add(n + j)),
                            _mm256_fmadd_pd(
                                x2,
                                _mm256_loadu_pd(b0.add(2 * n + j)),
                                _mm256_fmadd_pd(x3, _mm256_loadu_pd(b0.add(3 * n + j)), o),
                            ),
                        ),
                    );
                    _mm256_storeu_pd(orow.add(j), s);
                    j += 4;
                }
                while j < n {
                    let s = at[i].mul_add(
                        *b0.add(j),
                        at[m + i].mul_add(
                            *b0.add(n + j),
                            at[2 * m + i].mul_add(
                                *b0.add(2 * n + j),
                                at[3 * m + i].mul_add(*b0.add(3 * n + j), *orow.add(j)),
                            ),
                        ),
                    );
                    *orow.add(j) = s;
                    j += 1;
                }
            }
        }
        for r in tiles..k {
            let arow = &a[r * m..(r + 1) * m];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                row_axpy(av, bp.add(r * n), op.add(i * n), n);
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn axpy_impl(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        if alpha == 1.0 {
            // Bit-compatibility with a plain add even on the Fast tier: no
            // multiply by one to contract.
            avx2::add_assign_impl(x, y);
            return;
        }
        let av = _mm256_set1_pd(alpha);
        let mut j = 0;
        while j + 4 <= n {
            let s = _mm256_fmadd_pd(av, _mm256_loadu_pd(xp.add(j)), _mm256_loadu_pd(yp.add(j)));
            _mm256_storeu_pd(yp.add(j), s);
            j += 4;
        }
        while j < n {
            *yp.add(j) = alpha.mul_add(*xp.add(j), *yp.add(j));
            j += 1;
        }
    }
}

/// NEON `f64x2` kernels, mirroring the AVX2 module's structure at half the
/// vector width. NEON is part of the `aarch64` baseline, so the intrinsics
/// need no runtime gate and no `target_feature` attribute. The same
/// bit-identity rules apply: no `vfma`, scalar accumulation order preserved.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{MATMUL_BLOCK, STACK_BT};
    use std::arch::aarch64::*;

    /// `orow[j..] += av * brow[j..]` with a scalar ragged tail.
    ///
    /// # Safety
    /// `brow` and `orow` must be valid for `n` reads/writes.
    unsafe fn row_axpy(av: f64, brow: *const f64, orow: *mut f64, n: usize) {
        let avv = vdupq_n_f64(av);
        let mut j = 0;
        while j + 2 <= n {
            let o = vld1q_f64(orow.add(j));
            let bv = vld1q_f64(brow.add(j));
            vst1q_f64(orow.add(j), vaddq_f64(o, vmulq_f64(avv, bv)));
            j += 2;
        }
        while j < n {
            *orow.add(j) += av * *brow.add(j);
            j += 1;
        }
    }

    /// Width-8 register kernel (see the AVX2 variant for the layout).
    ///
    /// # Safety
    /// `a` must hold `m*k` elements, `b` `k*8`, `out` `m*8`.
    unsafe fn matmul_n8(
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
        m: usize,
        k: usize,
        mut finish: impl FnMut(&mut [f64; 8]),
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..m {
            let ar = ap.add(i * k);
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let mut acc2 = vdupq_n_f64(0.0);
            let mut acc3 = vdupq_n_f64(0.0);
            for kk in 0..k {
                let av = vdupq_n_f64(*ar.add(kk));
                acc0 = vaddq_f64(acc0, vmulq_f64(av, vld1q_f64(bp.add(kk * 8))));
                acc1 = vaddq_f64(acc1, vmulq_f64(av, vld1q_f64(bp.add(kk * 8 + 2))));
                acc2 = vaddq_f64(acc2, vmulq_f64(av, vld1q_f64(bp.add(kk * 8 + 4))));
                acc3 = vaddq_f64(acc3, vmulq_f64(av, vld1q_f64(bp.add(kk * 8 + 6))));
            }
            let mut row = [0.0f64; 8];
            vst1q_f64(row.as_mut_ptr(), acc0);
            vst1q_f64(row.as_mut_ptr().add(2), acc1);
            vst1q_f64(row.as_mut_ptr().add(4), acc2);
            vst1q_f64(row.as_mut_ptr().add(6), acc3);
            finish(&mut row);
            out[i * 8..i * 8 + 8].copy_from_slice(&row);
        }
    }

    /// Width-4 register kernel (see the AVX2 variant): the output row lives
    /// in two `float64x2_t` accumulators, ascending-`kk` with the scalar
    /// path's `av == 0.0` skip replicated.
    ///
    /// # Safety
    /// `a` must hold `m*k` elements, `b` `k*4`, `out` `m*4`.
    unsafe fn matmul_n4(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for i in 0..m {
            let ar = ap.add(i * k);
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            for kk in 0..k {
                let av = *ar.add(kk);
                if av == 0.0 {
                    continue;
                }
                let avv = vdupq_n_f64(av);
                acc0 = vaddq_f64(acc0, vmulq_f64(avv, vld1q_f64(bp.add(kk * 4))));
                acc1 = vaddq_f64(acc1, vmulq_f64(avv, vld1q_f64(bp.add(kk * 4 + 2))));
            }
            vst1q_f64(op.add(i * 4), acc0);
            vst1q_f64(op.add(i * 4 + 2), acc1);
        }
    }

    pub(super) fn matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        if n == 8 && k > 0 {
            // SAFETY: slice lengths are checked by the dispatch layer.
            unsafe { matmul_n8(a, b, out, m, k, |_| {}) };
            return;
        }
        if n == 4 && k > 0 {
            // SAFETY: as above.
            unsafe { matmul_n4(a, b, out, m, k) };
            return;
        }
        out.fill(0.0);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for ib in (0..m).step_by(MATMUL_BLOCK) {
            let imax = (ib + MATMUL_BLOCK).min(m);
            for kb in (0..k).step_by(MATMUL_BLOCK) {
                let kmax = (kb + MATMUL_BLOCK).min(k);
                for i in ib..imax {
                    for kk in kb..kmax {
                        // SAFETY: indices bounded by the m/k/n contract.
                        let av = unsafe { *ap.add(i * k + kk) };
                        if av == 0.0 {
                            continue;
                        }
                        // SAFETY: rows are in bounds.
                        unsafe { row_axpy(av, bp.add(kk * n), op.add(i * n), n) };
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the dispatch signature
    pub(super) fn matmul_bias_rowapply(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        row_finish: &mut dyn FnMut(&mut [f64]),
    ) {
        if n == 8 && k > 0 {
            // SAFETY: slice lengths are checked by the dispatch layer.
            unsafe {
                matmul_n8(a, b, out, m, k, |row| {
                    if let Some(bv) = bias {
                        for (rv, &biasv) in row.iter_mut().zip(bv.iter()) {
                            *rv += biasv;
                        }
                    }
                    row_finish(row);
                })
            };
            return;
        }
        matmul(a, b, out, m, k, n);
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            if let Some(bv) = bias {
                for (o, &biasv) in orow.iter_mut().zip(bv.iter()) {
                    *o += biasv;
                }
            }
            row_finish(orow);
        }
    }

    pub(super) fn matmul_tb(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        if k * n <= STACK_BT && k > 0 {
            let mut bt = [0.0f64; STACK_BT];
            for (j, brow) in b.chunks_exact(k).enumerate() {
                for (kk, &bv) in brow.iter().enumerate() {
                    bt[kk * n + j] = bv;
                }
            }
            if n == 8 {
                // SAFETY: bt holds k*8 initialized elements.
                unsafe { matmul_n8(a, &bt[..k * 8], out, m, k, |_| {}) };
                return;
            }
            let ap = a.as_ptr();
            let btp = bt.as_ptr();
            let op = out.as_mut_ptr();
            for i in 0..m {
                out[i * n..(i + 1) * n].fill(0.0);
                for kk in 0..k {
                    // SAFETY: rows are in bounds.
                    unsafe {
                        let av = *ap.add(i * k + kk);
                        row_axpy(av, btp.add(kk * n), op.add(i * n), n);
                    }
                }
            }
            return;
        }
        // Dot-product form: two f64x2 accumulators replicate the scalar
        // kernel's four-way split; reduction order (l0+l1)+(l2+l3)+tail.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc01 = vdupq_n_f64(0.0);
                let mut acc23 = vdupq_n_f64(0.0);
                let quads = k / 4 * 4;
                let mut kk = 0;
                while kk < quads {
                    // SAFETY: kk + 4 <= k.
                    unsafe {
                        let a01 = vld1q_f64(arow.as_ptr().add(kk));
                        let b01 = vld1q_f64(brow.as_ptr().add(kk));
                        let a23 = vld1q_f64(arow.as_ptr().add(kk + 2));
                        let b23 = vld1q_f64(brow.as_ptr().add(kk + 2));
                        acc01 = vaddq_f64(acc01, vmulq_f64(a01, b01));
                        acc23 = vaddq_f64(acc23, vmulq_f64(a23, b23));
                    }
                    kk += 4;
                }
                let mut tail = 0.0;
                for (&av, &bv) in arow[quads..].iter().zip(brow[quads..].iter()) {
                    tail += av * bv;
                }
                let l0 = vgetq_lane_f64::<0>(acc01);
                let l1 = vgetq_lane_f64::<1>(acc01);
                let l2 = vgetq_lane_f64::<0>(acc23);
                let l3 = vgetq_lane_f64::<1>(acc23);
                *o = (l0 + l1) + (l2 + l3) + tail;
            }
        }
    }

    pub(super) fn ta_matmul(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
        out.fill(0.0);
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let tiles = k / 4 * 4;
        for r in (0..tiles).step_by(4) {
            let at = &a[r * m..(r + 4) * m];
            for i in 0..m {
                let x0 = vdupq_n_f64(at[i]);
                let x1 = vdupq_n_f64(at[m + i]);
                let x2 = vdupq_n_f64(at[2 * m + i]);
                let x3 = vdupq_n_f64(at[3 * m + i]);
                // SAFETY: rows r..r+4 and output row i are in bounds.
                unsafe {
                    let orow = op.add(i * n);
                    let b0 = bp.add(r * n);
                    let mut j = 0;
                    while j + 2 <= n {
                        let m0 = vmulq_f64(x0, vld1q_f64(b0.add(j)));
                        let m1 = vmulq_f64(x1, vld1q_f64(b0.add(n + j)));
                        let m2 = vmulq_f64(x2, vld1q_f64(b0.add(2 * n + j)));
                        let m3 = vmulq_f64(x3, vld1q_f64(b0.add(3 * n + j)));
                        let s = vaddq_f64(vaddq_f64(vaddq_f64(m0, m1), m2), m3);
                        vst1q_f64(orow.add(j), vaddq_f64(vld1q_f64(orow.add(j)), s));
                        j += 2;
                    }
                    while j < n {
                        let s = at[i] * *b0.add(j)
                            + at[m + i] * *b0.add(n + j)
                            + at[2 * m + i] * *b0.add(2 * n + j)
                            + at[3 * m + i] * *b0.add(3 * n + j);
                        *orow.add(j) += s;
                        j += 1;
                    }
                }
            }
        }
        for r in tiles..k {
            let arow = &a[r * m..(r + 1) * m];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                // SAFETY: rows are in bounds.
                unsafe { row_axpy(av, bp.add(r * n), op.add(i * n), n) };
            }
        }
    }

    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = y.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        // SAFETY: x and y have equal length n (dispatch contract).
        unsafe {
            if alpha == 1.0 {
                let mut j = 0;
                while j + 2 <= n {
                    vst1q_f64(
                        yp.add(j),
                        vaddq_f64(vld1q_f64(yp.add(j)), vld1q_f64(xp.add(j))),
                    );
                    j += 2;
                }
                while j < n {
                    *yp.add(j) += *xp.add(j);
                    j += 1;
                }
                return;
            }
            let av = vdupq_n_f64(alpha);
            let mut j = 0;
            while j + 2 <= n {
                let s = vaddq_f64(vld1q_f64(yp.add(j)), vmulq_f64(av, vld1q_f64(xp.add(j))));
                vst1q_f64(yp.add(j), s);
                j += 2;
            }
            while j < n {
                *yp.add(j) += alpha * *xp.add(j);
                j += 1;
            }
        }
    }

    macro_rules! binary_impl {
        ($name:ident, $vop:ident, $sop:tt) => {
            pub(super) fn $name(a: &[f64], b: &[f64], out: &mut [f64]) {
                let n = out.len();
                let ap = a.as_ptr();
                let bp = b.as_ptr();
                let op = out.as_mut_ptr();
                // SAFETY: equal lengths guaranteed by the dispatch contract.
                unsafe {
                    let mut j = 0;
                    while j + 2 <= n {
                        vst1q_f64(op.add(j), $vop(vld1q_f64(ap.add(j)), vld1q_f64(bp.add(j))));
                        j += 2;
                    }
                    while j < n {
                        *op.add(j) = *ap.add(j) $sop *bp.add(j);
                        j += 1;
                    }
                }
            }
        };
    }

    binary_impl!(add, vaddq_f64, +);
    binary_impl!(sub, vsubq_f64, -);
    binary_impl!(mul, vmulq_f64, *);

    pub(super) fn scale(a: &[f64], alpha: f64, out: &mut [f64]) {
        let n = out.len();
        let ap = a.as_ptr();
        let op = out.as_mut_ptr();
        let av = vdupq_n_f64(alpha);
        // SAFETY: equal lengths guaranteed by the dispatch contract.
        unsafe {
            let mut j = 0;
            while j + 2 <= n {
                vst1q_f64(op.add(j), vmulq_f64(vld1q_f64(ap.add(j)), av));
                j += 2;
            }
            while j < n {
                *op.add(j) = *ap.add(j) * alpha;
                j += 1;
            }
        }
    }
}

/// NEON FMA kernels — the [`KernelTier::Fast`] tier on `aarch64`, mirroring
/// `avx2fma` at half the vector width: every multiply-add contracts to
/// `vfmaq_f64` (fused, one rounding). `vfmaq_f64` is part of the `aarch64`
/// baseline, so no runtime gate is needed. Same accuracy contract as the
/// AVX2 Fast kernels (module-docs ULP envelope); like the Exact NEON path,
/// this module is compile-audited on x86 containers and validated by the
/// same architecture-independent accuracy harness when run on real
/// hardware.
#[cfg(target_arch = "aarch64")]
mod neonfma {
    use super::{neon, MATMUL_BLOCK, STACK_BT};
    use std::arch::aarch64::*;

    /// `orow[j..] = fma(av, brow[j..], orow[j..])` with a fused scalar tail.
    ///
    /// # Safety
    /// `brow` and `orow` must be valid for `n` reads/writes.
    unsafe fn row_axpy(av: f64, brow: *const f64, orow: *mut f64, n: usize) {
        let avv = vdupq_n_f64(av);
        let mut j = 0;
        while j + 2 <= n {
            let o = vld1q_f64(orow.add(j));
            let bv = vld1q_f64(brow.add(j));
            vst1q_f64(orow.add(j), vfmaq_f64(o, avv, bv));
            j += 2;
        }
        while j < n {
            *orow.add(j) = av.mul_add(*brow.add(j), *orow.add(j));
            j += 1;
        }
    }

    /// Width-8 register kernel, FMA-contracted.
    ///
    /// # Safety
    /// `a` must hold `m*k` elements, `b` `k*8`, `out` `m*8`.
    unsafe fn matmul_n8(
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
        m: usize,
        k: usize,
        mut finish: impl FnMut(&mut [f64; 8]),
    ) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..m {
            let ar = ap.add(i * k);
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let mut acc2 = vdupq_n_f64(0.0);
            let mut acc3 = vdupq_n_f64(0.0);
            for kk in 0..k {
                let av = vdupq_n_f64(*ar.add(kk));
                acc0 = vfmaq_f64(acc0, av, vld1q_f64(bp.add(kk * 8)));
                acc1 = vfmaq_f64(acc1, av, vld1q_f64(bp.add(kk * 8 + 2)));
                acc2 = vfmaq_f64(acc2, av, vld1q_f64(bp.add(kk * 8 + 4)));
                acc3 = vfmaq_f64(acc3, av, vld1q_f64(bp.add(kk * 8 + 6)));
            }
            let mut row = [0.0f64; 8];
            vst1q_f64(row.as_mut_ptr(), acc0);
            vst1q_f64(row.as_mut_ptr().add(2), acc1);
            vst1q_f64(row.as_mut_ptr().add(4), acc2);
            vst1q_f64(row.as_mut_ptr().add(6), acc3);
            finish(&mut row);
            out[i * 8..i * 8 + 8].copy_from_slice(&row);
        }
    }

    /// Width-4 register kernel, FMA-contracted (`av == 0.0` skip preserved).
    ///
    /// # Safety
    /// `a` must hold `m*k` elements, `b` `k*4`, `out` `m*4`.
    unsafe fn matmul_n4(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize) {
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for i in 0..m {
            let ar = ap.add(i * k);
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            for kk in 0..k {
                let av = *ar.add(kk);
                if av == 0.0 {
                    continue;
                }
                let avv = vdupq_n_f64(av);
                acc0 = vfmaq_f64(acc0, avv, vld1q_f64(bp.add(kk * 4)));
                acc1 = vfmaq_f64(acc1, avv, vld1q_f64(bp.add(kk * 4 + 2)));
            }
            vst1q_f64(op.add(i * 4), acc0);
            vst1q_f64(op.add(i * 4 + 2), acc1);
        }
    }

    pub(super) fn matmul(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        if n == 8 && k > 0 {
            // SAFETY: slice lengths are checked by the dispatch layer.
            unsafe { matmul_n8(a, b, out, m, k, |_| {}) };
            return;
        }
        if n == 4 && k > 0 {
            // SAFETY: as above.
            unsafe { matmul_n4(a, b, out, m, k) };
            return;
        }
        out.fill(0.0);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        for ib in (0..m).step_by(MATMUL_BLOCK) {
            let imax = (ib + MATMUL_BLOCK).min(m);
            for kb in (0..k).step_by(MATMUL_BLOCK) {
                let kmax = (kb + MATMUL_BLOCK).min(k);
                for i in ib..imax {
                    for kk in kb..kmax {
                        // SAFETY: indices bounded by the m/k/n contract.
                        let av = unsafe { *ap.add(i * k + kk) };
                        if av == 0.0 {
                            continue;
                        }
                        // SAFETY: rows are in bounds.
                        unsafe { row_axpy(av, bp.add(kk * n), op.add(i * n), n) };
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the dispatch signature
    pub(super) fn matmul_bias_rowapply(
        a: &[f64],
        b: &[f64],
        bias: Option<&[f64]>,
        out: &mut [f64],
        m: usize,
        k: usize,
        n: usize,
        row_finish: &mut dyn FnMut(&mut [f64]),
    ) {
        if n == 8 && k > 0 {
            // SAFETY: slice lengths are checked by the dispatch layer.
            unsafe {
                matmul_n8(a, b, out, m, k, |row| {
                    if let Some(bv) = bias {
                        for (rv, &biasv) in row.iter_mut().zip(bv.iter()) {
                            *rv += biasv;
                        }
                    }
                    row_finish(row);
                })
            };
            return;
        }
        matmul(a, b, out, m, k, n);
        for i in 0..m {
            let orow = &mut out[i * n..(i + 1) * n];
            if let Some(bv) = bias {
                for (o, &biasv) in orow.iter_mut().zip(bv.iter()) {
                    *o += biasv;
                }
            }
            row_finish(orow);
        }
    }

    pub(super) fn matmul_tb(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
        if k * n <= STACK_BT && k > 0 {
            let mut bt = [0.0f64; STACK_BT];
            for (j, brow) in b.chunks_exact(k).enumerate() {
                for (kk, &bv) in brow.iter().enumerate() {
                    bt[kk * n + j] = bv;
                }
            }
            if n == 8 {
                // SAFETY: bt holds k*8 initialized elements.
                unsafe { matmul_n8(a, &bt[..k * 8], out, m, k, |_| {}) };
                return;
            }
            let ap = a.as_ptr();
            let btp = bt.as_ptr();
            let op = out.as_mut_ptr();
            for i in 0..m {
                out[i * n..(i + 1) * n].fill(0.0);
                for kk in 0..k {
                    // SAFETY: rows are in bounds.
                    unsafe {
                        let av = *ap.add(i * k + kk);
                        row_axpy(av, btp.add(kk * n), op.add(i * n), n);
                    }
                }
            }
            return;
        }
        // Dot-product form with fused accumulators; lane reduction keeps
        // the Exact kernel's (l0+l1)+(l2+l3)+tail order.
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc01 = vdupq_n_f64(0.0);
                let mut acc23 = vdupq_n_f64(0.0);
                let quads = k / 4 * 4;
                let mut kk = 0;
                while kk < quads {
                    // SAFETY: kk + 4 <= k.
                    unsafe {
                        let a01 = vld1q_f64(arow.as_ptr().add(kk));
                        let b01 = vld1q_f64(brow.as_ptr().add(kk));
                        let a23 = vld1q_f64(arow.as_ptr().add(kk + 2));
                        let b23 = vld1q_f64(brow.as_ptr().add(kk + 2));
                        acc01 = vfmaq_f64(acc01, a01, b01);
                        acc23 = vfmaq_f64(acc23, a23, b23);
                    }
                    kk += 4;
                }
                let mut tail = 0.0;
                for (&av, &bv) in arow[quads..].iter().zip(brow[quads..].iter()) {
                    tail = av.mul_add(bv, tail);
                }
                let l0 = vgetq_lane_f64::<0>(acc01);
                let l1 = vgetq_lane_f64::<1>(acc01);
                let l2 = vgetq_lane_f64::<0>(acc23);
                let l3 = vgetq_lane_f64::<1>(acc23);
                *o = (l0 + l1) + (l2 + l3) + tail;
            }
        }
    }

    pub(super) fn ta_matmul(a: &[f64], b: &[f64], out: &mut [f64], k: usize, m: usize, n: usize) {
        out.fill(0.0);
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let tiles = k / 4 * 4;
        for r in (0..tiles).step_by(4) {
            let at = &a[r * m..(r + 4) * m];
            for i in 0..m {
                let x0 = vdupq_n_f64(at[i]);
                let x1 = vdupq_n_f64(at[m + i]);
                let x2 = vdupq_n_f64(at[2 * m + i]);
                let x3 = vdupq_n_f64(at[3 * m + i]);
                // SAFETY: rows r..r+4 and output row i are in bounds.
                unsafe {
                    let orow = op.add(i * n);
                    let b0 = bp.add(r * n);
                    let mut j = 0;
                    while j + 2 <= n {
                        // Fused chain into the accumulator, as in avx2fma.
                        let o = vld1q_f64(orow.add(j));
                        let s = vfmaq_f64(
                            vfmaq_f64(
                                vfmaq_f64(
                                    vfmaq_f64(o, x3, vld1q_f64(b0.add(3 * n + j))),
                                    x2,
                                    vld1q_f64(b0.add(2 * n + j)),
                                ),
                                x1,
                                vld1q_f64(b0.add(n + j)),
                            ),
                            x0,
                            vld1q_f64(b0.add(j)),
                        );
                        vst1q_f64(orow.add(j), s);
                        j += 2;
                    }
                    while j < n {
                        let s = at[i].mul_add(
                            *b0.add(j),
                            at[m + i].mul_add(
                                *b0.add(n + j),
                                at[2 * m + i].mul_add(
                                    *b0.add(2 * n + j),
                                    at[3 * m + i].mul_add(*b0.add(3 * n + j), *orow.add(j)),
                                ),
                            ),
                        );
                        *orow.add(j) = s;
                        j += 1;
                    }
                }
            }
        }
        for r in tiles..k {
            let arow = &a[r * m..(r + 1) * m];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                // SAFETY: rows are in bounds.
                unsafe { row_axpy(av, bp.add(r * n), op.add(i * n), n) };
            }
        }
    }

    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        if alpha == 1.0 {
            // Bit-compatibility with a plain add even on the Fast tier.
            neon::axpy(1.0, x, y);
            return;
        }
        let n = y.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let av = vdupq_n_f64(alpha);
        // SAFETY: x and y have equal length n (dispatch contract).
        unsafe {
            let mut j = 0;
            while j + 2 <= n {
                let s = vfmaq_f64(vld1q_f64(yp.add(j)), av, vld1q_f64(xp.add(j)));
                vst1q_f64(yp.add(j), s);
                j += 2;
            }
            while j < n {
                *yp.add(j) = alpha.mul_add(*xp.add(j), *yp.add(j));
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert!(matches!(Backend::Simd.name(), "avx2" | "neon" | "simd"));
        assert!(matches!(
            Backend::Fma.name(),
            "avx2-fma" | "neon-fma" | "fma"
        ));
    }

    #[test]
    fn backend_tiers() {
        assert_eq!(Backend::Scalar.tier(), KernelTier::Exact);
        assert_eq!(Backend::Simd.tier(), KernelTier::Exact);
        assert_eq!(Backend::Fma.tier(), KernelTier::Fast);
        assert_eq!(KernelTier::Exact.name(), "exact");
        assert_eq!(KernelTier::Fast.name(), "fast");
    }

    #[test]
    fn active_is_stable_and_consistent() {
        let first = active_backend();
        for _ in 0..4 {
            assert_eq!(active_backend(), first);
        }
        assert_eq!(backend_name(), first.name());
        assert_eq!(active_tier(), first.tier());
    }

    #[test]
    fn scalar_table_reports_scalar() {
        assert_eq!(scalar().backend(), Backend::Scalar);
        assert_eq!(scalar().tier(), KernelTier::Exact);
        if let Some(table) = simd() {
            assert_eq!(table.backend(), Backend::Simd);
            assert_eq!(table.tier(), KernelTier::Exact);
        }
        if let Some(table) = fma() {
            assert_eq!(table.backend(), Backend::Fma);
            assert_eq!(table.tier(), KernelTier::Fast);
        }
    }

    #[test]
    fn resolution_is_stable_and_matches_active() {
        let res = resolution();
        assert_eq!(res.backend, active_backend());
        assert_eq!(res.resolved_name(), backend_name());
        for _ in 0..4 {
            assert_eq!(resolution(), res);
        }
        // Degradation can only be reported for an explicit request the
        // hardware could not honor; Auto always resolves cleanly.
        if res.requested == TierRequest::Auto {
            assert!(!res.degraded);
        }
        // A late programmatic request cannot change a standing resolution.
        let standing = match request_tier(TierRequest::Scalar) {
            Ok(r) | Err(r) => r,
        };
        assert_eq!(standing, resolution());
    }

    #[test]
    fn degradation_warning_reaches_the_event_log() {
        let log = bellamy_telemetry::events();
        let before = log.total();
        note_degradation(TierRequest::Fma, RequestSource::Env, Backend::Scalar);
        assert!(log.total() > before);
        let event = log
            .recent()
            .into_iter()
            .rev()
            .find(|e| e.kind == bellamy_telemetry::event_kind::KERNEL_DEGRADED)
            .expect("degradation event recorded");
        assert!(event.detail.contains("`fma`"), "detail: {}", event.detail);
        assert!(event.detail.contains("degraded to `scalar`"));
        assert!(event.detail.contains("via BELLAMY_KERNEL"));
    }

    #[test]
    fn tier_request_names() {
        assert_eq!(TierRequest::Auto.name(), "auto");
        assert_eq!(TierRequest::Scalar.name(), "scalar");
        assert_eq!(TierRequest::Simd.name(), "simd");
        assert_eq!(TierRequest::Fma.name(), "fma");
    }
}
