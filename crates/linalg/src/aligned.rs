//! 32-byte-aligned `f64` storage for SIMD-friendly matrix backing.
//!
//! The [`kernels`](crate::kernels) module's AVX2 path moves four `f64` lanes
//! per instruction; NEON moves two. Unaligned 256-bit loads are cheap on
//! modern cores but still split when they straddle a cache line, so every
//! buffer that can back a [`Matrix`](crate::Matrix) — and every store
//! recycled through [`BufferPool`](crate::BufferPool) — is allocated on a
//! 32-byte boundary. The guarantee is structural: [`AlignedBuf`] stores its
//! payload in 32-byte-aligned 4-lane chunks, so the start of the `f64` data
//! is 32-byte-aligned for *every* buffer, pooled or fresh, for its whole
//! lifetime (Rust allocations honour the type's alignment).
//!
//! `AlignedBuf` dereferences to `[f64]`, so all slice-level code is oblivious
//! to the container; only construction and pool round-trips name the type.

use serde::{Deserialize, Serialize, Value};
use std::ops::{Deref, DerefMut};

/// One 32-byte-aligned group of four lanes. The `align(32)` on this type is
/// what aligns the whole buffer: `Vec<Chunk>` allocations start on a 32-byte
/// boundary.
#[repr(C, align(32))]
#[derive(Clone, Copy, Debug)]
struct Chunk([f64; 4]);

const ZERO_CHUNK: Chunk = Chunk([0.0; 4]);

/// A growable `f64` buffer whose data pointer is always 32-byte aligned.
///
/// Lengths need not be multiples of four: the buffer rounds its backing
/// storage up to whole chunks and exposes exactly `len` elements. Capacity
/// is likewise reported in elements (always a multiple of four).
#[derive(Clone, Debug, Default)]
pub struct AlignedBuf {
    chunks: Vec<Chunk>,
    len: usize,
}

impl AlignedBuf {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        Self {
            chunks: vec![ZERO_CHUNK; len.div_ceil(4)],
            len,
        }
    }

    /// An empty buffer with room for at least `capacity` elements.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            chunks: Vec::with_capacity(capacity.div_ceil(4)),
            len: 0,
        }
    }

    /// Copies a slice into freshly aligned storage.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut buf = Self::zeroed(values.len());
        buf.as_mut_slice().copy_from_slice(values);
        buf
    }

    /// Number of exposed elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are exposed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in elements (a multiple of four).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.chunks.capacity() * 4
    }

    /// The elements as a slice. The pointer is 32-byte aligned.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: `chunks` holds at least `len.div_ceil(4)` fully initialized
        // chunks of plain `f64`s laid out contiguously (repr(C), size 32),
        // so the first `len` lanes are initialized `f64`s.
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast::<f64>(), self.len) }
    }

    /// The elements as a mutable slice. The pointer is 32-byte aligned.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: as in `as_slice`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f64>(), self.len) }
    }

    /// Copies the elements into a plain `Vec<f64>`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_slice().to_vec()
    }

    /// Reshapes the buffer to `len` zero-filled elements, reusing the
    /// existing allocation whenever `capacity() >= len` (the pool-recycle
    /// path: no allocator traffic within capacity).
    pub fn reset_zeroed(&mut self, len: usize) {
        self.chunks.clear();
        self.chunks.resize(len.div_ceil(4), ZERO_CHUNK);
        self.len = len;
    }
}

impl Deref for AlignedBuf {
    type Target = [f64];

    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<&[f64]> for AlignedBuf {
    fn from(values: &[f64]) -> Self {
        Self::from_slice(values)
    }
}

impl From<Vec<f64>> for AlignedBuf {
    fn from(values: Vec<f64>) -> Self {
        Self::from_slice(&values)
    }
}

impl Serialize for AlignedBuf {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl Deserialize for AlignedBuf {
    fn from_json_value(v: &Value) -> Result<Self, String> {
        Vec::<f64>::from_json_value(v).map(|values| Self::from_slice(&values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_pointer_is_32_byte_aligned() {
        for len in [0usize, 1, 3, 4, 5, 8, 17, 64, 1000] {
            let buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 32, 0, "len {len}");
            assert!(buf.capacity() >= len);
        }
    }

    #[test]
    fn alignment_survives_pool_style_reshaping() {
        let mut buf = AlignedBuf::zeroed(64);
        let ptr = buf.as_slice().as_ptr();
        for len in [3usize, 64, 1, 17, 0, 33] {
            buf.reset_zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 32, 0);
            assert_eq!(
                buf.as_slice().as_ptr(),
                ptr,
                "within capacity the allocation must be reused"
            );
            assert!(buf.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn reset_zeroed_clears_stale_values() {
        let mut buf = AlignedBuf::from_slice(&[7.0; 10]);
        buf.reset_zeroed(6);
        assert!(buf.as_slice().iter().all(|&v| v == 0.0));
        // Growing back within the original chunk count must also be zeroed.
        buf.reset_zeroed(10);
        assert!(buf.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn ragged_lengths_round_trip() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let buf = AlignedBuf::from_slice(&values);
        assert_eq!(buf.as_slice(), &values);
        assert_eq!(buf.to_vec(), values.to_vec());
        assert_eq!(buf.clone(), buf);
    }

    #[test]
    fn serde_round_trip() {
        let buf = AlignedBuf::from_slice(&[1.5, -2.0, 0.0]);
        let back = AlignedBuf::from_json_value(&buf.to_json_value()).unwrap();
        assert_eq!(back, buf);
        assert_eq!(back.as_slice().as_ptr() as usize % 32, 0);
    }
}
