//! Dense linear algebra for the Bellamy reproduction.
//!
//! This crate provides the numeric substrate that the rest of the workspace is
//! built on: a row-major dense [`Matrix`] of `f64` with the kernels needed by
//! the autodiff engine (`bellamy-autograd`), the neural-network toolkit
//! (`bellamy-nn`), and the baseline models (`bellamy-baselines`):
//!
//! - elementwise and broadcast arithmetic, in allocating *and*
//!   output-parameter (`*_into`) forms — the `*_into` kernels are
//!   bit-identical to their allocating counterparts and back the
//!   zero-allocation training hot path,
//! - cache-blocked matrix multiplication (plus the transposed variants used by
//!   back-propagation), also with `*_into` variants,
//! - a [`pool::BufferPool`] recycling `Vec<f64>` backing stores by capacity,
//!   so steady-state training never touches the global allocator (see the
//!   [`pool`] module docs for the take/use/put lifecycle),
//! - Householder QR decomposition and least-squares solving,
//! - a Lawson–Hanson non-negative least squares (NNLS) solver, the same
//!   algorithm scipy's `nnls` implements, which Ernest's parametric runtime
//!   model is fitted with.
//!
//! Everything is implemented from scratch on `std` (no BLAS), with `f64`
//! precision throughout — the matrices in this project are small (at most a few
//! hundred rows), so numerical robustness matters more than GEMM throughput.

pub mod matrix;
pub mod nnls;
pub mod pool;
pub mod qr;
pub mod stats;

pub use matrix::Matrix;
pub use nnls::{nnls, NnlsError, NnlsSolution};
pub use pool::BufferPool;
pub use qr::{lstsq, QrDecomposition};
