//! Dense linear algebra for the Bellamy reproduction.
//!
//! This crate provides the numeric substrate that the rest of the workspace is
//! built on: a row-major dense [`Matrix`] of `f64` with the kernels needed by
//! the autodiff engine (`bellamy-autograd`), the neural-network toolkit
//! (`bellamy-nn`), and the baseline models (`bellamy-baselines`):
//!
//! - elementwise and broadcast arithmetic, in allocating *and*
//!   output-parameter (`*_into`) forms — the `*_into` kernels are
//!   bit-identical to their allocating counterparts and back the
//!   zero-allocation training hot path,
//! - cache-blocked matrix multiplication (plus the transposed variants used by
//!   back-propagation), also with `*_into` variants,
//! - a [`pool::BufferPool`] recycling 32-byte-aligned backing stores by
//!   capacity, so steady-state training never touches the global allocator
//!   (see the [`pool`] module docs for the take/use/put lifecycle),
//! - Householder QR decomposition and least-squares solving,
//! - a Lawson–Hanson non-negative least squares (NNLS) solver, the same
//!   algorithm scipy's `nnls` implements, which Ernest's parametric runtime
//!   model is fitted with.
//!
//! Everything is implemented from scratch on `std` (no BLAS), with `f64`
//! precision throughout — the matrices in this project are small (at most a few
//! hundred rows), so numerical robustness matters more than GEMM throughput.
//!
//! # Kernel dispatch
//!
//! The hot kernels run through the [`kernels`] dispatch table: a scalar set
//! that is always available, and an AVX2 (`x86_64`) / NEON (`aarch64`)
//! `f64x4`/`f64x2` set selected **once per process** via runtime CPU feature
//! detection, overridable with `BELLAMY_KERNEL={auto,scalar,simd,fma}`. The
//! default (**Exact**) tier's backends are bit-identical — no FMA
//! contraction, same per-element accumulation order — so the choice never
//! changes results, only throughput. The opt-in **Fast** tier (`fma`)
//! contracts multiply-adds into fused operations and instead promises a
//! documented ULP envelope, measured with the [`ulp`] utilities. See the
//! [`kernels`] module docs for the tier contract table.
//!
//! # Alignment contract
//!
//! Every owned buffer that backs a [`Matrix`] — freshly allocated or
//! recycled through a [`BufferPool`] — is an [`aligned::AlignedBuf`], whose
//! data pointer is **always 32-byte aligned** (one AVX2 vector, two NEON
//! vectors). The guarantee is structural (storage is composed of
//! `align(32)` chunks), so it holds for ragged lengths and across pool
//! round-trips.
//!
//! # Storage variants
//!
//! A [`Matrix`] may alternatively *borrow* its elements from a read-only
//! file mapping ([`mmap::Mmap`], wrapped by [`storage::Storage`]) — the
//! zero-copy checkpoint path used by the model hub. Mapped matrices keep
//! the same alignment guarantee (page-aligned map base + 64-byte-aligned
//! file offsets), serve reads bit-identically to owned matrices, panic on
//! mutation, and materialize into owned storage on `clone()`.

pub mod aligned;
pub mod kernels;
pub mod matrix;
pub mod mmap;
pub mod nnls;
pub mod pool;
pub mod qr;
pub mod stats;
pub mod storage;
pub mod ulp;

pub use aligned::AlignedBuf;
pub use matrix::Matrix;
pub use mmap::{Advice, Mmap};
pub use nnls::{nnls, NnlsError, NnlsSolution};
pub use pool::BufferPool;
pub use qr::{lstsq, QrDecomposition};
pub use storage::Storage;
pub use ulp::{ulp_distance, within_envelope};
