//! A persistent fan-out primitive over the worker pool.
//!
//! [`WorkTeam::run`] executes `f(0..n)` across a fixed set of workers, like
//! a scoped parallel-for — but unlike spawning scoped threads (or boxing a
//! job per call), a team parks **long-lived jobs** on the [`ThreadPool`]
//! once at construction and signals them per step through a generation
//! counter and two condvars. A steady-state `run` call therefore performs
//! no heap allocation, which the zero-allocation training step in
//! `bellamy-core` depends on.
//!
//! The calling thread participates in the index claim loop, so
//! `WorkTeam::new(1)` degenerates to a plain sequential loop with no pool
//! at all.

use crate::pool::ThreadPool;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// A type-erased `Fn(usize)` valid for the duration of one `run` call.
#[derive(Clone, Copy)]
struct Task {
    ctx: *const (),
    call: unsafe fn(*const (), usize),
    total: usize,
}

// SAFETY: the pointer is only dereferenced through `call` while the owning
// `run` invocation is blocked waiting for completion, and the closure it
// points to is `Sync` (enforced by `run`'s bound).
unsafe impl Send for Task {}

#[derive(Default)]
struct TeamState {
    generation: u64,
    task: Option<Task>,
    /// Next unclaimed index of the current task.
    next: usize,
    /// Indices claimed but not yet finished.
    in_flight: usize,
    /// Set when a task closure panicked on a worker; rethrown by `run`.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<TeamState>,
    work: Condvar,
    done: Condvar,
}

/// A fixed-size team executing indexed fan-outs; see the module docs.
pub struct WorkTeam {
    shared: Arc<Shared>,
    /// Pool hosting the `threads - 1` helper jobs (`None` for one thread).
    /// Held so its `Drop` joins the helpers after shutdown is signalled.
    _pool: Option<ThreadPool>,
    threads: usize,
}

impl WorkTeam {
    /// Creates a team of `threads` workers (the calling thread counts as
    /// one; `threads - 1` helpers park on a dedicated pool).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(TeamState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let pool = (threads > 1).then(|| {
            let pool = ThreadPool::new(threads - 1);
            for _ in 0..threads - 1 {
                let shared = Arc::clone(&shared);
                pool.execute(move || helper_loop(&shared));
            }
            pool
        });
        Self {
            shared,
            _pool: pool,
            threads,
        }
    }

    /// Number of workers (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..n`, each index exactly once, spread
    /// over the team. Blocks until all calls complete; allocation-free once
    /// the team is constructed.
    ///
    /// # Panics
    /// Panics if `f` panicked on any worker (the panic is contained on the
    /// worker and rethrown here, so the team stays usable).
    pub fn run<F: Fn(usize) + Sync>(&self, n: usize, f: F) {
        if n == 0 {
            return;
        }
        if self._pool.is_none() || n == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        unsafe fn call_erased<F: Fn(usize)>(ctx: *const (), i: usize) {
            // SAFETY: `ctx` is the `&f` published below; `run` does not
            // return until every claimed call finished.
            unsafe { (*(ctx as *const F))(i) }
        }
        {
            let mut state = self.shared.state.lock();
            debug_assert!(state.task.is_none(), "run is not reentrant");
            state.task = Some(Task {
                ctx: &f as *const F as *const (),
                call: call_erased::<F>,
                total: n,
            });
            state.next = 0;
            state.in_flight = 0;
            state.generation += 1;
        }
        self.shared.work.notify_all();

        // The calling thread claims indices too.
        work_current_task(&self.shared);

        let mut state = self.shared.state.lock();
        while state.next < n || state.in_flight > 0 {
            self.shared.done.wait(&mut state);
        }
        state.task = None;
        let panicked = std::mem::take(&mut state.panicked);
        drop(state);
        if panicked {
            panic!("a WorkTeam task panicked on a worker thread");
        }
    }
}

impl Drop for WorkTeam {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        // `self._pool` drops next: its channel closes and it joins the
        // helpers, which exit `helper_loop` on the shutdown flag.
    }
}

/// Claims and executes indices of the current task until it is exhausted.
fn work_current_task(shared: &Shared) {
    loop {
        let (task, i) = {
            let mut state = shared.state.lock();
            let Some(task) = state.task else { return };
            if state.next >= task.total {
                return;
            }
            let i = state.next;
            state.next += 1;
            state.in_flight += 1;
            (task, i)
        };
        // Contain panics so one bad shard cannot wedge the whole team.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
            (task.call)(task.ctx, i)
        }));
        let mut state = shared.state.lock();
        state.in_flight -= 1;
        if outcome.is_err() {
            state.panicked = true;
        }
        let finished = state.next >= task.total && state.in_flight == 0;
        drop(state);
        if finished {
            shared.done.notify_all();
        }
    }
}

/// The persistent helper job: sleep until a new generation is published,
/// help drain it, repeat until shutdown.
fn helper_loop(shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        {
            let mut state = shared.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                let claimable = state.task.as_ref().is_some_and(|t| state.next < t.total);
                if claimable && state.generation > seen_generation {
                    seen_generation = state.generation;
                    break;
                }
                shared.work.wait(&mut state);
            }
        }
        work_current_task(shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let team = WorkTeam::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        for _round in 0..50 {
            team.run(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 50));
    }

    #[test]
    fn single_thread_runs_inline() {
        let team = WorkTeam::new(1);
        assert_eq!(team.threads(), 1);
        let sum = AtomicUsize::new(0);
        team.run(10, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn team_survives_a_panicking_task() {
        let team = WorkTeam::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            team.run(8, |i| {
                if i == 3 {
                    panic!("shard failure");
                }
            });
        }));
        assert!(result.is_err(), "panic must be rethrown to the caller");
        // The team keeps working afterwards.
        let count = AtomicUsize::new(0);
        team.run(16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn zero_items_is_a_noop() {
        let team = WorkTeam::new(2);
        team.run(0, |_| panic!("must not be called"));
    }

    #[test]
    fn mutable_sharding_through_cells() {
        // The intended usage pattern: disjoint &mut access via claimed
        // indices.
        use std::cell::UnsafeCell;
        struct Cells(Vec<UnsafeCell<u64>>);
        unsafe impl Sync for Cells {}
        let cells = Cells((0..32).map(|_| UnsafeCell::new(0)).collect());
        let team = WorkTeam::new(4);
        for _ in 0..10 {
            // Capture the Sync wrapper itself, not the non-Sync field path.
            let cells = &cells;
            team.run(32, move |i| {
                // SAFETY: each index is claimed by exactly one worker.
                unsafe { *cells.0[i].get() += i as u64 };
            });
        }
        for (i, c) in cells.0.iter().enumerate() {
            assert_eq!(unsafe { *c.get() }, 10 * i as u64);
        }
    }
}
