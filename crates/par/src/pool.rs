//! A long-lived worker pool over a crossbeam channel.
//!
//! [`crate::par_map`] covers the regular fork-join patterns; this pool
//! serves irregular ones — the hyperparameter search spawns trials of very
//! different durations while the main thread aggregates results as they
//! arrive.

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Tracks in-flight jobs so [`ThreadPool::wait_idle`] can block.
struct PendingCount {
    count: Mutex<usize>,
    idle: Condvar,
}

/// Decrements the pending count on drop — including during unwinding, so a
/// panicking job still counts as finished.
struct PendingGuard<'a>(&'a PendingCount);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let mut count = self.0.count.lock();
        *count -= 1;
        if *count == 0 {
            self.0.idle.notify_all();
        }
    }
}

/// A fixed-size worker pool.
///
/// Jobs are `'static` closures; results should travel back over channels or
/// `Arc<Mutex<...>>` owned by the caller. Dropping the pool signals shutdown
/// and joins every worker (outstanding jobs finish first).
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    pending: Arc<PendingCount>,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        Self::named("bellamy-worker", threads)
    }

    /// Spawns a pool whose worker threads are named `<name>-<i>` — the name
    /// shows up in debuggers and panic messages, which matters for
    /// long-lived service threads (the serving loops in `bellamy-core`).
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn named(name: &str, threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least one worker");
        let (sender, receiver) = unbounded::<Job>();
        let pending = Arc::new(PendingCount {
            count: Mutex::new(0),
            idle: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let receiver = receiver.clone();
                let pending = Arc::clone(&pending);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Ok(job) = receiver.recv() {
                            // The guard decrements even when the job panics;
                            // without it a panicking job would leave the
                            // pending count stuck and deadlock `wait_idle`
                            // forever.
                            let _guard = PendingGuard(&pending);
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            pending,
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        {
            let mut count = self.pending.count.lock();
            *count += 1;
        }
        self.sender
            .as_ref()
            .expect("pool alive while sender exists")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Blocks until every enqueued job has finished.
    pub fn wait_idle(&self) {
        let mut count = self.pending.count.lock();
        while *count > 0 {
            self.pending.idle.wait(&mut count);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Closing the channel lets workers drain and exit.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_idle_blocks_until_done() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                std::thread::sleep(std::time::Duration::from_millis(3));
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn drop_drains_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..32 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // No explicit wait: Drop must join after the queue drains.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn results_via_channel() {
        let pool = ThreadPool::new(3);
        let (tx, rx) = crossbeam::channel::unbounded();
        for i in 0..10u32 {
            let tx = tx.clone();
            pool.execute(move || tx.send(i * 2).unwrap());
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reusable_across_batches() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _batch in 0..3 {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 30);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn named_pool_names_its_workers() {
        let pool = ThreadPool::named("svc-test", 2);
        let (tx, rx) = crossbeam::channel::unbounded();
        for _ in 0..2 {
            let tx = tx.clone();
            pool.execute(move || {
                tx.send(std::thread::current().name().map(str::to_string))
                    .unwrap();
            });
        }
        pool.wait_idle();
        drop(tx);
        for name in rx.iter() {
            let name = name.expect("worker threads are named");
            assert!(name.starts_with("svc-test-"), "unexpected name {name}");
        }
    }

    #[test]
    fn panicking_job_does_not_deadlock_wait_idle() {
        // Regression: a panicking job used to kill its worker without
        // decrementing the pending count, wedging wait_idle forever.
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..16 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                if i % 4 == 0 {
                    panic!("job {i} failed");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 12);
        // Workers survive the panics and keep serving jobs.
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(100, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 112);
    }
}
