//! Minimal parallel runtime for the evaluation harness.
//!
//! The experiments fan out over thousands of independent cross-validation
//! splits, contexts, and hyperparameter trials. The offline dependency set
//! provides `crossbeam` and `parking_lot` but not `rayon`, so this crate
//! implements the small subset of Rayon's API shape the workspace needs,
//! following the data-parallel idioms of the guides:
//!
//! - [`par_map`] / [`par_map_with_threads`] — order-preserving parallel map
//!   over a slice with atomic work claiming (no per-item locking),
//! - [`par_for_each_mut`] — parallel in-place mutation of disjoint elements,
//! - [`ThreadPool`] — a long-lived pool for irregular task graphs,
//! - [`WorkTeam`] — a persistent, allocation-free fan-out over pool workers
//!   for hot loops that fan out every step (the data-parallel minibatch
//!   sharding in `bellamy-core`).
//!
//! The map/for-each helpers run on scoped threads: no `'static` bounds,
//! data-race freedom enforced by `Sync` bounds, panics propagate to the
//! caller.

pub mod pool;
pub mod team;

pub use pool::ThreadPool;
pub use team::WorkTeam;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default parallelism: the machine's available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` in parallel, preserving order, with
/// [`default_threads`] workers.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_with_threads(items, default_threads(), f)
}

/// Maps `f` over `items` in parallel with an explicit worker count.
///
/// Work is claimed item-by-item through an atomic cursor, so heavily skewed
/// per-item costs (fine-tuning runs that early-stop at wildly different
/// epochs) still balance well.
pub fn par_map_with_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut results: Vec<Option<U>> = (0..n).map(|_| None).collect();
    // Hand each worker a disjoint view of the results: we split the result
    // vector into per-slot cells by using a Vec of parking_lot mutexes-free
    // approach — instead, collect (index, value) pairs per worker and merge.
    let collected: Vec<Vec<(usize, U)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    for batch in collected {
        for (i, v) in batch {
            results[i] = Some(v);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every index visited exactly once"))
        .collect()
}

/// Runs `f` on every element of `items` in parallel, mutating in place.
///
/// Elements are handed out in contiguous chunks, one chunk per worker.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let threads = threads.clamp(1, n);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for piece in items.chunks_mut(chunk) {
            s.spawn(|| {
                for item in piece {
                    f(item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_matches_sequential() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = par_map_with_threads(&items, threads, |x| x * x);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_preserves_order_under_skew() {
        // Make early items much slower; order must still hold.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_with_threads(&items, 8, |&i| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(&Vec::<i32>::new(), |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[41], |x| x + 1), vec![42]);
    }

    #[test]
    fn each_item_visited_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        let _ = par_map_with_threads(&items, 7, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..16).collect();
        let _ = par_map_with_threads(&items, 4, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn for_each_mut_updates_all() {
        let mut items: Vec<u64> = (0..257).collect();
        par_for_each_mut(&mut items, 4, |x| *x += 1);
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn for_each_mut_empty_and_oversubscribed() {
        let mut empty: Vec<u8> = vec![];
        par_for_each_mut(&mut empty, 8, |_| {});
        let mut tiny = vec![1u8, 2];
        par_for_each_mut(&mut tiny, 99, |x| *x *= 2);
        assert_eq!(tiny, vec![2, 4]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
