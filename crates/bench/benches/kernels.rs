//! Micro benchmarks of the numeric substrate: matmul kernels, QR, NNLS, and
//! the property encoders. These are the inner loops behind every figure.

use bellamy_encoding::{binarize, HashingVectorizer, PropertyEncoder, PropertyValue};
use bellamy_linalg::{lstsq, nnls, Matrix, QrDecomposition};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[16usize, 64, 128] {
        let a = deterministic_matrix(n, n, 1);
        let b = deterministic_matrix(n, n, 2);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)))
        });
    }
    // The backprop kernels at the Bellamy layer shapes (batch 64).
    let x = deterministic_matrix(64, 40, 3);
    let w = deterministic_matrix(40, 8, 4);
    let dy = deterministic_matrix(64, 8, 5);
    group.bench_function("layer_forward_64x40x8", |b| {
        b.iter(|| black_box(x.matmul(&w)))
    });
    group.bench_function("layer_dw_xT_dy", |b| {
        b.iter(|| black_box(x.transpose_a_matmul(&dy)))
    });
    group.bench_function("layer_dx_dy_wT", |b| {
        b.iter(|| black_box(dy.matmul_transpose_b(&w)))
    });
    group.finish();
}

fn bench_qr_and_nnls(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");
    // Ernest's design matrix shape: 6 scale-outs x 4 features (Fig. 5 inner
    // loop for the NNLS baseline).
    let scale_outs = [2.0f64, 4.0, 6.0, 8.0, 10.0, 12.0];
    let a = Matrix::from_fn(6, 4, |i, j| {
        let x: f64 = scale_outs[i];
        [1.0, 1.0 / x, x.ln(), x][j]
    });
    let b: Vec<f64> = scale_outs
        .iter()
        .map(|&x| 30.0 + 400.0 / x + 5.0 * x.ln() + 2.0 * x)
        .collect();
    group.bench_function("nnls_ernest_6x4", |bench| {
        bench.iter(|| black_box(nnls(&a, &b).expect("solvable")))
    });
    group.bench_function("qr_ernest_6x4", |bench| {
        bench.iter(|| black_box(QrDecomposition::new(&a)))
    });
    group.bench_function("lstsq_ernest_6x4", |bench| {
        bench.iter(|| black_box(lstsq(&a, &b)))
    });

    let big = deterministic_matrix(100, 12, 7);
    let rhs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
    group.bench_function("nnls_100x12", |bench| {
        bench.iter(|| black_box(nnls(&big, &rhs).expect("solvable")))
    });
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding");
    let hasher = HashingVectorizer::paper_default();
    group.bench_function("hashing_vectorizer_node_type", |b| {
        b.iter(|| black_box(hasher.transform("m4.2xlarge")))
    });
    group.bench_function("hashing_vectorizer_job_params", |b| {
        b.iter(|| black_box(hasher.transform("--k 16 --iterations 50 --sampling 0.1")))
    });
    group.bench_function("binarize_39bit", |b| {
        b.iter(|| black_box(binarize(19_353, 39)))
    });

    let encoder = PropertyEncoder::default();
    let props = [
        PropertyValue::Number(19_353),
        PropertyValue::text("dense-features"),
        PropertyValue::text("--iterations 100"),
        PropertyValue::text("r4.2xlarge"),
        PropertyValue::Number(62_464),
        PropertyValue::Number(8),
        PropertyValue::text("sgd"),
    ];
    group.bench_function("encode_full_context_7_props", |b| {
        b.iter(|| black_box(encoder.encode_all(&props)))
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_qr_and_nnls, bench_encoding);
criterion_main!(benches);
