//! Prediction-latency benchmark: the seed-style per-query path against the
//! batched arena-backed `Predictor`, on the standard 64-query scale-out
//! sweep (see `bench::predict` for the workload definition). The snapshot
//! equivalent is recorded in `BENCH_predict.json` by `bench_snapshot`.

use bellamy_core::{PredictQuery, Predictor};
use bench::predict::workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("predict");

    group.bench_function("seed_style_64_queries", |b| {
        b.iter(|| black_box(w.run_seed_style()))
    });

    let mut predictor = Predictor::new();
    group.bench_function("predictor_sweep_64", |b| {
        b.iter(|| black_box(w.run_batched(&mut predictor)))
    });

    // The general mixed-query entry point on the same workload.
    let queries: Vec<PredictQuery<'_>> = w
        .scale_outs
        .iter()
        .map(|&x| PredictQuery {
            scale_out: x,
            props: &w.props,
        })
        .collect();
    group.bench_function("predictor_batch_64", |b| {
        b.iter(|| {
            let preds = predictor.predict_batch(&w.state, &queries);
            black_box(preds.iter().sum::<f64>())
        })
    });

    // Single-query latency through the warm thread-local wrapper — what ad
    // hoc callers (`ModelState::predict`) pay per call.
    group.bench_function("predict_single_warm", |b| {
        b.iter(|| black_box(w.state.predict(6.0, &w.props)))
    });
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
