//! The train-step benchmark: one pre-training epoch over the standard
//! 900-sample SGD workload at the default `PretrainConfig` (minibatch 64),
//! comparing
//!
//! - `legacy` — the seed implementation: fresh graph per step,
//!   per-property auto-encoder passes, libm scalar math, allocating
//!   backward;
//! - `optimized_seq` — the zero-allocation arena path, sequential;
//! - `optimized_par_auto` — the same path with data-parallel shards over
//!   the worker team (one shard per core).
//!
//! The acceptance bar for the zero-allocation rewrite is ≥ 2x over
//! `legacy` on the sequential path alone; the parallel path adds with the
//! core count. `bench_snapshot` records the same measurements to
//! `BENCH_train.json` for cross-PR tracking.

use bench::train_step::{workload, EpochRunner, StepImpl};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_train_step(c: &mut Criterion) {
    let samples = workload();
    let mut group = c.benchmark_group("train_step");
    group.sample_size(10);
    for which in [
        StepImpl::Legacy,
        StepImpl::Optimized,
        StepImpl::Parallel { workers: 0 },
    ] {
        let mut runner = EpochRunner::new(&samples, which);
        // Warm the arenas/pools so the steady state is what gets measured.
        runner.run_epoch();
        runner.run_epoch();
        group.bench_function(format!("epoch/{}", which.label()), |b| {
            b.iter(|| runner.run_epoch())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
