//! Serving-path benchmark: direct per-thread-predictor single queries
//! against the `Service` front door's micro-batched single queries, plus
//! the batched client entry point. The multi-thread snapshot equivalent is
//! recorded in `BENCH_serve.json` by `bench_snapshot`.

use bellamy_core::{Predictor, Service};
use bench::predict::workload;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_serve(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("serve");

    // The per-thread optimum: a warm predictor queried directly.
    let mut predictor = Predictor::new();
    group.bench_function("direct_single_query", |b| {
        b.iter(|| black_box(predictor.predict_one(&w.state, 6.0, &w.props)))
    });

    // The front door: same single query through submit → serving loop →
    // batched forward → slot delivery.
    let service = Service::builder().build().expect("in-memory service");
    let client = service.client_for_state(Arc::clone(&w.state));
    group.bench_function("microbatched_single_query", |b| {
        b.iter(|| black_box(client.predict(6.0, &w.props).expect("service is live")))
    });

    // The batched client entry point on the standard 64-query sweep.
    group.bench_function("client_sweep_64", |b| {
        b.iter(|| black_box(client.predict_sweep(&w.props, &w.scale_outs)))
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
