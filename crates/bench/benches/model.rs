//! Benchmarks of the Bellamy model itself: forward/backward passes at the
//! paper's layer shapes, fine-tuning (the cost the paper reports in
//! §IV-C "Training time"), prediction latency, and checkpointing.

use bellamy_core::finetune::fit_local;
use bellamy_core::{
    Bellamy, BellamyConfig, FinetuneConfig, PretrainConfig, ReuseStrategy, TrainingSample,
};
use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};
use bellamy_nn::Graph;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

struct Setup {
    pretrained: Bellamy,
    few_samples: Vec<TrainingSample>,
    all_samples: Vec<TrainingSample>,
}

fn setup() -> Setup {
    let data = generate_c3o(&GeneratorConfig::seeded(5));
    let target = data.contexts_for(Algorithm::Sgd)[0];
    let history: Vec<TrainingSample> = data
        .runs_for_algorithm_excluding(Algorithm::Sgd, Some(target.id))
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect();
    let mut pretrained = Bellamy::new(BellamyConfig::default(), 5);
    bellamy_core::train::pretrain(
        &mut pretrained,
        &history,
        &PretrainConfig {
            epochs: 40,
            ..PretrainConfig::default()
        },
        5,
    );
    let all_samples: Vec<TrainingSample> = data
        .runs_for_context(target.id)
        .iter()
        .map(|r| TrainingSample::from_run(target, r))
        .collect();
    let few_samples: Vec<TrainingSample> = all_samples.iter().step_by(10).cloned().collect();
    Setup {
        pretrained,
        few_samples,
        all_samples,
    }
}

fn bench_forward_backward(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("model");
    let encoded = {
        // Private API is not exposed; measure through predict (forward only)
        // and fine-tune epochs (forward+backward) instead.
        &s.all_samples
    };

    let props = &encoded[0].props;
    let state = s.pretrained.snapshot().expect("pretrained");
    group.bench_function("predict_single", |b| {
        b.iter(|| black_box(state.predict(6.0, props)))
    });

    // One full-batch fine-tuning epoch: build graph + forward + backward +
    // Adam step, on 3 samples (the Fig. 5 few-shot regime).
    group.bench_function("finetune_one_epoch_3_samples", |b| {
        b.iter_batched(
            || s.pretrained.clone_model(),
            |mut model| {
                let cfg = FinetuneConfig {
                    max_epochs: 1,
                    patience: 10,
                    target_mae: 0.0,
                    ..FinetuneConfig::default()
                };
                bellamy_core::finetune::fine_tune(
                    &mut model,
                    &s.few_samples,
                    &cfg,
                    ReuseStrategy::PartialUnfreeze,
                    1,
                );
                black_box(model);
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // The full fine-tuning run the paper times (quick budget).
    group.sample_size(10);
    group.bench_function("finetune_full_quick_budget", |b| {
        b.iter_batched(
            || s.pretrained.clone_model(),
            |mut model| {
                let cfg = FinetuneConfig {
                    max_epochs: 250,
                    patience: 150,
                    ..FinetuneConfig::default()
                };
                bellamy_core::finetune::fine_tune(
                    &mut model,
                    &s.few_samples,
                    &cfg,
                    ReuseStrategy::PartialUnfreeze,
                    1,
                );
                black_box(model);
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("local_fit_quick_budget", |b| {
        b.iter_batched(
            || Bellamy::new(BellamyConfig::default(), 9),
            |mut model| {
                let cfg = FinetuneConfig {
                    max_epochs: 250,
                    patience: 150,
                    ..FinetuneConfig::default()
                };
                fit_local(&mut model, &s.few_samples, &cfg, 2);
                black_box(model);
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_pretrain_epoch(c: &mut Criterion) {
    let data = generate_c3o(&GeneratorConfig::seeded(5));
    let history: Vec<TrainingSample> = data
        .runs_for_algorithm_excluding(Algorithm::Grep, None)
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect();
    let mut group = c.benchmark_group("pretrain");
    group.sample_size(10);
    group.bench_function("one_epoch_810_samples_batch64", |b| {
        b.iter_batched(
            || Bellamy::new(BellamyConfig::default(), 3),
            |mut model| {
                bellamy_core::train::pretrain(
                    &mut model,
                    &history,
                    &PretrainConfig {
                        epochs: 1,
                        ..PretrainConfig::default()
                    },
                    3,
                );
                black_box(model);
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("checkpoint");
    let ck = s.pretrained.to_checkpoint();
    let bytes = ck.to_bytes();
    group.bench_function("serialize", |b| {
        b.iter(|| black_box(s.pretrained.to_checkpoint().to_bytes()))
    });
    group.bench_function("deserialize_and_rebuild", |b| {
        b.iter(|| {
            let ck = bellamy_nn::Checkpoint::from_bytes(&bytes).expect("valid");
            black_box(Bellamy::from_checkpoint(&ck).expect("valid"))
        })
    });
    group.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    // Tape overhead in isolation: an 8-layer MLP-ish chain on batch 64.
    use bellamy_linalg::Matrix;
    let params = bellamy_nn::ParamSet::new();
    let x = Matrix::from_fn(64, 28, |i, j| ((i * 31 + j) % 17) as f64 * 0.1 - 0.8);
    let w = Matrix::from_fn(28, 8, |i, j| ((i * 7 + j) % 13) as f64 * 0.05 - 0.3);
    c.bench_function("tape_forward_backward_small_mlp", |b| {
        b.iter(|| {
            let mut g = Graph::new(&params);
            let xn = g.input(x.clone());
            let wn = g.input(w.clone());
            let h = g.tape.matmul(xn, wn);
            let h = g.tape.activate(h, bellamy_nn::Activation::Selu);
            let loss = g.tape.mse_loss(h, &Matrix::zeros(64, 8));
            black_box(g.tape.backward(loss));
        })
    });
}

criterion_group!(
    benches,
    bench_forward_backward,
    bench_pretrain_epoch,
    bench_checkpoint,
    bench_graph_construction
);
criterion_main!(benches);
