//! Shared harness for the prediction benchmark and the `bench_snapshot`
//! helper: a pre-trained SGD model answering a 64-query scale-out workload
//! (the §IV allocation-search shape), through either the seed-style
//! per-query path (`Bellamy::predict_reference`: clone, re-encode, fresh
//! graph, full forward with decoder) or the batched zero-allocation
//! [`Predictor`].

use bellamy_core::train::pretrain;
use bellamy_core::{
    context_properties, Bellamy, BellamyConfig, ContextProperties, ModelState, Predictor,
    PretrainConfig, TrainingSample,
};
use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};
use std::sync::Arc;
use std::time::Instant;

/// Queries per batch in the standard workload.
pub const BATCH: usize = 64;

/// A pre-trained model plus a fixed query workload over one context.
pub struct PredictWorkload {
    /// The trainer handle (the seed-style path predicts through it).
    pub model: Bellamy,
    /// The published snapshot the batched path serves from.
    pub state: Arc<ModelState>,
    /// The queried context's properties.
    pub props: ContextProperties,
    /// The queried scale-outs ([`BATCH`] of them, cycling over the C3O
    /// grid 2–12).
    pub scale_outs: Vec<f64>,
}

/// Builds the standard workload: pre-train briefly on the SGD history
/// (prediction cost is independent of model quality), then query one
/// held-out context at [`BATCH`] scale-outs.
pub fn workload() -> PredictWorkload {
    let data = generate_c3o(&GeneratorConfig::seeded(5));
    let target = data.contexts_for(Algorithm::Sgd)[0];
    let history: Vec<TrainingSample> = data
        .runs_for_algorithm_excluding(Algorithm::Sgd, Some(target.id))
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect();
    let mut model = Bellamy::new(BellamyConfig::default(), 5);
    pretrain(
        &mut model,
        &history,
        &PretrainConfig {
            epochs: 10,
            ..PretrainConfig::default()
        },
        5,
    );
    let state = model.snapshot().expect("pretrained");
    PredictWorkload {
        model,
        state,
        props: context_properties(target),
        scale_outs: (0..BATCH).map(|i| 2.0 + (i % 11) as f64).collect(),
    }
}

impl PredictWorkload {
    /// Answers the whole workload seed-style: one
    /// [`Bellamy::predict_reference`] call per query. Returns the
    /// prediction sum (an optimization barrier).
    pub fn run_seed_style(&self) -> f64 {
        self.scale_outs
            .iter()
            .map(|&x| self.model.predict_reference(x, &self.props))
            .sum()
    }

    /// Answers the whole workload with one batched sweep through `p`.
    pub fn run_batched(&self, p: &mut Predictor) -> f64 {
        p.predict_sweep(&self.state, &self.props, &self.scale_outs)
            .iter()
            .sum()
    }

    /// Mean seconds **per query** for the seed-style path.
    pub fn time_seed_style(&self, warmup: usize, iters: usize) -> f64 {
        for _ in 0..warmup {
            std::hint::black_box(self.run_seed_style());
        }
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(self.run_seed_style());
        }
        start.elapsed().as_secs_f64() / (iters * self.scale_outs.len()) as f64
    }

    /// Mean seconds **per query** for the batched path (one warm predictor
    /// across all iterations, as a serving loop would hold it).
    pub fn time_batched(&self, warmup: usize, iters: usize) -> f64 {
        let mut p = Predictor::new();
        for _ in 0..warmup {
            std::hint::black_box(self.run_batched(&mut p));
        }
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(self.run_batched(&mut p));
        }
        start.elapsed().as_secs_f64() / (iters * self.scale_outs.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_paths_agree_on_the_workload() {
        let w = workload();
        let seed_style = w.run_seed_style();
        let batched = w.run_batched(&mut Predictor::new());
        // Same math up to scalar-kernel association (~ulps per op).
        assert!(
            (seed_style - batched).abs() <= 1e-9 * seed_style.abs().max(1.0),
            "seed-style {seed_style} vs batched {batched}"
        );
    }
}
