//! Snapshots the train-step benchmark to `BENCH_train.json` so successive
//! PRs can track the trajectory of the training hot path.
//!
//! ```text
//! cargo run --release -p bench --bin bench_snapshot [-- <output-path>]
//! ```
//!
//! Measures µs per minibatch step (default `PretrainConfig`, 900-sample SGD
//! workload) for the seed-style legacy step, the zero-allocation sequential
//! step, and the data-parallel step, and writes a small JSON report.

use bench::train_step::{workload, EpochRunner, StepImpl};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_train.json".to_string());
    let samples = workload();
    let threads = bellamy_par::default_threads();

    let impls = [
        StepImpl::Legacy,
        StepImpl::Optimized,
        StepImpl::Parallel { workers: 0 },
    ];
    let mut results = Vec::new();
    for which in impls {
        let mut runner = EpochRunner::new(&samples, which);
        let us_per_step = runner.time_per_step(2, 8) * 1e6;
        eprintln!("{:<22} {us_per_step:9.1} us/step", which.label());
        results.push((which.label(), us_per_step));
    }

    let legacy = results[0].1;
    let entries: Vec<String> = results
        .iter()
        .map(|(name, us)| {
            format!(
                "    {{\"name\": \"{name}\", \"us_per_step\": {us:.1}, \"speedup_vs_legacy\": {:.2}}}",
                legacy / us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"train_step\",\n  \"workload\": \"SGD C3O history, {} samples, \
         PretrainConfig::default() (batch 64)\",\n  \"machine_threads\": {threads},\n  \
         \"unit\": \"us_per_minibatch_step\",\n  \"results\": [\n{}\n  ]\n}}\n",
        samples.len(),
        entries.join(",\n")
    );
    std::fs::write(&path, json).expect("write benchmark snapshot");
    eprintln!("wrote {path}");
}
