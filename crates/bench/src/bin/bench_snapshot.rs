//! Snapshots the train-step, predict, hub, and serve benchmarks to
//! `BENCH_train.json` / `BENCH_predict.json` / `BENCH_hub.json` /
//! `BENCH_serve.json` so successive PRs can track the trajectory of the
//! hot paths.
//!
//! ```text
//! cargo run --release -p bench --bin bench_snapshot \
//!     [-- <train-path> [predict-path [hub-path [serve-path]]]]
//! ```
//!
//! Train step: µs per minibatch step (default `PretrainConfig`, 900-sample
//! SGD workload) for the seed-style legacy step, the zero-allocation
//! sequential step, and the data-parallel step.
//!
//! Predict: µs per query on a 64-query scale-out sweep of one context, for
//! the seed-style per-query path (clone + re-encode + fresh graph + full
//! forward with decoder) and the batched arena-backed `Predictor`.
//!
//! Hub: recall latency (memory registry vs cold disk) and concurrent
//! shared-snapshot predict throughput at 1/2/4 threads.
//!
//! Serve: per-query latency and queries/s of single-query serving at
//! 1/2/4 submitting threads — direct per-thread predictor vs the
//! `Service` front door's cross-caller micro-batcher.

use bellamy_linalg::kernels::{self, KernelTable};
use bench::train_step::{workload, EpochRunner, StepImpl};
use bench::{hub, predict, serve};
use std::time::Instant;

/// The kernel backend every snapshot ran on, recorded in each JSON so a
/// number is never compared against one taken with a different backend
/// (`BELLAMY_KERNEL` can force scalar).
fn backend() -> &'static str {
    kernels::backend_name()
}

/// The full tier resolution (`requested -> resolved`), recorded alongside
/// the backend so a snapshot taken under a degraded request (e.g.
/// `BELLAMY_KERNEL=fma` on a host without FMA) is distinguishable from one
/// where the request was honored.
fn resolution_fields() -> String {
    let r = kernels::resolution();
    format!(
        "\"kernel_requested\": \"{}\",\n  \"kernel_resolved\": \"{}\"",
        r.requested_name(),
        r.resolved_name()
    )
}

/// Times `table.matmul` on one shape: µs per call, best of `reps` batches.
fn time_matmul(table: &KernelTable, m: usize, k: usize, n: usize, reps: usize) -> f64 {
    let a: Vec<f64> = (0..m * k).map(|i| (i as f64 * 0.13) - 3.0).collect();
    let b: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.29) - 7.0).collect();
    let mut out = vec![0.0; m * n];
    table.matmul(&a, &b, &mut out, m, k, n); // warm-up
    let inner = 64;
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..inner {
            table.matmul(&a, &b, &mut out, m, k, n);
        }
        best = best.min(t0.elapsed().as_secs_f64() / inner as f64);
    }
    std::hint::black_box(&out);
    best * 1e6
}

/// Exact-vs-Fast matmul comparison rows: the two Exact backends and the
/// Fast (FMA) table timed head to head on representative shapes, driven
/// through the tables directly so one process can measure both tiers
/// regardless of the process-wide dispatch. Shapes cover the n==8
/// register kernel the predict path leans on, the 40-wide decode GEMM,
/// and a larger blocked shape.
fn tier_comparison_json() -> String {
    let shapes: [(usize, usize, usize); 3] = [(64, 8, 8), (64, 40, 8), (128, 64, 64)];
    let scalar = kernels::scalar();
    let simd = kernels::simd();
    let fma = kernels::fma();
    let mut rows = Vec::new();
    for (m, k, n) in shapes {
        let scalar_us = time_matmul(scalar, m, k, n, 5);
        let simd_us = simd.map(|t| time_matmul(t, m, k, n, 5));
        let fma_us = fma.map(|t| time_matmul(t, m, k, n, 5));
        let fmt_opt = |v: Option<f64>| {
            v.map(|us| format!("{us:.3}"))
                .unwrap_or_else(|| "null".to_string())
        };
        let fast_vs_exact = match (simd_us.or(Some(scalar_us)), fma_us) {
            (Some(exact), Some(fast)) if fast > 0.0 => format!("{:.2}", exact / fast),
            _ => "null".to_string(),
        };
        eprintln!(
            "{:<22} scalar {scalar_us:8.3} us  simd {:>8} us  fma {:>8} us  fast_vs_exact {fast_vs_exact}x",
            format!("matmul_{m}x{k}x{n}"),
            fmt_opt(simd_us),
            fmt_opt(fma_us),
        );
        rows.push(format!(
            "    {{\"shape\": \"{m}x{k}x{n}\", \"scalar_us\": {scalar_us:.3}, \
             \"simd_us\": {}, \"fma_us\": {}, \"fast_vs_exact_speedup\": {fast_vs_exact}}}",
            fmt_opt(simd_us),
            fmt_opt(fma_us),
        ));
    }
    format!(
        "\"kernel_tiers\": {{\n    \"note\": \"exact-vs-fast matmul, tables driven directly; \
         null when the backend is unavailable on this host\",\n    \"unit\": \"us_per_call\",\n    \
         \"rows\": [\n{}\n    ]\n  }}",
        rows.join(",\n")
    )
}

fn main() {
    let train_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_train.json".to_string());
    let predict_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_predict.json".to_string());
    let hub_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_hub.json".to_string());
    let serve_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    snapshot_train(&train_path);
    snapshot_predict(&predict_path);
    snapshot_hub(&hub_path);
    snapshot_serve(&serve_path);
}

fn snapshot_train(path: &str) {
    let samples = workload();
    let threads = bellamy_par::default_threads();

    let impls = [
        StepImpl::Legacy,
        StepImpl::Optimized,
        StepImpl::Parallel { workers: 0 },
    ];
    let mut results = Vec::new();
    for which in impls {
        let mut runner = EpochRunner::new(&samples, which);
        let us_per_step = runner.time_per_step(2, 8) * 1e6;
        eprintln!("{:<22} {us_per_step:9.1} us/step", which.label());
        results.push((which.label(), us_per_step));
    }

    let legacy = results[0].1;
    let entries: Vec<String> = results
        .iter()
        .map(|(name, us)| {
            format!(
                "    {{\"name\": \"{name}\", \"us_per_step\": {us:.1}, \"speedup_vs_legacy\": {:.2}}}",
                legacy / us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"train_step\",\n  \"workload\": \"SGD C3O history, {} samples, \
         PretrainConfig::default() (batch 64)\",\n  \"machine_threads\": {threads},\n  \
         \"kernel_backend\": \"{}\",\n  {},\n  {},\n  \
         \"unit\": \"us_per_minibatch_step\",\n  \"results\": [\n{}\n  ]\n}}\n",
        samples.len(),
        backend(),
        resolution_fields(),
        tier_comparison_json(),
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write train benchmark snapshot");
    eprintln!("wrote {path}");
}

fn snapshot_predict(path: &str) {
    let w = predict::workload();
    let seed_us = w.time_seed_style(2, 10) * 1e6;
    eprintln!("{:<22} {seed_us:9.2} us/query", "predict_seed_style");
    let batched_us = w.time_batched(2, 50) * 1e6;
    eprintln!("{:<22} {batched_us:9.2} us/query", "predict_batched_64");

    let json = format!(
        "{{\n  \"benchmark\": \"predict\",\n  \"workload\": \"64-query scale-out sweep of one \
         SGD context, pre-trained default model\",\n  \"kernel_backend\": \"{}\",\n  {},\n  {},\n  \
         \"unit\": \"us_per_query\",\n  \
         \"results\": [\n    {{\"name\": \"seed_style_single\", \"us_per_query\": {seed_us:.2}, \
         \"speedup_vs_seed\": 1.00}},\n    {{\"name\": \"predictor_batch_64\", \
         \"us_per_query\": {batched_us:.2}, \"speedup_vs_seed\": {:.2}}}\n  ]\n}}\n",
        backend(),
        resolution_fields(),
        tier_comparison_json(),
        seed_us / batched_us
    );
    std::fs::write(path, json).expect("write predict benchmark snapshot");
    eprintln!("wrote {path}");
}

fn snapshot_hub(path: &str) {
    let r = hub::run();
    eprintln!("{:<22} {:9.2} us", "hub_recall_memory", r.recall_memory_us);
    let mut disk_entries = Vec::new();
    for d in &r.disk {
        eprintln!(
            "{:<22} {:9.2} us cold / {:8.2} us warm",
            format!("hub_recall_{}", d.mode),
            d.cold_us,
            d.warm_us
        );
        disk_entries.push(format!(
            "      {{\"recall_mode\": \"{}\", \"cold_us\": {:.2}, \"warm_us\": {:.2}}}",
            d.mode, d.cold_us, d.warm_us
        ));
    }
    let mut qps_entries = Vec::new();
    for (threads, qps) in &r.concurrent_qps {
        eprintln!("{:<22} {qps:9.0} q/s", format!("predict_{threads}_threads"));
        qps_entries.push(format!(
            "    {{\"threads\": {threads}, \"queries_per_second\": {qps:.0}}}"
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"hub\",\n  \"workload\": \"recall of one pretrained SGD model + \
         concurrent 64-query sweeps on one shared Arc<ModelState>\",\n  \
         \"kernel_backend\": \"{}\",\n  {},\n  \"recall\": {{\n    \
         \"memory_us\": {:.2},\n    \"disk\": [\n{}\n    ]\n  }},\n  \
         \"concurrent_predict\": [\n{}\n  ]\n}}\n",
        backend(),
        resolution_fields(),
        r.recall_memory_us,
        disk_entries.join(",\n"),
        qps_entries.join(",\n")
    );
    std::fs::write(path, json).expect("write hub benchmark snapshot");
    eprintln!("wrote {path}");
}

fn snapshot_serve(path: &str) {
    let r = serve::run();
    let mut entries = Vec::new();
    for row in &r.rows {
        eprintln!(
            "{:<26} {:9.2} us/query (p50 {:.1} p99 {:.1}) {:9.0} q/s (mean batch {:.1})",
            format!("{}_{}_threads", row.mode, row.threads),
            row.us_per_query,
            row.p50_us,
            row.p99_us,
            row.qps,
            row.mean_batch
        );
        entries.push(format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"us_per_query\": {:.2}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"queries_per_second\": {:.0}, \"mean_batch\": {:.2}}}",
            row.mode,
            row.threads,
            row.us_per_query,
            row.p50_us,
            row.p99_us,
            row.qps,
            row.mean_batch
        ));
    }
    let speedup_4t = r
        .qps_pair(4)
        .map(|(direct, batched)| batched / direct)
        .unwrap_or(f64::NAN);
    eprintln!("{:<26} {speedup_4t:9.2}x", "microbatched_vs_direct_4t");
    eprintln!(
        "{:<26} shed {} deadline_expired {} panics {} restarts {}",
        "robustness_counters", r.shed, r.deadline_expired, r.panics, r.restarts
    );
    let overhead = serve::measure_telemetry_overhead();
    eprintln!(
        "{:<26} {:9.2} us/query off, {:.2} us/query on ({:+.2}%)",
        "telemetry_overhead",
        overhead.uninstrumented_us,
        overhead.instrumented_us,
        overhead.overhead_pct
    );
    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"workload\": \"single-query serving of one \
         pre-trained SGD model, {} queries/thread, direct per-thread Predictor vs \
         cross-caller micro-batched Service client\",\n  \
         \"kernel_backend\": \"{}\",\n  {},\n  \
         \"microbatched_vs_direct_qps_at_4_threads\": {speedup_4t:.2},\n  \
         \"robustness\": {{\"shed\": {}, \"deadline_expired\": {}, \"panics\": {}, \
         \"restarts\": {}}},\n  \
         \"telemetry_overhead\": {{\"uninstrumented_us_per_query\": {:.2}, \
         \"instrumented_us_per_query\": {:.2}, \"overhead_pct\": {:.2}}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        serve::QUERIES_PER_THREAD,
        backend(),
        resolution_fields(),
        r.shed,
        r.deadline_expired,
        r.panics,
        r.restarts,
        overhead.uninstrumented_us,
        overhead.instrumented_us,
        overhead.overhead_pct,
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write serve benchmark snapshot");
    eprintln!("wrote {path}");
}
