//! Snapshots the train-step, predict, hub, and serve benchmarks to
//! `BENCH_train.json` / `BENCH_predict.json` / `BENCH_hub.json` /
//! `BENCH_serve.json` so successive PRs can track the trajectory of the
//! hot paths.
//!
//! ```text
//! cargo run --release -p bench --bin bench_snapshot \
//!     [-- <train-path> [predict-path [hub-path [serve-path]]]]
//! ```
//!
//! Train step: µs per minibatch step (default `PretrainConfig`, 900-sample
//! SGD workload) for the seed-style legacy step, the zero-allocation
//! sequential step, and the data-parallel step.
//!
//! Predict: µs per query on a 64-query scale-out sweep of one context, for
//! the seed-style per-query path (clone + re-encode + fresh graph + full
//! forward with decoder) and the batched arena-backed `Predictor`.
//!
//! Hub: recall latency (memory registry vs cold disk) and concurrent
//! shared-snapshot predict throughput at 1/2/4 threads.
//!
//! Serve: per-query latency and queries/s of single-query serving at
//! 1/2/4 submitting threads — direct per-thread predictor vs the
//! `Service` front door's cross-caller micro-batcher.

use bench::train_step::{workload, EpochRunner, StepImpl};
use bench::{hub, predict, serve};

/// The kernel backend every snapshot ran on, recorded in each JSON so a
/// number is never compared against one taken with a different backend
/// (`BELLAMY_KERNEL` can force scalar).
fn backend() -> &'static str {
    bellamy_linalg::kernels::backend_name()
}

fn main() {
    let train_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_train.json".to_string());
    let predict_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_predict.json".to_string());
    let hub_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_hub.json".to_string());
    let serve_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    snapshot_train(&train_path);
    snapshot_predict(&predict_path);
    snapshot_hub(&hub_path);
    snapshot_serve(&serve_path);
}

fn snapshot_train(path: &str) {
    let samples = workload();
    let threads = bellamy_par::default_threads();

    let impls = [
        StepImpl::Legacy,
        StepImpl::Optimized,
        StepImpl::Parallel { workers: 0 },
    ];
    let mut results = Vec::new();
    for which in impls {
        let mut runner = EpochRunner::new(&samples, which);
        let us_per_step = runner.time_per_step(2, 8) * 1e6;
        eprintln!("{:<22} {us_per_step:9.1} us/step", which.label());
        results.push((which.label(), us_per_step));
    }

    let legacy = results[0].1;
    let entries: Vec<String> = results
        .iter()
        .map(|(name, us)| {
            format!(
                "    {{\"name\": \"{name}\", \"us_per_step\": {us:.1}, \"speedup_vs_legacy\": {:.2}}}",
                legacy / us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"train_step\",\n  \"workload\": \"SGD C3O history, {} samples, \
         PretrainConfig::default() (batch 64)\",\n  \"machine_threads\": {threads},\n  \
         \"kernel_backend\": \"{}\",\n  \
         \"unit\": \"us_per_minibatch_step\",\n  \"results\": [\n{}\n  ]\n}}\n",
        samples.len(),
        backend(),
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write train benchmark snapshot");
    eprintln!("wrote {path}");
}

fn snapshot_predict(path: &str) {
    let w = predict::workload();
    let seed_us = w.time_seed_style(2, 10) * 1e6;
    eprintln!("{:<22} {seed_us:9.2} us/query", "predict_seed_style");
    let batched_us = w.time_batched(2, 50) * 1e6;
    eprintln!("{:<22} {batched_us:9.2} us/query", "predict_batched_64");

    let json = format!(
        "{{\n  \"benchmark\": \"predict\",\n  \"workload\": \"64-query scale-out sweep of one \
         SGD context, pre-trained default model\",\n  \"kernel_backend\": \"{}\",\n  \
         \"unit\": \"us_per_query\",\n  \
         \"results\": [\n    {{\"name\": \"seed_style_single\", \"us_per_query\": {seed_us:.2}, \
         \"speedup_vs_seed\": 1.00}},\n    {{\"name\": \"predictor_batch_64\", \
         \"us_per_query\": {batched_us:.2}, \"speedup_vs_seed\": {:.2}}}\n  ]\n}}\n",
        backend(),
        seed_us / batched_us
    );
    std::fs::write(path, json).expect("write predict benchmark snapshot");
    eprintln!("wrote {path}");
}

fn snapshot_hub(path: &str) {
    let r = hub::run();
    eprintln!("{:<22} {:9.2} us", "hub_recall_memory", r.recall_memory_us);
    let mut disk_entries = Vec::new();
    for d in &r.disk {
        eprintln!(
            "{:<22} {:9.2} us cold / {:8.2} us warm",
            format!("hub_recall_{}", d.mode),
            d.cold_us,
            d.warm_us
        );
        disk_entries.push(format!(
            "      {{\"recall_mode\": \"{}\", \"cold_us\": {:.2}, \"warm_us\": {:.2}}}",
            d.mode, d.cold_us, d.warm_us
        ));
    }
    let mut qps_entries = Vec::new();
    for (threads, qps) in &r.concurrent_qps {
        eprintln!("{:<22} {qps:9.0} q/s", format!("predict_{threads}_threads"));
        qps_entries.push(format!(
            "    {{\"threads\": {threads}, \"queries_per_second\": {qps:.0}}}"
        ));
    }
    let json = format!(
        "{{\n  \"benchmark\": \"hub\",\n  \"workload\": \"recall of one pretrained SGD model + \
         concurrent 64-query sweeps on one shared Arc<ModelState>\",\n  \
         \"kernel_backend\": \"{}\",\n  \"recall\": {{\n    \
         \"memory_us\": {:.2},\n    \"disk\": [\n{}\n    ]\n  }},\n  \
         \"concurrent_predict\": [\n{}\n  ]\n}}\n",
        backend(),
        r.recall_memory_us,
        disk_entries.join(",\n"),
        qps_entries.join(",\n")
    );
    std::fs::write(path, json).expect("write hub benchmark snapshot");
    eprintln!("wrote {path}");
}

fn snapshot_serve(path: &str) {
    let r = serve::run();
    let mut entries = Vec::new();
    for row in &r.rows {
        eprintln!(
            "{:<26} {:9.2} us/query (p50 {:.1} p99 {:.1}) {:9.0} q/s (mean batch {:.1})",
            format!("{}_{}_threads", row.mode, row.threads),
            row.us_per_query,
            row.p50_us,
            row.p99_us,
            row.qps,
            row.mean_batch
        );
        entries.push(format!(
            "    {{\"mode\": \"{}\", \"threads\": {}, \"us_per_query\": {:.2}, \
             \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"queries_per_second\": {:.0}, \"mean_batch\": {:.2}}}",
            row.mode,
            row.threads,
            row.us_per_query,
            row.p50_us,
            row.p99_us,
            row.qps,
            row.mean_batch
        ));
    }
    let speedup_4t = r
        .qps_pair(4)
        .map(|(direct, batched)| batched / direct)
        .unwrap_or(f64::NAN);
    eprintln!("{:<26} {speedup_4t:9.2}x", "microbatched_vs_direct_4t");
    eprintln!(
        "{:<26} shed {} deadline_expired {} panics {} restarts {}",
        "robustness_counters", r.shed, r.deadline_expired, r.panics, r.restarts
    );
    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"workload\": \"single-query serving of one \
         pre-trained SGD model, {} queries/thread, direct per-thread Predictor vs \
         cross-caller micro-batched Service client\",\n  \
         \"kernel_backend\": \"{}\",\n  \
         \"microbatched_vs_direct_qps_at_4_threads\": {speedup_4t:.2},\n  \
         \"robustness\": {{\"shed\": {}, \"deadline_expired\": {}, \"panics\": {}, \
         \"restarts\": {}}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        serve::QUERIES_PER_THREAD,
        backend(),
        r.shed,
        r.deadline_expired,
        r.panics,
        r.restarts,
        entries.join(",\n")
    );
    std::fs::write(path, json).expect("write serve benchmark snapshot");
    eprintln!("wrote {path}");
}
