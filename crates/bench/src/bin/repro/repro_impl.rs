//! Implementations of the individual repro experiments.

use bellamy_core::{
    search_pretrain, Bellamy, BellamyConfig, FinetuneConfig, PretrainConfig, SearchSpace,
    TrainingSample,
};
use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};
use bellamy_eval::figures::{ecdf, fig2_normalized_runtimes, fig4_codes};
use bellamy_eval::{
    report, run_adhoc, run_crossenv, AdhocConfig, CrossEnvConfig, PredictionRecord, Profile, Task,
};
use bellamy_linalg::stats;
use bench::Workbench;

/// Fig. 2: normalized runtime variance across contexts.
pub fn fig2(wb: &Workbench) {
    println!("## Fig. 2 — Runtime variance across contexts (normalized runtimes)\n");
    let rows = fig2_normalized_runtimes(&wb.c3o);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.algorithm.to_string(),
                r.scale_out.to_string(),
                format!("{:.3}", r.mean),
                format!("{:.3}", r.std),
                format!("{:.3}", r.min),
                format!("{:.3}", r.max),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &["algorithm", "scale-out", "mean", "std", "min", "max"],
            &table
        )
    );
    println!(
        "Reading: wide (max - min) bands at large scale-outs mean the contexts disagree\n\
         about the scale-out behaviour; SGD and K-Means spread the most, matching the\n\
         paper's observation that their behaviour is non-trivial.\n"
    );
}

/// Fig. 4: auto-encoder codes of two SGD contexts.
pub fn fig4(wb: &Workbench, profile: Profile, seed: u64) {
    println!("## Fig. 4 — Property codes of two SGD execution contexts\n");
    // Pre-train an SGD model on all SGD executions (as the paper's Fig. 4
    // model would be).
    let samples: Vec<TrainingSample> = wb
        .c3o
        .runs_for_algorithm_excluding(Algorithm::Sgd, None)
        .iter()
        .map(|r| TrainingSample::from_run(&wb.c3o.contexts[r.context_id], r))
        .collect();
    let epochs = match profile {
        Profile::Quick => 150,
        Profile::Medium => 500,
        Profile::Paper => 2500,
    };
    let mut model = Bellamy::new(BellamyConfig::default(), seed);
    bellamy_core::train::pretrain(
        &mut model,
        &samples,
        &PretrainConfig {
            epochs,
            ..PretrainConfig::default()
        },
        seed,
    );

    // Two contexts with different node types / iterations / dataset sizes,
    // mirroring the paper's m4.2xlarge-vs-r4.2xlarge example.
    let ctxs = wb.c3o.contexts_for(Algorithm::Sgd);
    let a = ctxs
        .iter()
        .find(|c| c.node_type.name == "m4.2xlarge")
        .expect("m4.2xlarge SGD context exists");
    let b = ctxs
        .iter()
        .find(|c| c.node_type.name == "r4.2xlarge" && c.job_parameters != a.job_parameters)
        .or_else(|| ctxs.iter().find(|c| c.node_type.name == "r4.2xlarge"))
        .expect("r4.2xlarge SGD context exists");

    let state = model.snapshot().expect("pretrained");
    for (label, ctx) in [("SGD-Context 1", *a), ("SGD-Context 2", *b)] {
        let fig = fig4_codes(&state, ctx);
        println!("{label}:");
        for (prop, code) in fig.properties.iter().zip(fig.codes.iter()) {
            let rendered: Vec<String> = code.iter().map(|v| format!("{v:+.2}")).collect();
            println!("  {:<28} [{}]", prop, rendered.join(", "));
        }
        println!();
    }
    println!(
        "Reading: each row is one property's 4-dim code; the two contexts receive\n\
         visibly different code matrices, which is what lets z tell contexts apart.\n"
    );
}

/// Runs the ad hoc cross-context experiment once and returns raw records.
pub fn run_adhoc_records(
    wb: &Workbench,
    profile: Profile,
    seed: u64,
    splits_override: Option<usize>,
) -> Vec<PredictionRecord> {
    let mut cfg = match profile {
        Profile::Quick => AdhocConfig::quick(seed),
        Profile::Medium => AdhocConfig::medium(seed),
        Profile::Paper => AdhocConfig::paper(seed),
    };
    if let Some(s) = splits_override {
        cfg.max_splits = s;
    }
    eprintln!(
        "# running ad hoc cross-context: {} contexts/algorithm, <= {} splits, n <= {}",
        cfg.contexts_per_algorithm, cfg.max_splits, cfg.max_n_train
    );
    run_adhoc(&wb.c3o, &cfg).records
}

/// Runs the cross-environment experiment once and returns raw records.
pub fn run_crossenv_records(
    wb: &Workbench,
    profile: Profile,
    seed: u64,
    splits_override: Option<usize>,
) -> Vec<PredictionRecord> {
    let mut cfg = match profile {
        Profile::Quick => CrossEnvConfig::quick(seed),
        Profile::Medium => CrossEnvConfig::medium(seed),
        Profile::Paper => CrossEnvConfig::paper(seed),
    };
    if let Some(s) = splits_override {
        cfg.max_splits = s;
    }
    eprintln!(
        "# running cross-environment: <= {} splits, n <= {}",
        cfg.max_splits, cfg.max_n_train
    );
    run_crossenv(&wb.c3o, &wb.bell, &cfg).records
}

const FIG5_METHODS: [&str; 5] = [
    "NNLS",
    "Bell",
    "Bellamy (local)",
    "Bellamy (filtered)",
    "Bellamy (full)",
];

/// Fig. 5: MRE vs number of data points, per algorithm plus Total.
pub fn fig5(records: &[PredictionRecord], task: Task) {
    println!("## Fig. 5 — Mean relative error, task = {}\n", task.name());
    let mut panels: Vec<(String, Option<Algorithm>)> = Algorithm::ALL
        .iter()
        .map(|&a| (a.to_string(), Some(a)))
        .collect();
    panels.push(("Total".to_string(), None));

    let ns: Vec<usize> = {
        let mut v: Vec<usize> = records
            .iter()
            .filter(|r| r.task == task)
            .map(|r| r.n_train)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };

    for (panel, algorithm) in panels {
        let series = report::mre_series(records, algorithm, task);
        let mut rows = Vec::new();
        for method in FIG5_METHODS {
            let mut row = vec![method.to_string()];
            for &n in &ns {
                match series.get(&(method.to_string(), n)) {
                    Some(v) => row.push(format!("{v:.3}")),
                    None => row.push("-".to_string()),
                }
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["method / #points".to_string()];
        headers.extend(ns.iter().map(|n| n.to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        println!("{panel}:");
        println!("{}", report::render_table(&headers_ref, &rows));
    }
    println!(
        "Reading: lower is better. The pre-trained Bellamy variants should sit at or\n\
         below the baselines, with the largest margins for SGD/K-Means (non-trivial\n\
         scale-out) and for small numbers of points; `-` marks protocol-infeasible or\n\
         method-infeasible cells (e.g. Bell below 3 points, NNLS at 0 points).\n"
    );
}

/// Fig. 6: interpolation MAE aggregated over splits, contexts and point
/// counts.
pub fn fig6(records: &[PredictionRecord]) {
    println!("## Fig. 6 — Interpolation MAE [s] per algorithm\n");
    for algorithm in Algorithm::ALL {
        let mae = report::mae_by_method(records, Some(algorithm), Task::Interpolation);
        let items: Vec<(String, f64)> = FIG5_METHODS
            .iter()
            .filter_map(|m| mae.get(*m).map(|v| (m.to_string(), *v)))
            .collect();
        println!("{algorithm}:");
        println!("{}", report::render_bar_chart(&items, 40));
    }
    println!(
        "Reading: pre-trained Bellamy variants should be on par or better everywhere\n\
         and clearly better on SGD / K-Means.\n"
    );
}

/// Fig. 7: eCDF of fine-tuning epochs per algorithm and Bellamy variant.
pub fn fig7(records: &[PredictionRecord]) {
    println!("## Fig. 7 — eCDF of fine-tuning epochs\n");
    let by_key = report::epochs_by_algorithm_and_method(records);
    let mut rows = Vec::new();
    for ((algorithm, method), epochs) in &by_key {
        if !method.is_bellamy() {
            continue;
        }
        let e = ecdf(epochs);
        let quantile = |q: f64| stats::percentile(epochs, q);
        rows.push(vec![
            algorithm.to_string(),
            method.name().to_string(),
            epochs.len().to_string(),
            format!("{:.0}", quantile(0.25)),
            format!("{:.0}", quantile(0.5)),
            format!("{:.0}", quantile(0.75)),
            format!("{:.0}", quantile(1.0)),
            format!("{:.2}", e.first().map(|p| p.1).unwrap_or(0.0)),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            &[
                "algorithm",
                "variant",
                "#runs",
                "p25",
                "p50",
                "p75",
                "max",
                "ecdf@min"
            ],
            &rows
        )
    );
    println!(
        "Reading: pre-trained variants (filtered/full) should reach any quantile in\n\
         fewer epochs than local, i.e. their eCDF dominates; non-trivial algorithms\n\
         need more epochs across all variants.\n"
    );
}

/// §IV-C1 / §IV-C2 fitting-time comparison.
pub fn fit_time(records: &[PredictionRecord], label: &str) {
    println!("## Mean time to fit — {label}\n");
    let times = report::fit_time_by_method(records);
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (method, t) in &times {
        rows.push(vec![method.clone(), format!("{:.4} s", t)]);
    }
    println!(
        "{}",
        report::render_table(&["method", "mean fit time"], &rows)
    );
    println!(
        "Reading: NNLS/Bell fit in (sub-)milliseconds; Bellamy variants cost seconds,\n\
         with pre-trained variants noticeably cheaper than local thanks to earlier\n\
         convergence (paper: local 7.37 s vs filtered 0.99 s / full 0.55 s).\n"
    );
}

/// Fig. 8: cross-environment interpolation MAE per algorithm.
pub fn fig8(records: &[PredictionRecord]) {
    println!("## Fig. 8 — Cross-environment interpolation MAE [s]\n");
    const METHODS: [&str; 7] = [
        "NNLS",
        "Bell",
        "Bellamy (local)",
        "Bellamy (partial-unfreeze)",
        "Bellamy (full-unfreeze)",
        "Bellamy (partial-reset)",
        "Bellamy (full-reset)",
    ];
    for algorithm in Algorithm::BELL {
        let mae = report::mae_by_method(records, Some(algorithm), Task::Interpolation);
        let items: Vec<(String, f64)> = METHODS
            .iter()
            .filter_map(|m| mae.get(*m).map(|v| (m.to_string(), *v)))
            .collect();
        println!("{algorithm}:");
        println!("{}", report::render_bar_chart(&items, 40));
    }
    println!(
        "Reading: the paper finds local and full-reset most reliable under this\n\
         extreme context shift, with weight-preserving reuse variants struggling but\n\
         fitting faster. At reduced epoch budgets (quick/medium profiles) the\n\
         ordering partially inverts: local is budget-starved (it needs the most\n\
         epochs, cf. Fig. 7), so the unfreeze variants lead. The paper-profile\n\
         budget (2500 epochs, 1000 patience) restores local's accuracy; the\n\
         fitting-time advantage of reuse (next section) is budget-independent.\n"
    );
}

/// Dataset summary (the §IV-B description of the traces).
pub fn datasets(wb: &Workbench) {
    println!("## Datasets — trace summary (cf. paper \u{a7}IV-B)\n");
    for (name, ds) in [
        ("C3O (public cloud)", &wb.c3o),
        ("Bell (private cluster)", &wb.bell),
    ] {
        println!("{name}:");
        let rows: Vec<Vec<String>> = bellamy_data::stats::summarize(ds)
            .iter()
            .map(|s| {
                vec![
                    s.algorithm.to_string(),
                    s.contexts.to_string(),
                    s.unique_experiments.to_string(),
                    s.runs.to_string(),
                    format!("{:.0}-{:.0}", s.min_runtime_s, s.max_runtime_s),
                    format!("{:.1}%", s.mean_repeat_cv * 100.0),
                    format!("{:.0}%", s.monotone_context_fraction * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            report::render_table(
                &[
                    "algorithm",
                    "contexts",
                    "experiments",
                    "runs",
                    "runtime range [s]",
                    "repeat cv",
                    "monotone contexts"
                ],
                &rows
            )
        );
    }
    println!(
        "Reading: context counts and grid sizes match \u{a7}IV-B exactly; the monotone\n\
         fraction separates trivial (Grep/Sort/PageRank) from non-trivial (SGD,\n\
         K-Means) scale-out behaviour.\n"
    );
}

/// Resource-selection quality: every method picks the smallest scale-out
/// predicted to meet a runtime target; ground truth judges the choice.
pub fn allocation(wb: &Workbench, profile: Profile, seed: u64) {
    println!("## Resource allocation quality (runtime-target selection, 3 points)\n");
    let cfg = match profile {
        Profile::Quick => bellamy_eval::AllocationConfig::quick(seed),
        Profile::Medium | Profile::Paper => bellamy_eval::AllocationConfig {
            contexts_per_algorithm: 3,
            decisions: 10,
            pretrain: PretrainConfig {
                epochs: 400,
                ..PretrainConfig::default()
            },
            ..bellamy_eval::AllocationConfig::quick(seed)
        },
    };
    let records = bellamy_eval::run_allocation(&wb.c3o, &cfg);
    let summaries = bellamy_eval::summarize_allocation(&records);
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            vec![
                s.method.name().to_string(),
                format!("{:.0}%", s.success_rate * 100.0),
                format!("{:.2}", s.mean_overshoot),
                format!("{:.0}%", s.gave_up_rate * 100.0),
                s.decisions.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(
            &[
                "method",
                "target met",
                "mean overshoot [machines]",
                "gave up",
                "decisions"
            ],
            &rows
        )
    );
    println!(
        "Reading: an inaccurate model picks allocations that miss the target or waste\n\
         machines (\u{a7}IV-C1's motivation for accurate few-shot prediction).\n"
    );
}

/// Table I: model configuration and training grid.
pub fn table1(seed: u64) {
    println!("## Table I — Model configuration and training\n");
    let c = BellamyConfig::default();
    let rows = vec![
        vec!["Hidden-Dim.".into(), c.hidden_dim.to_string()],
        vec!["Out-Dim.".into(), "1".into()],
        vec!["Decoding-Dim. (N)".into(), c.property_dim.to_string()],
        vec!["Encoding-Dim. (M)".into(), c.code_dim.to_string()],
        vec![
            "Scale-out f".into(),
            format!("3 -> {} -> {}", c.scale_out_hidden_dim, c.scale_out_dim),
        ],
        vec!["Combined r-Dim.".into(), c.combined_dim().to_string()],
        vec!["Batch size".into(), "64".into()],
        vec!["Optimizer".into(), "Adam".into()],
        vec![
            "Pre-training loss".into(),
            "Huber (runtime) + MSE (reconstruction)".into(),
        ],
        vec!["Pre-training epochs".into(), "2500".into()],
        vec!["Fine-tuning loss".into(), "Huber (runtime)".into()],
        vec!["Fine-tuning dropout".into(), "0%".into()],
        vec![
            "Fine-tuning LR".into(),
            "cyclical annealing in (1e-2, 1e-3)".into(),
        ],
        vec!["Fine-tuning weight decay".into(), "1e-3".into()],
        vec!["Fine-tuning epochs".into(), "max. 2500".into()],
        vec![
            "Stopping criterion".into(),
            "MAE <= 5, or no improvement in 1000 epochs".into(),
        ],
    ];
    println!("{}", report::render_table(&["parameter", "value"], &rows));

    println!("Pre-training search space (12 sampled configurations):\n");
    let space = SearchSpace::default();
    println!("  dropout       {:?}", space.dropouts);
    println!("  learning rate {:?}", space.learning_rates);
    println!("  weight decay  {:?}\n", space.weight_decays);
    let sampled = space.sample(12, 2500, 64, seed);
    let rows: Vec<Vec<String>> = sampled
        .iter()
        .enumerate()
        .map(|(i, c)| {
            vec![
                (i + 1).to_string(),
                format!("{}%", c.dropout * 100.0),
                format!("{:e}", c.lr),
                format!("{:e}", c.weight_decay),
            ]
        })
        .collect();
    println!(
        "{}",
        report::render_table(&["trial", "dropout", "lr", "weight decay"], &rows)
    );
}

/// Table II: the environment this reproduction runs on (the paper's table
/// describes the authors' testbed; absolute hardware differs by design).
pub fn table2() {
    println!("## Table II — Reproduction environment\n");
    let rows = vec![
        vec![
            "CPU threads".into(),
            bellamy_par::default_threads().to_string(),
        ],
        vec!["OS".into(), std::env::consts::OS.to_string()],
        vec!["Arch".into(), std::env::consts::ARCH.to_string()],
        vec![
            "Software".into(),
            "pure-Rust workspace (bellamy-* crates); no GPU, no BLAS".into(),
        ],
        vec![
            "Paper's testbed".into(),
            "Xeon Silver 4208, 45 GB RAM, Quadro RTX 5000; PyTorch 1.8".into(),
        ],
    ];
    println!("{}", report::render_table(&["resource", "details"], &rows));
}

/// Ablation: how stable are the headline comparisons under generator noise?
pub fn ablate_noise(_profile: Profile, seed: u64) {
    println!("## Ablation — result stability vs. measurement noise\n");
    let mut rows = Vec::new();
    for sigma in [0.01, 0.04, 0.10] {
        let gen = GeneratorConfig {
            noise_sigma: sigma,
            ..GeneratorConfig::seeded(seed)
        };
        let c3o = generate_c3o(&gen);
        let cfg = AdhocConfig {
            algorithms: vec![Algorithm::Sgd],
            ..AdhocConfig::quick(seed)
        };
        let records = run_adhoc(&c3o, &cfg).records;
        let mae = report::mae_by_method(&records, Some(Algorithm::Sgd), Task::Interpolation);
        let get = |m: &str| mae.get(m).copied().unwrap_or(f64::NAN);
        rows.push(vec![
            format!("{sigma:.2}"),
            format!("{:.1}", get("NNLS")),
            format!("{:.1}", get("Bellamy (local)")),
            format!("{:.1}", get("Bellamy (full)")),
            format!(
                "{}",
                if get("Bellamy (full)") < get("NNLS") {
                    "yes"
                } else {
                    "no"
                }
            ),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            &[
                "noise sigma",
                "NNLS MAE",
                "local MAE",
                "full MAE",
                "full beats NNLS"
            ],
            &rows
        )
    );
    println!("Reading: the ordering should hold across noise levels (SGD, interpolation).\n");
}

/// Ablation: target scaling on/off (DESIGN.md §7 divergence #1).
pub fn ablate_target_scaling(wb: &Workbench, seed: u64) {
    println!("## Ablation — target scaling\n");
    let ctx = wb.c3o.contexts_for(Algorithm::Sgd)[0];
    let samples: Vec<TrainingSample> = wb
        .c3o
        .runs_for_context(ctx.id)
        .iter()
        .map(|r| TrainingSample::from_run(ctx, r))
        .collect();
    let ft = FinetuneConfig {
        max_epochs: 400,
        patience: 250,
        ..FinetuneConfig::default()
    };
    let mut rows = Vec::new();
    for scale in [true, false] {
        let cfg = BellamyConfig {
            scale_targets: scale,
            ..BellamyConfig::default()
        };
        let mut model = Bellamy::new(cfg, seed);
        let report = bellamy_core::finetune::fit_local(&mut model, &samples, &ft, seed);
        rows.push(vec![
            scale.to_string(),
            report.epochs.to_string(),
            format!("{:.1}", report.best_mae_s),
        ]);
    }
    println!(
        "{}",
        report::render_table(&["scale targets", "epochs", "best MAE [s]"], &rows)
    );
    println!(
        "Reading: with raw-second targets Adam needs many more epochs (or stalls) at\n\
         the same budget — the motivation for divergence #1.\n"
    );
}

/// Ablation: the unfreeze budget of the staged fine-tuning schedule.
pub fn ablate_unfreeze(wb: &Workbench, seed: u64) {
    println!("## Ablation — unfreeze budget (epochs / n_samples before f trains)\n");
    let ctxs = wb.c3o.contexts_for(Algorithm::KMeans);
    let target = ctxs[0];
    let pretrain_samples: Vec<TrainingSample> = wb
        .c3o
        .runs_for_algorithm_excluding(Algorithm::KMeans, Some(target.id))
        .iter()
        .map(|r| TrainingSample::from_run(&wb.c3o.contexts[r.context_id], r))
        .collect();
    let mut base = Bellamy::new(BellamyConfig::default(), seed);
    bellamy_core::train::pretrain(
        &mut base,
        &pretrain_samples,
        &PretrainConfig {
            epochs: 120,
            ..PretrainConfig::default()
        },
        seed,
    );
    let few: Vec<TrainingSample> = wb
        .c3o
        .runs_for_context(target.id)
        .iter()
        .step_by(7)
        .map(|r| TrainingSample::from_run(target, r))
        .collect();

    let mut rows = Vec::new();
    for budget in [0usize, 100, 250, 1000] {
        let ft = FinetuneConfig {
            max_epochs: 400,
            patience: 250,
            unfreeze_budget: budget,
            ..FinetuneConfig::default()
        };
        let mut model = base.clone_model();
        let rep = bellamy_core::finetune::fine_tune(
            &mut model,
            &few,
            &ft,
            bellamy_core::ReuseStrategy::PartialUnfreeze,
            seed,
        );
        rows.push(vec![
            budget.to_string(),
            ft.unfreeze_epoch(few.len()).to_string(),
            rep.epochs.to_string(),
            format!("{:.1}", rep.best_mae_s),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            &["budget", "unfreeze epoch", "epochs trained", "best MAE [s]"],
            &rows
        )
    );
    println!("Reading: moderate budgets protect the pre-trained f without blocking adaptation.\n");
}

/// Ablation: signed vs unsigned hashing in the property encoder.
pub fn ablate_signed_hash() {
    println!("## Ablation — hashing-vectorizer alternate sign\n");
    use bellamy_encoding::HashingVectorizer;
    let inputs = [
        "m4.xlarge",
        "m4.2xlarge",
        "c4.xlarge",
        "c4.2xlarge",
        "r4.xlarge",
        "r4.2xlarge",
        "--iterations 25",
        "--iterations 50",
        "--iterations 100",
        "--k 4 --iterations 10",
        "--k 16 --iterations 50",
    ];
    let mut rows = Vec::new();
    for signed in [true, false] {
        let h = HashingVectorizer::new(39, 1, 3, signed);
        let vecs: Vec<Vec<f64>> = inputs.iter().map(|s| h.transform(s)).collect();
        // Smallest pairwise distance: how separable the encodings stay.
        let mut min_dist = f64::INFINITY;
        let mut mean_dist = 0.0;
        let mut pairs = 0;
        for i in 0..vecs.len() {
            for j in (i + 1)..vecs.len() {
                let d: f64 = vecs[i]
                    .iter()
                    .zip(vecs[j].iter())
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                min_dist = min_dist.min(d);
                mean_dist += d;
                pairs += 1;
            }
        }
        rows.push(vec![
            signed.to_string(),
            format!("{:.3}", min_dist),
            format!("{:.3}", mean_dist / pairs as f64),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            &["alternate sign", "min pairwise dist", "mean pairwise dist"],
            &rows
        )
    );
    println!(
        "Reading: signing preserves (or improves) separation under collisions, which\n\
         is why sklearn defaults to it and the encoder keeps it on.\n"
    );
}

/// Extension (paper §V future work): one model across algorithms.
///
/// "Since some processing algorithms showed a similar scale-out behavior, we
/// further plan to research ways of building models across algorithms." The
/// job name is already an optional property, so the architecture supports
/// this unchanged: pre-train one model on *all* algorithms and compare its
/// fine-tuned accuracy against per-algorithm pre-training.
pub fn ext_cross_algorithm(wb: &Workbench, seed: u64) {
    println!("## Extension — cross-algorithm pre-training (paper \u{a7}V future work)\n");
    let pretrain_cfg = PretrainConfig {
        epochs: 300,
        ..PretrainConfig::default()
    };
    let ft = FinetuneConfig {
        max_epochs: 500,
        patience: 300,
        ..FinetuneConfig::default()
    };
    let mut rows = Vec::new();
    for algorithm in Algorithm::ALL {
        let target_id = bellamy_eval::adhoc::choose_contexts(&wb.c3o, algorithm, 1, seed)[0];
        let target = &wb.c3o.contexts[target_id];
        let props = bellamy_core::context_properties(target);

        let per_algo: Vec<TrainingSample> = wb
            .c3o
            .runs_for_algorithm_excluding(algorithm, Some(target_id))
            .iter()
            .map(|r| TrainingSample::from_run(&wb.c3o.contexts[r.context_id], r))
            .collect();
        let cross_algo: Vec<TrainingSample> = wb
            .c3o
            .runs
            .iter()
            .filter(|r| r.context_id != target_id)
            .map(|r| TrainingSample::from_run(&wb.c3o.contexts[r.context_id], r))
            .collect();

        let few: Vec<TrainingSample> = wb
            .c3o
            .runs_for_context(target_id)
            .iter()
            .step_by(10)
            .map(|r| TrainingSample::from_run(target, r))
            .collect();
        let eval: Vec<TrainingSample> = wb
            .c3o
            .runs_for_context(target_id)
            .iter()
            .map(|r| TrainingSample::from_run(target, r))
            .collect();

        let mut maes = Vec::new();
        for corpus in [&per_algo, &cross_algo] {
            let mut model = Bellamy::new(BellamyConfig::default(), seed);
            bellamy_core::train::pretrain(&mut model, corpus, &pretrain_cfg, seed);
            bellamy_core::finetune::fine_tune(
                &mut model,
                &few,
                &ft,
                bellamy_core::ReuseStrategy::PartialUnfreeze,
                seed,
            );
            let mae = eval
                .iter()
                .map(|s| (model.predict(s.scale_out, &props).expect("fitted") - s.runtime_s).abs())
                .sum::<f64>()
                / eval.len() as f64;
            maes.push(mae);
        }
        rows.push(vec![
            algorithm.to_string(),
            format!("{:.1}", maes[0]),
            format!("{:.1}", maes[1]),
        ]);
    }
    println!(
        "{}",
        report::render_table(
            &[
                "algorithm",
                "per-algorithm pre-training MAE [s]",
                "all-algorithms MAE [s]"
            ],
            &rows
        )
    );
    println!(
        "Reading: the architecture absorbs cross-algorithm data (the job name is an\n\
         optional property); whether it helps depends on how similar the scale-out\n\
         behaviours are \u{2014} the hypothesis the paper leaves as future work.\n"
    );
}

/// Ablation: Adam (Table I) vs SGD+momentum for fine-tuning.
pub fn ablate_optimizer(wb: &Workbench, seed: u64) {
    println!("## Ablation — fine-tuning optimizer (Adam vs SGD+momentum)\n");
    use bellamy_nn::OptimizerChoice;
    let ctx = wb.c3o.contexts_for(Algorithm::Sgd)[1];
    let samples: Vec<TrainingSample> = wb
        .c3o
        .runs_for_context(ctx.id)
        .iter()
        .map(|r| TrainingSample::from_run(ctx, r))
        .collect();
    let mut rows = Vec::new();
    for (name, choice) in [
        ("Adam", OptimizerChoice::Adam),
        ("SGD (momentum 0.9)", OptimizerChoice::Sgd { momentum: 0.9 }),
        ("SGD (no momentum)", OptimizerChoice::Sgd { momentum: 0.0 }),
    ] {
        let ft = FinetuneConfig {
            max_epochs: 400,
            patience: 250,
            optimizer: choice,
            ..FinetuneConfig::default()
        };
        let mut model = Bellamy::new(BellamyConfig::default(), seed);
        let rep = bellamy_core::finetune::fit_local(&mut model, &samples, &ft, seed);
        rows.push(vec![
            name.to_string(),
            rep.epochs.to_string(),
            format!("{:.1}", rep.best_mae_s),
        ]);
    }
    println!(
        "{}",
        report::render_table(&["optimizer", "epochs", "best MAE [s]"], &rows)
    );
    println!("Reading: Table I's Adam choice converges fastest on this architecture.\n");
}

/// Ablation: hyperparameter-search trial budget.
pub fn ablate_search_budget(wb: &Workbench, seed: u64) {
    println!("## Ablation — hyperparameter search budget\n");
    let mut samples: Vec<TrainingSample> = Vec::new();
    for ctx in wb.c3o.contexts_for(Algorithm::Grep).into_iter().take(4) {
        samples.extend(
            wb.c3o
                .runs_for_context(ctx.id)
                .iter()
                .map(|r| TrainingSample::from_run(ctx, r)),
        );
    }
    let mut rows = Vec::new();
    for trials in [1usize, 3, 6, 12] {
        let (_, rep) = search_pretrain(
            &BellamyConfig::default(),
            &samples,
            &SearchSpace::default(),
            trials,
            40,
            seed,
            bellamy_par::default_threads(),
        )
        .expect("the Table I grid has finite trials");
        let best = rep.trials[rep.best_index].val_mae_s;
        rows.push(vec![trials.to_string(), format!("{best:.1}")]);
    }
    println!(
        "{}",
        report::render_table(&["trials", "best val MAE [s]"], &rows)
    );
    println!("Reading: returns diminish quickly; 12 of 27 cells is a comfortable budget.\n");
}
