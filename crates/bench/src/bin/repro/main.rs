//! Regenerates every table and figure of the paper's evaluation (§IV).
//!
//! ```text
//! repro -- <experiment> [--profile quick|medium|paper] [--seed N] [--splits N] [--json PATH]
//!
//! experiments:
//!   datasets            trace summary (§IV-B counts and noise levels)
//!   fig2                normalized runtime variance across contexts
//!   fig4                auto-encoder codes of two SGD contexts
//!   adhoc               Figs. 5/6/7 + fitting times (one run, all outputs)
//!   fig5-interp         interpolation MRE series only
//!   fig5-extrap         extrapolation MRE series only
//!   fig6                interpolation MAE bars only
//!   fig7                eCDF of fine-tuning epochs only
//!   fit-time            mean fitting time per method only
//!   crossenv            Fig. 8 + cross-environment fitting times
//!   fig8                alias: the Fig. 8 section of crossenv
//!   fit-time-crossenv   alias: the timing section of crossenv
//!   allocation          resource-selection quality (success rate, overshoot)
//!   table1              model configuration & search space
//!   table2              execution environment of this reproduction
//!   ext-cross-algorithm one model across algorithms (paper §V future work)
//!   ablate-optimizer    Adam vs SGD for fine-tuning
//!   ablate-noise        result stability vs. generator noise
//!   ablate-target-scaling  effect of target scaling on fine-tuning
//!   ablate-unfreeze     effect of the unfreeze budget
//!   ablate-signed-hash  hashing-vectorizer signing ablation
//!   ablate-search-budget   hyperparameter-search trial budget
//!   all                 everything above in order
//! ```

use bellamy_eval::{report, Profile};
use bench::Workbench;
use std::time::Instant;

mod repro_impl;
use repro_impl::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = None;
    let mut profile = Profile::Quick;
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut splits_override: Option<usize> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--profile" => {
                i += 1;
                profile = args
                    .get(i)
                    .and_then(|p| Profile::from_name(p))
                    .unwrap_or_else(|| die("expected --profile quick|paper"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("expected --seed <u64>"));
            }
            "--splits" => {
                i += 1;
                splits_override = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("expected --splits <usize>")),
                );
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --json <path>")),
                );
            }
            other if experiment.is_none() && !other.starts_with("--") => {
                experiment = Some(other.to_string());
            }
            other => die(&format!("unknown argument: {other}")),
        }
        i += 1;
    }

    let experiment =
        experiment.unwrap_or_else(|| die("no experiment given; see --help text in the source"));
    let start = Instant::now();
    let wb = Workbench::new(seed);
    println!(
        "# bellamy-repro: experiment={experiment} profile={profile:?} seed={seed}\n\
         # datasets: C3O {} contexts / {} runs, Bell {} contexts / {} runs\n",
        wb.c3o.contexts.len(),
        wb.c3o.runs.len(),
        wb.bell.contexts.len(),
        wb.bell.runs.len()
    );

    match experiment.as_str() {
        "datasets" => datasets(&wb),
        "fig2" => fig2(&wb),
        "fig4" => fig4(&wb, profile, seed),
        "adhoc" => {
            let records = run_adhoc_records(&wb, profile, seed, splits_override);
            maybe_dump(&json_path, &records);
            fig5(&records, bellamy_eval::Task::Interpolation);
            fig5(&records, bellamy_eval::Task::Extrapolation);
            fig6(&records);
            fig7(&records);
            fit_time(&records, "ad hoc cross-context");
        }
        "fig5-interp" => {
            let records = run_adhoc_records(&wb, profile, seed, splits_override);
            maybe_dump(&json_path, &records);
            fig5(&records, bellamy_eval::Task::Interpolation);
        }
        "fig5-extrap" => {
            let records = run_adhoc_records(&wb, profile, seed, splits_override);
            maybe_dump(&json_path, &records);
            fig5(&records, bellamy_eval::Task::Extrapolation);
        }
        "fig6" => {
            let records = run_adhoc_records(&wb, profile, seed, splits_override);
            maybe_dump(&json_path, &records);
            fig6(&records);
        }
        "fig7" => {
            let records = run_adhoc_records(&wb, profile, seed, splits_override);
            maybe_dump(&json_path, &records);
            fig7(&records);
        }
        "fit-time" => {
            let records = run_adhoc_records(&wb, profile, seed, splits_override);
            maybe_dump(&json_path, &records);
            fit_time(&records, "ad hoc cross-context");
        }
        "crossenv" | "fig8" | "fit-time-crossenv" => {
            let records = run_crossenv_records(&wb, profile, seed, splits_override);
            maybe_dump(&json_path, &records);
            if experiment != "fit-time-crossenv" {
                fig8(&records);
            }
            if experiment != "fig8" {
                fit_time(&records, "cross-environment");
            }
        }
        "allocation" => allocation(&wb, profile, seed),
        "table1" => table1(seed),
        "table2" => table2(),
        "ext-cross-algorithm" => ext_cross_algorithm(&wb, seed),
        "ablate-optimizer" => ablate_optimizer(&wb, seed),
        "ablate-noise" => ablate_noise(profile, seed),
        "ablate-target-scaling" => ablate_target_scaling(&wb, seed),
        "ablate-unfreeze" => ablate_unfreeze(&wb, seed),
        "ablate-signed-hash" => ablate_signed_hash(),
        "ablate-search-budget" => ablate_search_budget(&wb, seed),
        "all" => {
            datasets(&wb);
            fig2(&wb);
            fig4(&wb, profile, seed);
            let records = run_adhoc_records(&wb, profile, seed, splits_override);
            fig5(&records, bellamy_eval::Task::Interpolation);
            fig5(&records, bellamy_eval::Task::Extrapolation);
            fig6(&records);
            fig7(&records);
            fit_time(&records, "ad hoc cross-context");
            let cross = run_crossenv_records(&wb, profile, seed, splits_override);
            fig8(&cross);
            fit_time(&cross, "cross-environment");
            allocation(&wb, profile, seed);
            table1(seed);
            table2();
            ext_cross_algorithm(&wb, seed);
            ablate_optimizer(&wb, seed);
            ablate_noise(profile, seed);
            ablate_target_scaling(&wb, seed);
            ablate_unfreeze(&wb, seed);
            ablate_signed_hash();
            ablate_search_budget(&wb, seed);
        }
        other => die(&format!("unknown experiment: {other}")),
    }

    println!("\n# done in {:.1}s", start.elapsed().as_secs_f64());
}

fn maybe_dump(path: &Option<String>, records: &[bellamy_eval::PredictionRecord]) {
    if let Some(p) = path {
        std::fs::write(p, report::records_to_json(records)).expect("write json");
        println!("# raw records written to {p}\n");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
