//! Shared helpers for the `repro` binary and the Criterion benches.

pub mod hub;
pub mod predict;
pub mod serve;
pub mod train_step;

use bellamy_data::{generate_bell, generate_c3o, Dataset, GeneratorConfig};

/// The datasets every experiment runs on (seeded, deterministic).
pub struct Workbench {
    /// Synthetic C3O traces.
    pub c3o: Dataset,
    /// Synthetic Bell traces.
    pub bell: Dataset,
    /// The generator configuration used.
    pub gen: GeneratorConfig,
}

impl Workbench {
    /// Generates both datasets from a master seed.
    pub fn new(seed: u64) -> Self {
        let gen = GeneratorConfig::seeded(seed);
        Self {
            c3o: generate_c3o(&gen),
            bell: generate_bell(&gen),
            gen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_builds_valid_datasets() {
        let wb = Workbench::new(42);
        assert!(wb.c3o.validate().is_ok());
        assert!(wb.bell.validate().is_ok());
        assert_eq!(wb.c3o.contexts.len(), 155);
        assert_eq!(wb.bell.contexts.len(), 3);
    }
}
