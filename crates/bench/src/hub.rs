//! Hub benchmark harness for `bench_snapshot`: recall latency (memory and
//! disk) and concurrent shared-snapshot predict throughput at 1/2/4
//! threads — the serving profile the model-state split exists for.

use bellamy_core::train::pretrain;
use bellamy_core::{
    context_properties, Bellamy, BellamyConfig, ContextProperties, ModelHub, ModelKey, ModelState,
    Predictor, PretrainConfig, RecallMode, TrainingSample,
};
use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Queries per sweep in the throughput measurement (the §IV
/// allocation-search shape).
pub const SWEEP: usize = 64;

/// Disk recall latency for one [`RecallMode`].
pub struct DiskRecall {
    /// `RecallMode::as_str()` of the measured mode.
    pub mode: &'static str,
    /// µs for the very first fresh-hub recall of the run (mapping setup /
    /// first pass over the bytes; the page cache is hot in both modes, so
    /// this is software cold-start, not major-fault cost).
    pub cold_us: f64,
    /// Mean µs over subsequent fresh-hub recalls.
    pub warm_us: f64,
}

/// Results of one hub benchmark run.
pub struct HubBenchResult {
    /// Mean µs for a memory recall (`Arc` clone out of the registry).
    pub recall_memory_us: f64,
    /// Cold/warm disk recall per [`RecallMode`] (fresh hub instance each
    /// iteration: checkpoint load or map + state build — the restart path).
    pub disk: Vec<DiskRecall>,
    /// `(threads, queries_per_second)` for the concurrent shared-snapshot
    /// sweep workload.
    pub concurrent_qps: Vec<(usize, f64)>,
}

/// Builds a disk-backed hub with one pretrained model and measures recall
/// latency plus concurrent predict throughput. The directory is removed
/// afterwards.
pub fn run() -> HubBenchResult {
    let data = generate_c3o(&GeneratorConfig::seeded(5));
    let target = data.contexts_for(Algorithm::Sgd)[0];
    let history: Vec<TrainingSample> = data
        .runs_for_algorithm_excluding(Algorithm::Sgd, Some(target.id))
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect();
    let mut model = Bellamy::new(BellamyConfig::default(), 5);
    pretrain(
        &mut model,
        &history,
        &PretrainConfig {
            epochs: 10,
            ..PretrainConfig::default()
        },
        5,
    );

    let dir = std::env::temp_dir().join(format!("bellamy-bench-hub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let key = ModelKey::new("sgd", "bench-runtime", &BellamyConfig::default());
    let hub = ModelHub::at(&dir).expect("create hub dir");
    hub.publish(&key, &model).expect("publish");

    // Memory recall: Arc clone out of the registry map.
    let iters = 10_000;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(hub.recall(&key).expect("memory recall"));
    }
    let recall_memory_us = start.elapsed().as_secs_f64() / iters as f64 * 1e6;

    // Disk recall per mode: a fresh hub instance per iteration (checkpoint
    // load or map + state build), the restart path.
    let disk = [RecallMode::Deserialize, RecallMode::Mmap]
        .iter()
        .map(|&mode| disk_recall_latency(&dir, &key, mode))
        .collect();

    // Concurrent predict throughput on one shared snapshot.
    let state = hub.recall(&key).expect("recall");
    let props = context_properties(target);
    let concurrent_qps = [1usize, 2, 4]
        .iter()
        .map(|&threads| (threads, sweep_throughput(&state, &props, threads)))
        .collect();

    std::fs::remove_dir_all(&dir).ok();
    HubBenchResult {
        recall_memory_us,
        disk,
        concurrent_qps,
    }
}

/// Cold (first) and warm (mean of 50 subsequent) fresh-hub disk recall in
/// `mode`.
fn disk_recall_latency(dir: &Path, key: &ModelKey, mode: RecallMode) -> DiskRecall {
    let open = || {
        ModelHub::at(dir)
            .expect("open hub dir")
            .with_recall_mode(mode)
    };
    let start = Instant::now();
    std::hint::black_box(open().recall(key).expect("cold disk recall"));
    let cold_us = start.elapsed().as_secs_f64() * 1e6;

    let iters = 50;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(open().recall(key).expect("warm disk recall"));
    }
    let warm_us = start.elapsed().as_secs_f64() / iters as f64 * 1e6;
    DiskRecall {
        mode: mode.as_str(),
        cold_us,
        warm_us,
    }
}

/// Total queries/second over `threads` workers, each driving its own
/// predictor through [`SWEEP`]-query sweeps of one shared snapshot.
fn sweep_throughput(state: &Arc<ModelState>, props: &ContextProperties, threads: usize) -> f64 {
    const SWEEPS_PER_THREAD: usize = 400;
    let scale_outs: Vec<f64> = (0..SWEEP).map(|i| 2.0 + (i % 11) as f64).collect();

    // Warm the shared encoding cache once so every thread measures the
    // steady state.
    Predictor::new().predict_sweep(state, props, &scale_outs);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let state = Arc::clone(state);
            let scale_outs = &scale_outs;
            scope.spawn(move || {
                let mut predictor = Predictor::new();
                let mut acc = 0.0;
                for _ in 0..SWEEPS_PER_THREAD {
                    acc += predictor
                        .predict_sweep(&state, props, scale_outs)
                        .iter()
                        .sum::<f64>();
                }
                std::hint::black_box(acc);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    (threads * SWEEPS_PER_THREAD * SWEEP) as f64 / elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_bench_produces_sane_numbers() {
        let r = run();
        assert!(r.recall_memory_us > 0.0);
        assert_eq!(r.disk.len(), 2);
        assert_eq!(r.disk[0].mode, "deserialize");
        assert_eq!(r.disk[1].mode, "mmap");
        for d in &r.disk {
            assert!(d.cold_us > 0.0, "{} cold recall unmeasured", d.mode);
            assert!(d.warm_us > r.recall_memory_us, "{} mode", d.mode);
        }
        assert_eq!(r.concurrent_qps.len(), 3);
        for (threads, qps) in &r.concurrent_qps {
            assert!(*qps > 0.0, "{threads} threads produced no throughput");
        }
    }
}
