//! Serving benchmark harness for `bench_snapshot` and `benches/serve.rs`:
//! per-query latency (mean, p50, p99) and total throughput of single-query
//! serving at 1/2/4 submitting threads, comparing the direct
//! per-thread-predictor path against the cross-caller micro-batched
//! [`Service`] path.
//!
//! Direct serving is the per-thread optimum (no handoffs, no locks);
//! micro-batching pays two condvar handoffs per query to amortize graph
//! setup across callers. On one core the two roughly tie; with real
//! parallelism the batcher wins because concurrent callers' queries
//! coalesce into one forward pass. The tail percentiles are what the
//! robustness layer watches: shedding and deadline budgets are tuned
//! against p99, not the mean. The batcher's robustness counters (shed /
//! panics / restarts) ride along in the result — all zero in a healthy
//! run, so any non-zero value in a snapshot is itself a regression signal.

use crate::predict::{workload, PredictWorkload};
use bellamy_core::{BatcherStats, Predictor, Service};
use bellamy_telemetry::nearest_rank;
use std::sync::Arc;
use std::time::Instant;

/// Queries each submitting thread issues per measurement.
pub const QUERIES_PER_THREAD: usize = 2000;

/// One (mode, thread-count) measurement.
#[derive(Debug, Clone)]
pub struct ServeBenchRow {
    /// `"direct"` or `"microbatched"`.
    pub mode: &'static str,
    /// Submitting threads.
    pub threads: usize,
    /// Mean wall-clock µs per query, per submitting thread.
    pub us_per_query: f64,
    /// Median per-query latency in µs (across all threads' queries).
    pub p50_us: f64,
    /// 99th-percentile per-query latency in µs.
    pub p99_us: f64,
    /// Total queries per second across all threads.
    pub qps: f64,
    /// Mean queries per flushed batch (1.0 for direct serving).
    pub mean_batch: f64,
}

/// All rows of one serving benchmark run.
pub struct ServeBenchResult {
    /// Measurements for both modes at 1/2/4 threads.
    pub rows: Vec<ServeBenchRow>,
    /// Robustness counters summed over the micro-batched runs: queries
    /// shed at admission, deadline revocations, absorbed forward-pass
    /// panics, and supervisor loop restarts. A healthy benchmark records
    /// zeros; anything else is a regression worth investigating.
    pub shed: u64,
    /// See [`ServeBenchResult::shed`].
    pub deadline_expired: u64,
    /// See [`ServeBenchResult::shed`].
    pub panics: u64,
    /// See [`ServeBenchResult::shed`].
    pub restarts: u64,
}

impl ServeBenchResult {
    /// The `(direct, microbatched)` qps pair at `threads`.
    pub fn qps_pair(&self, threads: usize) -> Option<(f64, f64)> {
        let find = |mode: &str| {
            self.rows
                .iter()
                .find(|r| r.mode == mode && r.threads == threads)
                .map(|r| r.qps)
        };
        Some((find("direct")?, find("microbatched")?))
    }
}

/// Runs the serving benchmark on the standard pre-trained SGD workload.
pub fn run() -> ServeBenchResult {
    let w = workload();
    let mut rows = Vec::new();
    let mut counters = BatcherStats::default();
    for &threads in &[1usize, 2, 4] {
        rows.push(run_direct(&w, threads));
        let (row, stats) = run_microbatched(&w, threads);
        rows.push(row);
        counters.shed += stats.shed;
        counters.deadline_expired += stats.deadline_expired;
        counters.panics += stats.panics;
        counters.restarts += stats.restarts;
    }
    ServeBenchResult {
        rows,
        shed: counters.shed,
        deadline_expired: counters.deadline_expired,
        panics: counters.panics,
        restarts: counters.restarts,
    }
}

/// Direct serving: each thread owns a `Predictor` and queries the shared
/// snapshot one call at a time.
fn run_direct(w: &PredictWorkload, threads: usize) -> ServeBenchRow {
    let state = Arc::clone(&w.state);
    let props = &w.props;
    let mut latencies: Vec<u64> = Vec::with_capacity(threads * QUERIES_PER_THREAD);
    // Per-thread warm-up, then a barrier-free timed run (threads start
    // within microseconds of each other; the workload dwarfs the skew).
    let mut elapsed = 0.0;
    std::thread::scope(|scope| {
        let start = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let state = Arc::clone(&state);
                scope.spawn(move || {
                    let mut predictor = Predictor::new();
                    for i in 0..200 {
                        std::hint::black_box(predictor.predict_one(
                            &state,
                            2.0 + (i % 11) as f64,
                            props,
                        ));
                    }
                    let mut lat = Vec::with_capacity(QUERIES_PER_THREAD);
                    let mut acc = 0.0;
                    for i in 0..QUERIES_PER_THREAD {
                        let issued = Instant::now();
                        acc += predictor.predict_one(&state, 2.0 + (i % 11) as f64, props);
                        lat.push(issued.elapsed().as_nanos() as u64);
                    }
                    std::hint::black_box(acc);
                    lat
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("bench thread"));
        }
        elapsed = start.elapsed().as_secs_f64();
    });
    row("direct", threads, elapsed, 1.0, &mut latencies)
}

/// Micro-batched serving: every thread submits single queries through
/// clones of one [`Service`] client; the serving loop coalesces them.
/// Also returns the batcher's counter delta for the robustness summary.
fn run_microbatched(w: &PredictWorkload, threads: usize) -> (ServeBenchRow, BatcherStats) {
    let service = Service::builder().build().expect("in-memory service");
    let client = service.client_for_state(Arc::clone(&w.state));
    let props = &w.props;
    let before = client.batcher_stats();
    let mut latencies: Vec<u64> = Vec::with_capacity(threads * QUERIES_PER_THREAD);
    let mut elapsed = 0.0;
    std::thread::scope(|scope| {
        let start = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let client = client.clone();
                scope.spawn(move || {
                    for i in 0..200 {
                        std::hint::black_box(
                            client
                                .predict(2.0 + (i % 11) as f64, props)
                                .expect("service is live"),
                        );
                    }
                    let mut lat = Vec::with_capacity(QUERIES_PER_THREAD);
                    let mut acc = 0.0;
                    for i in 0..QUERIES_PER_THREAD {
                        let issued = Instant::now();
                        acc += client
                            .predict(2.0 + (i % 11) as f64, props)
                            .expect("service is live");
                        lat.push(issued.elapsed().as_nanos() as u64);
                    }
                    std::hint::black_box(acc);
                    lat
                })
            })
            .collect();
        for handle in handles {
            latencies.extend(handle.join().expect("bench thread"));
        }
        elapsed = start.elapsed().as_secs_f64();
    });
    let stats = client.batcher_stats();
    let batches = (stats.batches - before.batches).max(1);
    let queries = stats.queries - before.queries;
    let delta = BatcherStats {
        shed: stats.shed - before.shed,
        deadline_expired: stats.deadline_expired - before.deadline_expired,
        panics: stats.panics - before.panics,
        restarts: stats.restarts - before.restarts,
        ..BatcherStats::default()
    };
    (
        row(
            "microbatched",
            threads,
            elapsed,
            queries as f64 / batches as f64,
            &mut latencies,
        ),
        delta,
    )
}

/// Cost of the telemetry instrumentation on the steady-state submit path:
/// single-thread µs/query with latency timing disabled vs enabled.
#[derive(Debug, Clone)]
pub struct TelemetryOverheadRow {
    /// Best-of-run µs per query with `bellamy_telemetry::set_timing_enabled(false)`.
    pub uninstrumented_us: f64,
    /// Best-of-run µs per query with timing enabled (the default).
    pub instrumented_us: f64,
    /// `(instrumented - uninstrumented) / uninstrumented * 100`. Can dip
    /// slightly negative on a noisy host; the acceptance bound is ≤ 2%.
    pub overhead_pct: f64,
}

/// Measures the submit-path cost of the latency-timing instrumentation
/// (the only telemetry the toggle gates — counters always run, exactly as
/// they did before the telemetry subsystem existed). The timing itself is
/// sampled 1-in-8 inside the batcher, so the ON side pays one sampler
/// `fetch_add` per query plus an amortized `Instant` pair. OFF/ON runs are
/// interleaved and each side keeps its best of five windows, cancelling
/// frequency drift and background noise on shared hosts.
pub fn measure_telemetry_overhead() -> TelemetryOverheadRow {
    let w = workload();
    let service = Service::builder().build().expect("in-memory service");
    let client = service.client_for_state(Arc::clone(&w.state));
    let props = &w.props;
    for i in 0..200 {
        std::hint::black_box(
            client
                .predict(2.0 + (i % 11) as f64, props)
                .expect("service is live"),
        );
    }
    let time_window = || {
        let start = Instant::now();
        let mut acc = 0.0;
        for i in 0..QUERIES_PER_THREAD {
            acc += client
                .predict(2.0 + (i % 11) as f64, props)
                .expect("service is live");
        }
        std::hint::black_box(acc);
        start.elapsed().as_secs_f64() / QUERIES_PER_THREAD as f64 * 1e6
    };
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..5 {
        bellamy_telemetry::set_timing_enabled(false);
        best_off = best_off.min(time_window());
        bellamy_telemetry::set_timing_enabled(true);
        best_on = best_on.min(time_window());
    }
    TelemetryOverheadRow {
        uninstrumented_us: best_off,
        instrumented_us: best_on,
        overhead_pct: (best_on - best_off) / best_off * 100.0,
    }
}

/// Nearest-rank percentile over a *sorted* nanosecond sample, in µs. The
/// rank selection is `bellamy_telemetry::nearest_rank` — the same shared
/// implementation the telemetry histograms use — so bench and runtime
/// percentiles can never disagree on convention.
fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    nearest_rank(sorted, q) as f64 / 1e3
}

fn row(
    mode: &'static str,
    threads: usize,
    elapsed_s: f64,
    mean_batch: f64,
    latencies: &mut [u64],
) -> ServeBenchRow {
    latencies.sort_unstable();
    // Warm-up queries are inside the window; subtract them from neither
    // side — they are the same 10% for both modes.
    let per_thread = QUERIES_PER_THREAD + 200;
    ServeBenchRow {
        mode,
        threads,
        us_per_query: elapsed_s / per_thread as f64 * 1e6,
        p50_us: percentile_us(latencies, 0.50),
        p99_us: percentile_us(latencies, 0.99),
        qps: (threads * per_thread) as f64 / elapsed_s,
        mean_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_produces_sane_numbers() {
        let r = run();
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert!(
                row.qps > 0.0,
                "{} @ {}: no throughput",
                row.mode,
                row.threads
            );
            assert!(row.us_per_query > 0.0);
            assert!(
                row.p50_us > 0.0,
                "{} @ {}: empty p50",
                row.mode,
                row.threads
            );
            assert!(
                row.p99_us >= row.p50_us,
                "{} @ {}: p99 below p50",
                row.mode,
                row.threads
            );
            assert!(row.mean_batch >= 1.0);
        }
        let (direct, batched) = r.qps_pair(4).expect("4-thread rows exist");
        assert!(direct > 0.0 && batched > 0.0);
        // A healthy benchmark never sheds, revokes, or panics.
        assert_eq!(
            (r.shed, r.deadline_expired, r.panics, r.restarts),
            (0, 0, 0, 0),
            "robustness counters must stay zero under benchmark load"
        );
    }

    #[test]
    fn telemetry_overhead_is_finite_and_restores_timing() {
        let row = measure_telemetry_overhead();
        assert!(row.uninstrumented_us > 0.0);
        assert!(row.instrumented_us > 0.0);
        assert!(row.overhead_pct.is_finite());
        // The toggle must be back on after the measurement.
        assert!(bellamy_telemetry::timing_enabled());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut lat: Vec<u64> = (0..=100).map(|i| i * 1000).collect();
        lat.sort_unstable();
        assert_eq!(percentile_us(&lat, 0.0), 0.0);
        assert_eq!(percentile_us(&lat, 0.50), 50.0);
        assert_eq!(percentile_us(&lat, 0.99), 99.0);
        assert_eq!(percentile_us(&lat, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.99), 0.0);
    }
}
