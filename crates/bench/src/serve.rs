//! Serving benchmark harness for `bench_snapshot` and `benches/serve.rs`:
//! per-query latency and total throughput of single-query serving at
//! 1/2/4 submitting threads, comparing the direct per-thread-predictor
//! path against the cross-caller micro-batched [`Service`] path.
//!
//! Direct serving is the per-thread optimum (no handoffs, no locks);
//! micro-batching pays two condvar handoffs per query to amortize graph
//! setup across callers. On one core the two roughly tie; with real
//! parallelism the batcher wins because concurrent callers' queries
//! coalesce into one forward pass.

use crate::predict::{workload, PredictWorkload};
use bellamy_core::{Predictor, Service};
use std::sync::Arc;
use std::time::Instant;

/// Queries each submitting thread issues per measurement.
pub const QUERIES_PER_THREAD: usize = 2000;

/// One (mode, thread-count) measurement.
#[derive(Debug, Clone)]
pub struct ServeBenchRow {
    /// `"direct"` or `"microbatched"`.
    pub mode: &'static str,
    /// Submitting threads.
    pub threads: usize,
    /// Mean wall-clock µs per query, per submitting thread.
    pub us_per_query: f64,
    /// Total queries per second across all threads.
    pub qps: f64,
    /// Mean queries per flushed batch (1.0 for direct serving).
    pub mean_batch: f64,
}

/// All rows of one serving benchmark run.
pub struct ServeBenchResult {
    /// Measurements for both modes at 1/2/4 threads.
    pub rows: Vec<ServeBenchRow>,
}

impl ServeBenchResult {
    /// The `(direct, microbatched)` qps pair at `threads`.
    pub fn qps_pair(&self, threads: usize) -> Option<(f64, f64)> {
        let find = |mode: &str| {
            self.rows
                .iter()
                .find(|r| r.mode == mode && r.threads == threads)
                .map(|r| r.qps)
        };
        Some((find("direct")?, find("microbatched")?))
    }
}

/// Runs the serving benchmark on the standard pre-trained SGD workload.
pub fn run() -> ServeBenchResult {
    let w = workload();
    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4] {
        rows.push(run_direct(&w, threads));
        rows.push(run_microbatched(&w, threads));
    }
    ServeBenchResult { rows }
}

/// Direct serving: each thread owns a `Predictor` and queries the shared
/// snapshot one call at a time.
fn run_direct(w: &PredictWorkload, threads: usize) -> ServeBenchRow {
    let state = Arc::clone(&w.state);
    let props = &w.props;
    // Per-thread warm-up, then a barrier-free timed run (threads start
    // within microseconds of each other; the workload dwarfs the skew).
    let elapsed = std::thread::scope(|scope| {
        let start = Instant::now();
        for _ in 0..threads {
            let state = Arc::clone(&state);
            scope.spawn(move || {
                let mut predictor = Predictor::new();
                for i in 0..200 {
                    std::hint::black_box(predictor.predict_one(
                        &state,
                        2.0 + (i % 11) as f64,
                        props,
                    ));
                }
                let mut acc = 0.0;
                for i in 0..QUERIES_PER_THREAD {
                    acc += predictor.predict_one(&state, 2.0 + (i % 11) as f64, props);
                }
                std::hint::black_box(acc);
            });
        }
        drop(state);
        ScopeTimer { start }
    })
    .elapsed();
    row("direct", threads, elapsed, 1.0)
}

/// Micro-batched serving: every thread submits single queries through
/// clones of one [`Service`] client; the serving loop coalesces them.
fn run_microbatched(w: &PredictWorkload, threads: usize) -> ServeBenchRow {
    let service = Service::builder().build().expect("in-memory service");
    let client = service.client_for_state(Arc::clone(&w.state));
    let props = &w.props;
    let before = client.batcher_stats();
    let elapsed = std::thread::scope(|scope| {
        let start = Instant::now();
        for _ in 0..threads {
            let client = client.clone();
            scope.spawn(move || {
                for i in 0..200 {
                    std::hint::black_box(
                        client
                            .predict(2.0 + (i % 11) as f64, props)
                            .expect("service is live"),
                    );
                }
                let mut acc = 0.0;
                for i in 0..QUERIES_PER_THREAD {
                    acc += client
                        .predict(2.0 + (i % 11) as f64, props)
                        .expect("service is live");
                }
                std::hint::black_box(acc);
            });
        }
        ScopeTimer { start }
    })
    .elapsed();
    let stats = client.batcher_stats();
    let batches = (stats.batches - before.batches).max(1);
    let queries = stats.queries - before.queries;
    row(
        "microbatched",
        threads,
        elapsed,
        queries as f64 / batches as f64,
    )
}

/// Captures the scope start so the join (implicit at scope end) is part of
/// the measured window.
struct ScopeTimer {
    start: Instant,
}

impl ScopeTimer {
    fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

fn row(mode: &'static str, threads: usize, elapsed_s: f64, mean_batch: f64) -> ServeBenchRow {
    // Warm-up queries are inside the window; subtract them from neither
    // side — they are the same 10% for both modes.
    let per_thread = QUERIES_PER_THREAD + 200;
    ServeBenchRow {
        mode,
        threads,
        us_per_query: elapsed_s / per_thread as f64 * 1e6,
        qps: (threads * per_thread) as f64 / elapsed_s,
        mean_batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_produces_sane_numbers() {
        let r = run();
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            assert!(
                row.qps > 0.0,
                "{} @ {}: no throughput",
                row.mode,
                row.threads
            );
            assert!(row.us_per_query > 0.0);
            assert!(row.mean_batch >= 1.0);
        }
        let (direct, batched) = r.qps_pair(4).expect("4-thread rows exist");
        assert!(direct > 0.0 && batched > 0.0);
    }
}
