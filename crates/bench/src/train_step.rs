//! Shared harness for the train-step benchmark and the `bench_snapshot`
//! helper: builds the standard pre-training workload (all SGD history of
//! the synthetic C3O traces, minibatch 64 — the default `PretrainConfig`)
//! and steps it through either the seed-style legacy path or the
//! zero-allocation data-parallel path.

use bellamy_core::train::Pretrainer;
use bellamy_core::{Bellamy, BellamyConfig, PretrainConfig, TrainingSample};
use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};
use std::time::Instant;

/// Which implementation an [`EpochRunner`] exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepImpl {
    /// The seed implementation: fresh graph per step, per-property
    /// auto-encoder passes, allocating backward.
    Legacy,
    /// The zero-allocation path, sequential (one worker, one shard).
    Optimized,
    /// The zero-allocation path with data-parallel shards over the worker
    /// team (`0` = one shard/worker per core).
    Parallel {
        /// Worker/shard count (`0` = auto).
        workers: usize,
    },
}

impl StepImpl {
    /// Short label used in benchmark ids and the JSON snapshot.
    pub fn label(self) -> String {
        match self {
            StepImpl::Legacy => "legacy".to_string(),
            StepImpl::Optimized => "optimized_seq".to_string(),
            StepImpl::Parallel { workers: 0 } => "optimized_par_auto".to_string(),
            StepImpl::Parallel { workers } => format!("optimized_par_{workers}"),
        }
    }
}

/// The standard workload: every SGD run of the synthetic C3O traces
/// (810 samples → 13 minibatches of 64 per epoch).
pub fn workload() -> Vec<TrainingSample> {
    let data = generate_c3o(&GeneratorConfig::seeded(5));
    data.runs_for_algorithm_excluding(Algorithm::Sgd, None)
        .iter()
        .map(|r| TrainingSample::from_run(&data.contexts[r.context_id], r))
        .collect()
}

/// A model + trainer pair stepping one of the implementations.
pub struct EpochRunner {
    model: Bellamy,
    trainer: Pretrainer,
    which: StepImpl,
    /// Minibatch steps per epoch (for per-step time conversion).
    pub steps_per_epoch: usize,
}

impl EpochRunner {
    /// Builds the runner over `samples` with the default `PretrainConfig`
    /// (modulo worker/shard counts implied by `which`).
    pub fn new(samples: &[TrainingSample], which: StepImpl) -> Self {
        let (workers, shards) = match which {
            StepImpl::Legacy | StepImpl::Optimized => (1, 1),
            StepImpl::Parallel { workers } => (workers, workers),
        };
        let cfg = PretrainConfig {
            epochs: 0,
            workers,
            shards,
            ..PretrainConfig::default()
        };
        let mut model = Bellamy::new(BellamyConfig::default(), 5);
        let trainer = Pretrainer::new(&mut model, samples, &cfg, 5);
        let steps_per_epoch = samples.len().div_ceil(cfg.batch_size);
        Self {
            model,
            trainer,
            which,
            steps_per_epoch,
        }
    }

    /// Runs one epoch, returning its mean loss.
    pub fn run_epoch(&mut self) -> f64 {
        match self.which {
            StepImpl::Legacy => self.trainer.run_epoch_legacy(&mut self.model),
            _ => self.trainer.run_epoch(&mut self.model),
        }
    }

    /// Mean seconds per *minibatch step* over `epochs` epochs (after
    /// `warmup` unmeasured epochs).
    pub fn time_per_step(&mut self, warmup: usize, epochs: usize) -> f64 {
        for _ in 0..warmup {
            self.run_epoch();
        }
        let start = Instant::now();
        for _ in 0..epochs {
            self.run_epoch();
        }
        start.elapsed().as_secs_f64() / (epochs * self.steps_per_epoch) as f64
    }
}
