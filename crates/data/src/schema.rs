//! Core domain types: algorithms, environments, contexts, runs, datasets.

use crate::nodetypes::NodeType;
use serde::{Deserialize, Serialize};

/// The five dataflow algorithms covered by the C3O-datasets (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Algorithm {
    /// Distributed sort (trivial scale-out behaviour).
    Sort,
    /// Pattern search (trivial scale-out behaviour).
    Grep,
    /// Stochastic gradient descent for logistic regression (non-trivial).
    Sgd,
    /// K-Means clustering (non-trivial).
    KMeans,
    /// PageRank (mostly trivial in the paper's data).
    PageRank,
}

impl Algorithm {
    /// All algorithms in the C3O-datasets, in the paper's display order.
    pub const ALL: [Algorithm; 5] = [
        Algorithm::Grep,
        Algorithm::PageRank,
        Algorithm::Sort,
        Algorithm::Sgd,
        Algorithm::KMeans,
    ];

    /// The subset also present in the Bell-datasets (§IV-C2).
    pub const BELL: [Algorithm; 3] = [Algorithm::Grep, Algorithm::Sgd, Algorithm::PageRank];

    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Sort => "sort",
            Algorithm::Grep => "grep",
            Algorithm::Sgd => "sgd",
            Algorithm::KMeans => "kmeans",
            Algorithm::PageRank => "pagerank",
        }
    }

    /// Parses [`Algorithm::name`] output.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sort" => Some(Algorithm::Sort),
            "grep" => Some(Algorithm::Grep),
            "sgd" => Some(Algorithm::Sgd),
            "kmeans" => Some(Algorithm::KMeans),
            "pagerank" => Some(Algorithm::PageRank),
            _ => None,
        }
    }

    /// Whether the paper classifies the algorithm's observable scale-out
    /// behaviour as non-trivial (§IV-C1: K-Means and SGD).
    pub fn non_trivial_scale_out(self) -> bool {
        matches!(self, Algorithm::Sgd | Algorithm::KMeans)
    }

    /// Unique execution contexts per algorithm in the C3O-datasets (§IV-B:
    /// 21 Sort, 27 Grep, 30 SGD, 30 K-Means, 47 PageRank).
    pub fn c3o_context_count(self) -> usize {
        match self {
            Algorithm::Sort => 21,
            Algorithm::Grep => 27,
            Algorithm::Sgd => 30,
            Algorithm::KMeans => 30,
            Algorithm::PageRank => 47,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a set of experiments ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Amazon EMR, Hadoop 3.2.1, Spark 2.4.4 (C3O-datasets).
    C3oPublicCloud,
    /// Private cluster, Hadoop 2.7.1, Spark 2.0.0 (Bell-datasets).
    BellPrivateCluster,
}

impl Environment {
    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Environment::C3oPublicCloud => "c3o",
            Environment::BellPrivateCluster => "bell",
        }
    }

    /// Parses [`Environment::name`] output.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "c3o" => Some(Environment::C3oPublicCloud),
            "bell" => Some(Environment::BellPrivateCluster),
            _ => None,
        }
    }

    /// Software stack descriptor (part of the context in spirit; recorded
    /// for documentation output).
    pub fn software(self) -> &'static str {
        match self {
            Environment::C3oPublicCloud => "Hadoop 3.2.1 / Spark 2.4.4",
            Environment::BellPrivateCluster => "Hadoop 2.7.1 / Spark 2.0.0",
        }
    }
}

/// A unique job execution context: "node type, job parameters, target
/// dataset size, and target dataset characteristics" (§IV-B), plus the
/// environment it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobContext {
    /// Index within the owning [`Dataset`].
    pub id: usize,
    /// Environment the experiments ran in.
    pub environment: Environment,
    /// The processing algorithm.
    pub algorithm: Algorithm,
    /// Machine type used for every worker.
    pub node_type: NodeType,
    /// Size of the target dataset in MB (essential property).
    pub dataset_size_mb: u64,
    /// Free-text dataset characteristics (essential property).
    pub dataset_characteristics: String,
    /// Job parameter string (essential property).
    pub job_parameters: String,
}

impl JobContext {
    /// The paper's `filtered` pre-training criterion (§IV-C1): a historical
    /// context qualifies only if node type, dataset characteristics and job
    /// parameters all differ **and** the dataset size differs by at least
    /// 20%.
    pub fn substantially_different(&self, other: &JobContext) -> bool {
        if self.node_type.name == other.node_type.name {
            return false;
        }
        if self.dataset_characteristics == other.dataset_characteristics {
            return false;
        }
        if self.job_parameters == other.job_parameters {
            return false;
        }
        let a = self.dataset_size_mb as f64;
        let b = other.dataset_size_mb as f64;
        let rel = (a - b).abs() / a.max(b).max(1.0);
        rel >= 0.2
    }
}

/// One job execution: a context, a horizontal scale-out, and the measured
/// runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRun {
    /// Index into [`Dataset::contexts`].
    pub context_id: usize,
    /// Number of worker machines.
    pub scale_out: u32,
    /// Repetition index (0-based).
    pub repeat: u32,
    /// Measured runtime in seconds.
    pub runtime_s: f64,
}

/// A collection of contexts and runs from one environment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// All execution contexts, indexed by [`JobContext::id`].
    pub contexts: Vec<JobContext>,
    /// All job executions.
    pub runs: Vec<JobRun>,
}

impl Dataset {
    /// Contexts belonging to `algorithm`.
    pub fn contexts_for(&self, algorithm: Algorithm) -> Vec<&JobContext> {
        self.contexts
            .iter()
            .filter(|c| c.algorithm == algorithm)
            .collect()
    }

    /// Runs executed in context `context_id`.
    pub fn runs_for_context(&self, context_id: usize) -> Vec<&JobRun> {
        self.runs
            .iter()
            .filter(|r| r.context_id == context_id)
            .collect()
    }

    /// Runs of every context of `algorithm` **except** `exclude_context`.
    pub fn runs_for_algorithm_excluding(
        &self,
        algorithm: Algorithm,
        exclude_context: Option<usize>,
    ) -> Vec<&JobRun> {
        self.runs
            .iter()
            .filter(|r| {
                let ctx = &self.contexts[r.context_id];
                ctx.algorithm == algorithm && Some(r.context_id) != exclude_context
            })
            .collect()
    }

    /// Distinct scale-outs present for a context, ascending.
    pub fn scale_outs_for_context(&self, context_id: usize) -> Vec<u32> {
        let mut outs: Vec<u32> = self
            .runs_for_context(context_id)
            .iter()
            .map(|r| r.scale_out)
            .collect();
        outs.sort_unstable();
        outs.dedup();
        outs
    }

    /// The algorithms present in this dataset.
    pub fn algorithms(&self) -> Vec<Algorithm> {
        let mut algos: Vec<Algorithm> = Vec::new();
        for c in &self.contexts {
            if !algos.contains(&c.algorithm) {
                algos.push(c.algorithm);
            }
        }
        algos
    }

    /// Total number of unique `(context, scale-out)` experiments.
    pub fn unique_experiments(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for r in &self.runs {
            seen.insert((r.context_id, r.scale_out));
        }
        seen.len()
    }

    /// Basic integrity check: every run references a valid context and has a
    /// positive, finite runtime.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.contexts.iter().enumerate() {
            if c.id != i {
                return Err(format!("context {i} has inconsistent id {}", c.id));
            }
        }
        for r in &self.runs {
            if r.context_id >= self.contexts.len() {
                return Err(format!("run references missing context {}", r.context_id));
            }
            if !(r.runtime_s.is_finite() && r.runtime_s > 0.0) {
                return Err(format!(
                    "run in context {} has invalid runtime {}",
                    r.context_id, r.runtime_s
                ));
            }
            if r.scale_out == 0 {
                return Err("run with zero scale-out".to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodetypes::NodeType;

    fn ctx(
        id: usize,
        alg: Algorithm,
        node: &str,
        size: u64,
        chars: &str,
        params: &str,
    ) -> JobContext {
        JobContext {
            id,
            environment: Environment::C3oPublicCloud,
            algorithm: alg,
            node_type: NodeType::by_name(node).unwrap_or_else(|| NodeType {
                name: node.to_string(),
                cores: 4,
                memory_mb: 16384,
                relative_speed: 1.0,
            }),
            dataset_size_mb: size,
            dataset_characteristics: chars.to_string(),
            job_parameters: params.to_string(),
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(a.name()), Some(a));
        }
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn c3o_context_counts_match_paper() {
        let total: usize = Algorithm::ALL.iter().map(|a| a.c3o_context_count()).sum();
        assert_eq!(total, 155, "21+27+30+30+47 contexts");
        // 155 contexts x 6 scale-outs = 930 unique experiments (§IV-B).
        assert_eq!(total * 6, 930);
    }

    #[test]
    fn non_trivial_classification() {
        assert!(Algorithm::Sgd.non_trivial_scale_out());
        assert!(Algorithm::KMeans.non_trivial_scale_out());
        assert!(!Algorithm::Grep.non_trivial_scale_out());
        assert!(!Algorithm::Sort.non_trivial_scale_out());
        assert!(!Algorithm::PageRank.non_trivial_scale_out());
    }

    #[test]
    fn environment_round_trip() {
        for e in [Environment::C3oPublicCloud, Environment::BellPrivateCluster] {
            assert_eq!(Environment::from_name(e.name()), Some(e));
        }
    }

    #[test]
    fn substantially_different_requires_all_criteria() {
        let a = ctx(
            0,
            Algorithm::Sgd,
            "m4.2xlarge",
            20_000,
            "dense",
            "--iterations 50",
        );
        // Same node type -> not different enough.
        let b = ctx(
            1,
            Algorithm::Sgd,
            "m4.2xlarge",
            30_000,
            "sparse",
            "--iterations 100",
        );
        assert!(!a.substantially_different(&b));
        // All fields differ and size gap >= 20%.
        let c = ctx(
            2,
            Algorithm::Sgd,
            "r4.2xlarge",
            30_000,
            "sparse",
            "--iterations 100",
        );
        assert!(a.substantially_different(&c));
        // Size too close (10%).
        let d = ctx(
            3,
            Algorithm::Sgd,
            "r4.2xlarge",
            22_000,
            "sparse",
            "--iterations 100",
        );
        assert!(!a.substantially_different(&d));
    }

    #[test]
    fn dataset_queries() {
        let contexts = vec![
            ctx(
                0,
                Algorithm::Grep,
                "m4.xlarge",
                10_000,
                "text",
                "--pattern err",
            ),
            ctx(
                1,
                Algorithm::Sgd,
                "m4.xlarge",
                12_000,
                "dense",
                "--iterations 50",
            ),
        ];
        let runs = vec![
            JobRun {
                context_id: 0,
                scale_out: 2,
                repeat: 0,
                runtime_s: 100.0,
            },
            JobRun {
                context_id: 0,
                scale_out: 4,
                repeat: 0,
                runtime_s: 60.0,
            },
            JobRun {
                context_id: 0,
                scale_out: 4,
                repeat: 1,
                runtime_s: 62.0,
            },
            JobRun {
                context_id: 1,
                scale_out: 2,
                repeat: 0,
                runtime_s: 200.0,
            },
        ];
        let ds = Dataset { contexts, runs };
        assert!(ds.validate().is_ok());
        assert_eq!(ds.contexts_for(Algorithm::Grep).len(), 1);
        assert_eq!(ds.runs_for_context(0).len(), 3);
        assert_eq!(ds.scale_outs_for_context(0), vec![2, 4]);
        assert_eq!(ds.unique_experiments(), 3);
        assert_eq!(ds.algorithms(), vec![Algorithm::Grep, Algorithm::Sgd]);
        assert_eq!(
            ds.runs_for_algorithm_excluding(Algorithm::Grep, Some(0))
                .len(),
            0
        );
        assert_eq!(
            ds.runs_for_algorithm_excluding(Algorithm::Grep, None).len(),
            3
        );
    }

    #[test]
    fn validate_rejects_bad_runs() {
        let ds = Dataset {
            contexts: vec![ctx(0, Algorithm::Grep, "m4.xlarge", 1, "t", "p")],
            runs: vec![JobRun {
                context_id: 5,
                scale_out: 2,
                repeat: 0,
                runtime_s: 1.0,
            }],
        };
        assert!(ds.validate().is_err());
        let ds2 = Dataset {
            contexts: vec![ctx(0, Algorithm::Grep, "m4.xlarge", 1, "t", "p")],
            runs: vec![JobRun {
                context_id: 0,
                scale_out: 2,
                repeat: 0,
                runtime_s: -3.0,
            }],
        };
        assert!(ds2.validate().is_err());
    }
}
