//! Trace datasets for the Bellamy reproduction.
//!
//! The paper evaluates on two public trace collections:
//!
//! - **C3O-datasets** — 930 unique runtime experiments of five algorithms
//!   (Sort, Grep, SGD, K-Means, PageRank) on Amazon EMR, across 155 unique
//!   execution contexts, scale-outs 2–12 step 2, 5 repetitions each;
//! - **Bell-datasets** — Grep, SGD and PageRank in a private cluster, one
//!   context per algorithm, scale-outs 4–60 step 4, 7 repetitions each.
//!
//! The original CSV files are not available offline, so this crate generates
//! synthetic stand-ins with *identical shape* (same context counts,
//! scale-out grids, repetition counts, property vocabulary) whose runtimes
//! follow the Ernest model family `t(x) = θ1 + θ2/x + θ3·log x + θ4·x` with
//! context-dependent coefficients plus multiplicative log-normal noise and a
//! straggler tail. See DESIGN.md §3 for why this preserves the evaluated
//! behaviour: every predictor under test sees only
//! `(scale-out, properties, runtime)` tuples, and the paper's findings hinge
//! on curve-shape families, trivial-vs-non-trivial scale-out behaviour, and
//! cross-context correlation — all of which the generator reproduces.

pub mod csv;
pub mod generator;
pub mod model;
pub mod nodetypes;
pub mod schema;
pub mod stats;

pub use generator::{generate_bell, generate_c3o, GeneratorConfig};
pub use model::{ground_truth_profile, ScaleOutProfile};
pub use nodetypes::NodeType;
pub use schema::{Algorithm, Dataset, Environment, JobContext, JobRun};
