//! Synthetic C3O and Bell dataset generators.
//!
//! The generators reproduce the *shape* of the public datasets exactly
//! (context counts, scale-out grids, repetition counts — §IV-B) and sample
//! context properties from realistic vocabularies. Runtimes come from the
//! deterministic ground-truth profile of [`crate::model`] multiplied by
//! log-normal measurement noise and an occasional straggler slowdown.

use crate::model::ground_truth_profile;
use crate::nodetypes::NodeType;
use crate::schema::{Algorithm, Dataset, Environment, JobContext, JobRun};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, LogNormal};

/// Knobs for the trace generators. The defaults match the calibration used
/// throughout the evaluation; the noise knobs exist for the robustness
/// ablation (`repro -- ablate-noise`).
#[derive(Debug, Clone, Copy)]
pub struct GeneratorConfig {
    /// Master seed; the same seed reproduces the dataset bit-for-bit.
    pub seed: u64,
    /// Sigma of the multiplicative log-normal measurement noise.
    pub noise_sigma: f64,
    /// Probability that a run is slowed down by a straggler.
    pub straggler_prob: f64,
    /// Straggler slowdown range (uniform multiplier).
    pub straggler_slowdown: (f64, f64),
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            noise_sigma: 0.06,
            straggler_prob: 0.03,
            straggler_slowdown: (1.10, 1.35),
        }
    }
}

impl GeneratorConfig {
    /// Default configuration with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// C3O scale-out grid: 2–12 machines, step 2 (§IV-B).
pub const C3O_SCALE_OUTS: [u32; 6] = [2, 4, 6, 8, 10, 12];
/// C3O repetitions per experiment (§IV-B).
pub const C3O_REPEATS: u32 = 5;
/// Bell scale-out grid: 4–60 machines, step 4 (§IV-B).
pub const BELL_SCALE_OUTS: [u32; 15] = [4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60];
/// Bell repetitions per experiment (§IV-B).
pub const BELL_REPEATS: u32 = 7;

/// Dataset-characteristics vocabulary per algorithm (labels understood by
/// [`crate::model::characteristics_factors`]).
fn characteristics_choices(algorithm: Algorithm) -> &'static [&'static str] {
    match algorithm {
        Algorithm::Grep => &["text-logs", "text-web", "text-wiki"],
        Algorithm::Sort => &["uniform-keys", "zipf-keys", "presorted-keys"],
        Algorithm::PageRank => &["web-graph", "social-graph", "road-graph"],
        Algorithm::Sgd => &["dense-features", "sparse-features", "wide-features"],
        Algorithm::KMeans => &["clustered-points", "uniform-points", "skewed-points"],
    }
}

/// Job-parameter vocabulary per algorithm.
fn parameter_choices(algorithm: Algorithm) -> Vec<String> {
    match algorithm {
        Algorithm::Sgd => [25, 50, 100]
            .iter()
            .map(|it| format!("--iterations {it}"))
            .collect(),
        Algorithm::KMeans => {
            let mut v = Vec::new();
            for k in [4, 8, 16] {
                for it in [10, 20, 50] {
                    v.push(format!("--k {k} --iterations {it}"));
                }
            }
            v
        }
        Algorithm::PageRank => [10, 20, 30]
            .iter()
            .map(|it| format!("--iterations {it} --damping 0.85"))
            .collect(),
        Algorithm::Grep => [
            "error",
            "warn",
            "exception",
            "failed.*timeout",
            "href=.*html",
        ]
        .iter()
        .map(|p| format!("--pattern {p}"))
        .collect(),
        Algorithm::Sort => [64, 128, 256]
            .iter()
            .map(|p| format!("--partitions {p}"))
            .collect(),
    }
}

/// Dataset-size range in MB per algorithm (public-cloud experiments).
fn c3o_size_range(algorithm: Algorithm) -> (u64, u64) {
    match algorithm {
        Algorithm::Grep | Algorithm::Sort => (8_192, 61_440),
        Algorithm::PageRank => (4_096, 30_720),
        Algorithm::Sgd | Algorithm::KMeans => (4_096, 30_720),
    }
}

/// Generates the synthetic C3O-datasets: 155 contexts, 930 unique
/// experiments, 4650 runs.
pub fn generate_c3o(config: &GeneratorConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let catalog = NodeType::c3o_catalog();
    let mut contexts = Vec::new();

    for algorithm in Algorithm::ALL {
        let n_contexts = algorithm.c3o_context_count();
        let chars = characteristics_choices(algorithm);
        let params = parameter_choices(algorithm);
        let (size_lo, size_hi) = c3o_size_range(algorithm);

        let mut seen: Vec<(String, u64, String, String)> = Vec::new();
        for i in 0..n_contexts {
            // The first pass over the catalog guarantees every node type
            // appears for every algorithm (needed by the §IV-C1 sampling
            // rule "each node type is present at least once").
            loop {
                let node = if i < catalog.len() {
                    catalog[i].clone()
                } else {
                    catalog[rng.random_range(0..catalog.len())].clone()
                };
                let size = rng.random_range(size_lo..=size_hi);
                let ch = chars[rng.random_range(0..chars.len())].to_string();
                let pm = params[rng.random_range(0..params.len())].clone();
                let key = (node.name.clone(), size, ch.clone(), pm.clone());
                if seen.contains(&key) {
                    continue; // re-roll duplicates; sizes make them unlikely
                }
                seen.push(key);
                contexts.push(JobContext {
                    id: contexts.len(),
                    environment: Environment::C3oPublicCloud,
                    algorithm,
                    node_type: node,
                    dataset_size_mb: size,
                    dataset_characteristics: ch,
                    job_parameters: pm,
                });
                break;
            }
        }
    }

    let runs = sample_runs(&contexts, &C3O_SCALE_OUTS, C3O_REPEATS, config, &mut rng);
    Dataset { contexts, runs }
}

/// Generates the synthetic Bell-datasets: Grep, SGD and PageRank, one
/// private-cluster context each, 45 unique experiments, 315 runs.
pub fn generate_bell(config: &GeneratorConfig) -> Dataset {
    // Offset the seed stream so C3O and Bell noise is independent even with
    // the same master seed.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBE11_BE11_BE11_BE11);
    let node = NodeType::bell_catalog().remove(0);

    // One fixed context per algorithm; larger datasets suit the 4–60 machine
    // range of the private cluster.
    let specs: [(Algorithm, u64, &str, &str); 3] = [
        (Algorithm::Grep, 153_600, "text-logs", "--pattern exception"),
        (Algorithm::Sgd, 61_440, "dense-features", "--iterations 100"),
        (
            Algorithm::PageRank,
            81_920,
            "web-graph",
            "--iterations 20 --damping 0.85",
        ),
    ];

    let contexts: Vec<JobContext> = specs
        .iter()
        .enumerate()
        .map(|(id, (algorithm, size, chars, params))| JobContext {
            id,
            environment: Environment::BellPrivateCluster,
            algorithm: *algorithm,
            node_type: node.clone(),
            dataset_size_mb: *size,
            dataset_characteristics: chars.to_string(),
            job_parameters: params.to_string(),
        })
        .collect();

    let runs = sample_runs(&contexts, &BELL_SCALE_OUTS, BELL_REPEATS, config, &mut rng);
    Dataset { contexts, runs }
}

/// Samples noisy runs for every `(context, scale-out, repeat)` triple.
fn sample_runs(
    contexts: &[JobContext],
    scale_outs: &[u32],
    repeats: u32,
    config: &GeneratorConfig,
    rng: &mut StdRng,
) -> Vec<JobRun> {
    // Mean-one log-normal: mu = -sigma^2/2.
    let noise = LogNormal::new(
        -config.noise_sigma * config.noise_sigma / 2.0,
        config.noise_sigma,
    )
    .expect("valid log-normal parameters");

    let mut runs = Vec::with_capacity(contexts.len() * scale_outs.len() * repeats as usize);
    for ctx in contexts {
        let profile = ground_truth_profile(ctx);
        for &x in scale_outs {
            let clean = profile.runtime(x as f64);
            for repeat in 0..repeats {
                let mut t = clean * noise.sample(rng);
                if rng.random::<f64>() < config.straggler_prob {
                    let (lo, hi) = config.straggler_slowdown;
                    t *= rng.random_range(lo..hi);
                }
                runs.push(JobRun {
                    context_id: ctx.id,
                    scale_out: x,
                    repeat,
                    runtime_s: t,
                });
            }
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c3o_shape_matches_paper() {
        let ds = generate_c3o(&GeneratorConfig::default());
        assert_eq!(ds.contexts.len(), 155);
        assert_eq!(ds.unique_experiments(), 930);
        assert_eq!(ds.runs.len(), 930 * 5);
        assert!(ds.validate().is_ok());
        for (alg, want) in [
            (Algorithm::Sort, 21),
            (Algorithm::Grep, 27),
            (Algorithm::Sgd, 30),
            (Algorithm::KMeans, 30),
            (Algorithm::PageRank, 47),
        ] {
            assert_eq!(ds.contexts_for(alg).len(), want, "{alg}");
        }
    }

    #[test]
    fn c3o_scale_out_grid() {
        let ds = generate_c3o(&GeneratorConfig::default());
        for ctx in &ds.contexts {
            assert_eq!(ds.scale_outs_for_context(ctx.id), C3O_SCALE_OUTS.to_vec());
        }
    }

    #[test]
    fn every_node_type_present_per_algorithm() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let catalog = NodeType::c3o_catalog();
        for alg in Algorithm::ALL {
            let ctxs = ds.contexts_for(alg);
            for node in &catalog {
                assert!(
                    ctxs.iter().any(|c| c.node_type.name == node.name),
                    "{alg} is missing node type {}",
                    node.name
                );
            }
        }
    }

    #[test]
    fn contexts_are_unique() {
        let ds = generate_c3o(&GeneratorConfig::default());
        for alg in Algorithm::ALL {
            let ctxs = ds.contexts_for(alg);
            for (i, a) in ctxs.iter().enumerate() {
                for b in &ctxs[i + 1..] {
                    let same = a.node_type.name == b.node_type.name
                        && a.dataset_size_mb == b.dataset_size_mb
                        && a.dataset_characteristics == b.dataset_characteristics
                        && a.job_parameters == b.job_parameters;
                    assert!(!same, "duplicate context for {alg}");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_c3o(&GeneratorConfig::seeded(7));
        let b = generate_c3o(&GeneratorConfig::seeded(7));
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.contexts, b.contexts);
        let c = generate_c3o(&GeneratorConfig::seeded(8));
        assert_ne!(a.runs, c.runs, "different seeds should differ");
    }

    #[test]
    fn bell_shape_matches_paper() {
        let ds = generate_bell(&GeneratorConfig::default());
        assert_eq!(ds.contexts.len(), 3);
        assert_eq!(ds.unique_experiments(), 45);
        assert_eq!(ds.runs.len(), 45 * 7);
        assert!(ds.validate().is_ok());
        for ctx in &ds.contexts {
            assert_eq!(ds.scale_outs_for_context(ctx.id), BELL_SCALE_OUTS.to_vec());
            assert_eq!(ctx.environment, Environment::BellPrivateCluster);
            assert_eq!(ctx.node_type.name, "cluster-node");
        }
    }

    #[test]
    fn repeat_noise_is_modest() {
        let ds = generate_c3o(&GeneratorConfig::default());
        // Coefficient of variation across the 5 repeats should be small but
        // non-zero for (almost) every unique experiment.
        let ctx = &ds.contexts[0];
        for &x in &C3O_SCALE_OUTS {
            let times: Vec<f64> = ds
                .runs_for_context(ctx.id)
                .iter()
                .filter(|r| r.scale_out == x)
                .map(|r| r.runtime_s)
                .collect();
            assert_eq!(times.len(), 5);
            let mean = bellamy_linalg::stats::mean(&times);
            let sd = bellamy_linalg::stats::std_dev(&times);
            assert!(sd / mean < 0.3, "cv {} too large at x={x}", sd / mean);
        }
    }

    #[test]
    fn zero_noise_reproduces_ground_truth() {
        let cfg = GeneratorConfig {
            noise_sigma: 1e-12,
            straggler_prob: 0.0,
            ..GeneratorConfig::default()
        };
        let ds = generate_c3o(&cfg);
        let ctx = &ds.contexts[10];
        let profile = ground_truth_profile(ctx);
        for r in ds.runs_for_context(ctx.id) {
            let clean = profile.runtime(r.scale_out as f64);
            assert!(
                (r.runtime_s - clean).abs() / clean < 1e-6,
                "noise-free run should match ground truth"
            );
        }
    }
}
