//! Machine-type catalogs for the two environments.
//!
//! The C3O experiments ran on Amazon EMR instance types; Fig. 4 of the paper
//! shows `m4.2xlarge` and `r4.2xlarge` contexts. The catalog below models
//! the general-purpose (m4), compute-optimized (c4) and memory-optimized
//! (r4) families in two sizes each — six types, so the seven sampled
//! contexts per algorithm (§IV-C1) can cover every type at least once. The
//! Bell environment is a single private-cluster node type.

use serde::{Deserialize, Serialize};

/// A worker machine type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeType {
    /// Instance-type name as it appears in the context properties.
    pub name: String,
    /// Number of virtual cores.
    pub cores: u32,
    /// Memory in MB.
    pub memory_mb: u64,
    /// Per-core processing speed relative to `m4` (1.0).
    pub relative_speed: f64,
}

impl NodeType {
    fn new(name: &str, cores: u32, memory_mb: u64, relative_speed: f64) -> Self {
        Self {
            name: name.to_string(),
            cores,
            memory_mb,
            relative_speed,
        }
    }

    /// The C3O (public cloud) catalog.
    pub fn c3o_catalog() -> Vec<NodeType> {
        vec![
            NodeType::new("m4.xlarge", 4, 16_384, 1.0),
            NodeType::new("m4.2xlarge", 8, 32_768, 1.0),
            NodeType::new("c4.xlarge", 4, 7_680, 1.3),
            NodeType::new("c4.2xlarge", 8, 15_360, 1.3),
            NodeType::new("r4.xlarge", 4, 31_232, 0.95),
            NodeType::new("r4.2xlarge", 8, 62_464, 0.95),
        ]
    }

    /// The Bell (private cluster) node type: older commodity machines with
    /// a slower per-core speed, matching the environment shift of §IV-C2.
    pub fn bell_catalog() -> Vec<NodeType> {
        vec![NodeType::new("cluster-node", 8, 16_384, 0.75)]
    }

    /// Looks a type up by name across both catalogs.
    pub fn by_name(name: &str) -> Option<NodeType> {
        Self::c3o_catalog()
            .into_iter()
            .chain(Self::bell_catalog())
            .find(|n| n.name == name)
    }

    /// Memory per core in MB — drives the spill behaviour in the runtime
    /// model.
    pub fn memory_per_core_mb(&self) -> f64 {
        self.memory_mb as f64 / self.cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_six_c3o_types() {
        let cat = NodeType::c3o_catalog();
        assert_eq!(cat.len(), 6);
        let names: Vec<&str> = cat.iter().map(|n| n.name.as_str()).collect();
        assert!(names.contains(&"m4.2xlarge"));
        assert!(names.contains(&"r4.2xlarge"));
    }

    #[test]
    fn by_name_finds_both_catalogs() {
        assert!(NodeType::by_name("c4.xlarge").is_some());
        assert!(NodeType::by_name("cluster-node").is_some());
        assert!(NodeType::by_name("quantum-node").is_none());
    }

    #[test]
    fn families_have_expected_profiles() {
        let c4 = NodeType::by_name("c4.xlarge").unwrap();
        let r4 = NodeType::by_name("r4.xlarge").unwrap();
        let m4 = NodeType::by_name("m4.xlarge").unwrap();
        // Compute-optimized: faster cores, less memory.
        assert!(c4.relative_speed > m4.relative_speed);
        assert!(c4.memory_mb < m4.memory_mb);
        // Memory-optimized: slower cores, much more memory.
        assert!(r4.relative_speed < m4.relative_speed);
        assert!(r4.memory_mb > m4.memory_mb);
    }

    #[test]
    fn memory_per_core() {
        let m4 = NodeType::by_name("m4.xlarge").unwrap();
        assert_eq!(m4.memory_per_core_mb(), 4096.0);
    }

    #[test]
    fn doubling_size_doubles_resources() {
        let small = NodeType::by_name("m4.xlarge").unwrap();
        let big = NodeType::by_name("m4.2xlarge").unwrap();
        assert_eq!(big.cores, small.cores * 2);
        assert_eq!(big.memory_mb, small.memory_mb * 2);
        assert_eq!(big.relative_speed, small.relative_speed);
    }
}
