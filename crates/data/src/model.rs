//! The ground-truth runtime model behind the synthetic traces.
//!
//! Each context maps deterministically to a scale-out profile in the Ernest
//! family — `t(x) = θ1 + θ2/x + θ3·log x + θ4·x` — which the paper states is
//! "sufficient for many processing algorithms and their scale-out behavior"
//! (§III-B), plus a memory-spill correction that bends the curve away from
//! the pure family at low scale-outs on memory-starved node types (real
//! traces are not exactly Ernest-shaped either; this keeps the baselines
//! honestly misspecified).
//!
//! The coefficients are driven by the same factors the paper names as
//! context-defining: algorithm, node type (cores, memory, per-core speed),
//! dataset size and characteristics, job parameters, and environment.

use crate::schema::{Algorithm, Environment, JobContext};
use serde::{Deserialize, Serialize};

/// A context's deterministic scale-out → runtime curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutProfile {
    /// Ernest coefficients `[θ1, θ2, θ3, θ4]`.
    pub theta: [f64; 4],
    /// Dataset size in MB (drives the spill term).
    pub dataset_mb: f64,
    /// Per-machine memory in MB.
    pub memory_mb: f64,
    /// Spill penalty strength (0 disables the correction).
    pub spill_coeff: f64,
    /// Memory-pressure ratio above which spilling starts.
    pub spill_threshold: f64,
    /// Number of input tasks (partitions) of the job.
    pub tasks: u32,
    /// Task slots per machine (= cores).
    pub slots_per_machine: u32,
    /// How strongly task-wave quantization shows in the runtime (0 = fully
    /// pipelined, 1 = fully synchronized waves).
    pub wave_share: f64,
}

impl ScaleOutProfile {
    /// Noise-free runtime at `x` machines.
    pub fn runtime(&self, x: f64) -> f64 {
        assert!(x >= 1.0, "scale-out must be at least 1");
        let [t1, t2, t3, t4] = self.theta;
        t1 + (t2 / x) * self.spill_factor(x) * self.wave_factor(x) + t3 * x.ln() + t4 * x
    }

    /// Multiplier on the parallel-work term when machines spill to disk.
    pub fn spill_factor(&self, x: f64) -> f64 {
        let pressure = self.dataset_mb / (x * self.memory_mb);
        1.0 + self.spill_coeff * (pressure - self.spill_threshold).max(0.0)
    }

    /// Task-wave quantization: with `T` tasks on `x·slots` executors the job
    /// runs `ceil(T / (x·slots))` synchronized waves, so the parallel phase
    /// costs `ceil(w)/w` more than the ideal fractional wave count `w`. Real
    /// dataflow stages are partially pipelined, hence the blend through
    /// `wave_share`. This effect is what pulls the true curves *out* of the
    /// Ernest model family — the misspecification a context-aware learned
    /// model can exploit (strongest for iterative algorithms).
    pub fn wave_factor(&self, x: f64) -> f64 {
        let slots = x * self.slots_per_machine as f64;
        let ideal = self.tasks as f64 / slots;
        if ideal <= 0.0 {
            return 1.0;
        }
        let quantized = ideal.ceil() / ideal;
        1.0 + self.wave_share * (quantized - 1.0)
    }

    /// Integer scale-out in `[lo, hi]` minimizing the noise-free runtime.
    pub fn optimal_scale_out(&self, lo: u32, hi: u32) -> u32 {
        assert!(lo >= 1 && lo <= hi, "invalid range {lo}..={hi}");
        (lo..=hi)
            .min_by(|&a, &b| {
                self.runtime(a as f64)
                    .partial_cmp(&self.runtime(b as f64))
                    .expect("finite runtimes")
            })
            .expect("non-empty range")
    }

    /// Smallest scale-out in `[lo, hi]` whose runtime meets `target_s`, if
    /// any (the resource-allocation use case of §I).
    pub fn min_scale_out_meeting(&self, target_s: f64, lo: u32, hi: u32) -> Option<u32> {
        (lo..=hi).find(|&x| self.runtime(x as f64) <= target_s)
    }
}

/// Per-algorithm base coefficients: `[startup s, work s·machine/GB,
/// comm log-coefficient, per-machine overhead]`.
///
/// SGD and K-Means get strong `θ3`/`θ4` terms so their curves have interior
/// optima in the evaluated scale-out ranges — the paper's "non-trivial
/// scale-out behaviour". Sort/Grep/PageRank decay smoothly ("trivial").
fn base_coefficients(algorithm: Algorithm) -> [f64; 4] {
    match algorithm {
        Algorithm::Sort => [14.0, 6.0, 1.5, 0.25],
        Algorithm::Grep => [8.0, 4.0, 0.6, 0.10],
        Algorithm::PageRank => [22.0, 9.0, 2.2, 0.35],
        Algorithm::Sgd => [18.0, 14.0, 7.0, 1.10],
        Algorithm::KMeans => [18.0, 11.0, 6.5, 0.95],
    }
}

/// Multipliers `(work, communication)` for a dataset-characteristics label.
/// Unknown labels fall back to `(1, 1)` so hand-written contexts still work.
pub fn characteristics_factors(label: &str) -> (f64, f64) {
    match label {
        // Grep / Sort corpora
        "text-logs" => (1.0, 1.0),
        "text-web" => (1.1, 1.05),
        "text-wiki" => (0.95, 1.0),
        "uniform-keys" => (1.0, 1.0),
        "zipf-keys" => (1.25, 1.2),
        "presorted-keys" => (0.8, 0.9),
        // Graphs
        "web-graph" => (1.0, 1.0),
        "social-graph" => (1.3, 1.4),
        "road-graph" => (0.7, 0.8),
        // ML feature sets
        "dense-features" => (1.0, 1.0),
        "sparse-features" => (0.75, 0.9),
        "wide-features" => (1.3, 1.1),
        "clustered-points" => (0.9, 1.0),
        "uniform-points" => (1.0, 1.0),
        "skewed-points" => (1.2, 1.15),
        _ => (1.0, 1.0),
    }
}

/// Extracts the numeric value following `--{key} ` in a parameter string.
pub fn parse_numeric_param(params: &str, key: &str) -> Option<f64> {
    let marker = format!("--{key} ");
    let start = params.find(&marker)? + marker.len();
    let rest = &params[start..];
    let end = rest.find(' ').unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Work multiplier encoded in the job parameter string.
fn parameter_work_factor(algorithm: Algorithm, params: &str) -> f64 {
    match algorithm {
        Algorithm::Sgd => parse_numeric_param(params, "iterations").map_or(1.0, |it| it / 50.0),
        Algorithm::KMeans => {
            let k = parse_numeric_param(params, "k").unwrap_or(8.0);
            let it = parse_numeric_param(params, "iterations").unwrap_or(20.0);
            (k * it) / 160.0
        }
        Algorithm::PageRank => {
            parse_numeric_param(params, "iterations").map_or(1.0, |it| it / 20.0)
        }
        Algorithm::Grep => {
            // Longer/regex-ier patterns cost more per byte.
            let pattern_len = params
                .split_whitespace()
                .last()
                .map(|p| p.len() as f64)
                .unwrap_or(5.0);
            (0.85 + 0.04 * pattern_len).clamp(0.85, 1.4)
        }
        Algorithm::Sort => {
            // More partitions = slightly more shuffle overhead.
            let parts = parse_numeric_param(params, "partitions").unwrap_or(128.0);
            0.9 + 0.1 * (parts / 128.0)
        }
    }
}

/// Environment-level startup multiplier: the Bell cluster runs an older
/// Hadoop/Spark stack with slower job startup and scheduling.
fn environment_startup_factor(env: Environment) -> f64 {
    match env {
        Environment::C3oPublicCloud => 1.0,
        Environment::BellPrivateCluster => 1.6,
    }
}

/// Environment-level *shape* shift `(θ3 multiplier, θ4 multiplier, extra
/// wave share)`: the Bell cluster's Spark 2.0-era shuffle and slower
/// interconnect weigh communication and per-machine overhead differently, so
/// cross-environment curves differ in shape, not just scale — the
/// "significant context shift" premise of §IV-C2 under which reusing learned
/// scale-out behaviour can mislead.
fn environment_shape_shift(env: Environment) -> (f64, f64, f64) {
    match env {
        Environment::C3oPublicCloud => (1.0, 1.0, 0.0),
        Environment::BellPrivateCluster => (1.8, 1.4, 0.15),
    }
}

/// How strongly task-wave quantization shows per algorithm: iterative
/// algorithms synchronize at every iteration boundary, single-pass scans
/// pipeline almost perfectly.
fn wave_share(algorithm: Algorithm) -> f64 {
    match algorithm {
        Algorithm::Grep => 0.20,
        Algorithm::Sort => 0.30,
        Algorithm::PageRank => 0.45,
        Algorithm::Sgd => 0.70,
        Algorithm::KMeans => 0.70,
    }
}

/// Input-partition size in MB used to derive the task count.
const PARTITION_MB: f64 = 512.0;

/// Builds the deterministic ground-truth profile for a context.
pub fn ground_truth_profile(ctx: &JobContext) -> ScaleOutProfile {
    let [a1, a2, a3, a4] = base_coefficients(ctx.algorithm);
    let (work_mult, comm_mult) = characteristics_factors(&ctx.dataset_characteristics);
    let param_factor = parameter_work_factor(ctx.algorithm, &ctx.job_parameters);
    let gb = ctx.dataset_size_mb as f64 / 1024.0;
    let node = &ctx.node_type;
    // A machine with more/faster cores retires parallel work faster.
    let machine_throughput = node.relative_speed * (node.cores as f64 / 4.0);

    let (comm_shift, overhead_shift, wave_shift) = environment_shape_shift(ctx.environment);
    let theta1 = a1 * environment_startup_factor(ctx.environment);
    let theta2 = a2 * gb * work_mult * param_factor / machine_throughput;
    // Communication cost grows mildly with dataset size.
    let theta3 = a3 * comm_mult * comm_shift * (1.0 + 0.1 * gb.max(1.0).ln());
    let theta4 = a4 * comm_mult * overhead_shift;

    ScaleOutProfile {
        theta: [theta1, theta2, theta3, theta4],
        dataset_mb: ctx.dataset_size_mb as f64,
        memory_mb: node.memory_mb as f64,
        spill_coeff: 0.7,
        spill_threshold: 0.6,
        tasks: (ctx.dataset_size_mb as f64 / PARTITION_MB).round().max(1.0) as u32,
        slots_per_machine: node.cores,
        wave_share: (wave_share(ctx.algorithm) + wave_shift).min(0.9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodetypes::NodeType;

    fn make_ctx(alg: Algorithm, node: &str, size_mb: u64, chars: &str, params: &str) -> JobContext {
        JobContext {
            id: 0,
            environment: Environment::C3oPublicCloud,
            algorithm: alg,
            node_type: NodeType::by_name(node).unwrap(),
            dataset_size_mb: size_mb,
            dataset_characteristics: chars.to_string(),
            job_parameters: params.to_string(),
        }
    }

    #[test]
    fn runtimes_positive_and_finite_over_grid() {
        for alg in Algorithm::ALL {
            let ctx = make_ctx(alg, "m4.xlarge", 20_480, "text-logs", "--iterations 50");
            let p = ground_truth_profile(&ctx);
            for x in (2..=60).step_by(2) {
                let t = p.runtime(x as f64);
                assert!(t.is_finite() && t > 0.0, "{alg} at x={x}: {t}");
            }
        }
    }

    #[test]
    fn sgd_has_interior_optimum_in_c3o_range() {
        let ctx = make_ctx(
            Algorithm::Sgd,
            "m4.xlarge",
            15_360,
            "dense-features",
            "--iterations 50",
        );
        let p = ground_truth_profile(&ctx);
        let best = p.optimal_scale_out(2, 40);
        assert!(
            (3..=39).contains(&best),
            "SGD should have an interior optimum, got {best}"
        );
        // Runtime must rise again past the optimum (non-trivial behaviour).
        assert!(p.runtime(40.0) > p.runtime(best as f64));
    }

    #[test]
    fn grep_is_monotone_decreasing_in_c3o_range() {
        let ctx = make_ctx(
            Algorithm::Grep,
            "m4.xlarge",
            20_480,
            "text-logs",
            "--pattern error",
        );
        let p = ground_truth_profile(&ctx);
        for x in 2..12 {
            assert!(
                p.runtime(x as f64) > p.runtime((x + 1) as f64),
                "grep should scale smoothly at x={x}"
            );
        }
    }

    #[test]
    fn more_iterations_cost_more() {
        let short = make_ctx(
            Algorithm::Sgd,
            "m4.xlarge",
            15_360,
            "dense-features",
            "--iterations 25",
        );
        let long = make_ctx(
            Algorithm::Sgd,
            "m4.xlarge",
            15_360,
            "dense-features",
            "--iterations 100",
        );
        let ps = ground_truth_profile(&short);
        let pl = ground_truth_profile(&long);
        assert!(pl.runtime(6.0) > ps.runtime(6.0));
    }

    #[test]
    fn bigger_dataset_costs_more() {
        let small = make_ctx(
            Algorithm::Sort,
            "m4.xlarge",
            5_120,
            "uniform-keys",
            "--partitions 128",
        );
        let large = make_ctx(
            Algorithm::Sort,
            "m4.xlarge",
            40_960,
            "uniform-keys",
            "--partitions 128",
        );
        assert!(
            ground_truth_profile(&large).runtime(6.0) > ground_truth_profile(&small).runtime(6.0)
        );
    }

    #[test]
    fn faster_nodes_run_faster() {
        let m4 = make_ctx(
            Algorithm::Grep,
            "m4.xlarge",
            20_480,
            "text-logs",
            "--pattern error",
        );
        let c4_big = make_ctx(
            Algorithm::Grep,
            "c4.2xlarge",
            20_480,
            "text-logs",
            "--pattern error",
        );
        // c4.2xlarge has 2x cores and 1.3x speed; at high scale-out (no
        // spill) it must beat m4.xlarge.
        assert!(
            ground_truth_profile(&c4_big).runtime(12.0) < ground_truth_profile(&m4).runtime(12.0)
        );
    }

    #[test]
    fn low_memory_nodes_spill_at_small_scale_out() {
        let c4 = make_ctx(
            Algorithm::Sort,
            "c4.xlarge",
            30_720,
            "uniform-keys",
            "--partitions 128",
        );
        let p = ground_truth_profile(&c4);
        // 30 GB over 2 machines with 7.5 GB memory: heavy pressure.
        assert!(p.spill_factor(2.0) > 1.2);
        // At 12 machines pressure fades.
        assert!(p.spill_factor(12.0) < p.spill_factor(2.0));
        // A memory-optimized node with the same dataset does not spill.
        let r4 = make_ctx(
            Algorithm::Sort,
            "r4.xlarge",
            30_720,
            "uniform-keys",
            "--partitions 128",
        );
        assert_eq!(ground_truth_profile(&r4).spill_factor(2.0), 1.0);
    }

    #[test]
    fn wave_factor_is_quantized_and_fades_with_many_waves() {
        let ctx = make_ctx(
            Algorithm::Sgd,
            "m4.xlarge",
            10_240,
            "dense-features",
            "--iterations 50",
        );
        let p = ground_truth_profile(&ctx);
        // 10 GB / 512 MB = 20 tasks, 4 slots/machine.
        assert_eq!(p.tasks, 20);
        // x=5: 20/20 = 1 wave exactly -> no penalty.
        assert!((p.wave_factor(5.0) - 1.0).abs() < 1e-12);
        // x=6: 20/24 = 0.833 waves -> ceil 1 -> 20% raw penalty, scaled.
        let raw = 1.0 / (20.0 / 24.0) - 1.0;
        assert!((p.wave_factor(6.0) - (1.0 + 0.7 * raw)).abs() < 1e-12);
        // Penalty bounded and >= 1 everywhere on the C3O grid.
        for x in 2..=12 {
            let w = p.wave_factor(x as f64);
            assert!((1.0..2.5).contains(&w), "wave factor {w} at x={x}");
        }
    }

    #[test]
    fn iterative_algorithms_have_stronger_waves() {
        let sgd = make_ctx(
            Algorithm::Sgd,
            "m4.xlarge",
            10_240,
            "dense-features",
            "--iterations 50",
        );
        let grep = make_ctx(
            Algorithm::Grep,
            "m4.xlarge",
            10_240,
            "text-logs",
            "--pattern error",
        );
        let ps = ground_truth_profile(&sgd);
        let pg = ground_truth_profile(&grep);
        assert!(ps.wave_share > pg.wave_share);
        // At a scale-out with a fractional wave count the SGD curve deviates
        // further from the smooth Ernest family.
        assert!(ps.wave_factor(6.0) > pg.wave_factor(6.0));
    }

    #[test]
    fn bell_environment_has_slower_startup() {
        let mut ctx = make_ctx(
            Algorithm::Grep,
            "m4.xlarge",
            20_480,
            "text-logs",
            "--pattern error",
        );
        let c3o = ground_truth_profile(&ctx);
        ctx.environment = Environment::BellPrivateCluster;
        let bell = ground_truth_profile(&ctx);
        assert!(bell.theta[0] > c3o.theta[0]);
    }

    #[test]
    fn parse_numeric_param_extracts() {
        assert_eq!(parse_numeric_param("--k 8 --iterations 20", "k"), Some(8.0));
        assert_eq!(
            parse_numeric_param("--k 8 --iterations 20", "iterations"),
            Some(20.0)
        );
        assert_eq!(parse_numeric_param("--pattern error", "iterations"), None);
    }

    #[test]
    fn min_scale_out_meeting_target() {
        let ctx = make_ctx(
            Algorithm::Grep,
            "m4.xlarge",
            20_480,
            "text-logs",
            "--pattern error",
        );
        let p = ground_truth_profile(&ctx);
        // Some achievable target: runtime at 8 machines.
        let t8 = p.runtime(8.0);
        let chosen = p.min_scale_out_meeting(t8 + 0.01, 2, 12).unwrap();
        assert!(chosen <= 8);
        assert!(p.runtime(chosen as f64) <= t8 + 0.01);
        // Unreachable target.
        assert_eq!(p.min_scale_out_meeting(1.0, 2, 12), None);
    }

    #[test]
    fn unknown_characteristics_are_neutral() {
        assert_eq!(characteristics_factors("mystery-data"), (1.0, 1.0));
    }
}
