//! CSV import/export for datasets.
//!
//! The public C3O/Bell datasets ship as CSV; this module writes and reads
//! the same tabular shape (denormalized: one row per run, context fields
//! repeated) so generated traces can be inspected, diffed, or replaced with
//! the real files when available. Fields containing commas or quotes are
//! quoted per RFC 4180.

use crate::nodetypes::NodeType;
use crate::schema::{Algorithm, Dataset, Environment, JobContext, JobRun};

/// Column order of the on-disk format.
pub const HEADER: &str = "environment,algorithm,context_id,node_type,cores,memory_mb,\
relative_speed,dataset_size_mb,dataset_characteristics,job_parameters,scale_out,repeat,runtime_s";

/// Errors raised while parsing a dataset CSV.
#[derive(Debug, PartialEq)]
pub enum CsvError {
    /// The header row does not match [`HEADER`].
    BadHeader(String),
    /// A row has the wrong number of fields.
    FieldCount { line: usize, got: usize },
    /// A field failed to parse, with the column name.
    BadField {
        line: usize,
        column: &'static str,
        value: String,
    },
    /// Context rows with the same id disagree on their fields.
    InconsistentContext { line: usize },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader(h) => write!(f, "unexpected header: {h}"),
            CsvError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 13 fields, got {got}")
            }
            CsvError::BadField {
                line,
                column,
                value,
            } => {
                write!(f, "line {line}: cannot parse {column} from {value:?}")
            }
            CsvError::InconsistentContext { line } => {
                write!(
                    f,
                    "line {line}: context fields disagree with an earlier row"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Serializes a dataset to CSV.
pub fn to_csv(dataset: &Dataset) -> String {
    let mut out = String::with_capacity(dataset.runs.len() * 96);
    out.push_str(HEADER);
    out.push('\n');
    for run in &dataset.runs {
        let ctx = &dataset.contexts[run.context_id];
        let fields = [
            ctx.environment.name().to_string(),
            ctx.algorithm.name().to_string(),
            ctx.id.to_string(),
            ctx.node_type.name.clone(),
            ctx.node_type.cores.to_string(),
            ctx.node_type.memory_mb.to_string(),
            format!("{}", ctx.node_type.relative_speed),
            ctx.dataset_size_mb.to_string(),
            ctx.dataset_characteristics.clone(),
            ctx.job_parameters.clone(),
            run.scale_out.to_string(),
            run.repeat.to_string(),
            format!("{:.6}", run.runtime_s),
        ];
        let row: Vec<String> = fields.iter().map(|f| escape(f)).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Parses a dataset from CSV (the inverse of [`to_csv`]).
pub fn from_csv(text: &str) -> Result<Dataset, CsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| CsvError::BadHeader(String::new()))?;
    if header.trim() != HEADER {
        return Err(CsvError::BadHeader(header.to_string()));
    }

    let mut contexts: Vec<JobContext> = Vec::new();
    let mut runs: Vec<JobRun> = Vec::new();

    for (idx, line) in lines {
        let line_no = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_row(line);
        if fields.len() != 13 {
            return Err(CsvError::FieldCount {
                line: line_no,
                got: fields.len(),
            });
        }
        let bad = |column: &'static str, value: &str| CsvError::BadField {
            line: line_no,
            column,
            value: value.to_string(),
        };

        let environment =
            Environment::from_name(&fields[0]).ok_or_else(|| bad("environment", &fields[0]))?;
        let algorithm =
            Algorithm::from_name(&fields[1]).ok_or_else(|| bad("algorithm", &fields[1]))?;
        let context_id: usize = fields[2]
            .parse()
            .map_err(|_| bad("context_id", &fields[2]))?;
        let cores: u32 = fields[4].parse().map_err(|_| bad("cores", &fields[4]))?;
        let memory_mb: u64 = fields[5]
            .parse()
            .map_err(|_| bad("memory_mb", &fields[5]))?;
        let relative_speed: f64 = fields[6]
            .parse()
            .map_err(|_| bad("relative_speed", &fields[6]))?;
        let dataset_size_mb: u64 = fields[7]
            .parse()
            .map_err(|_| bad("dataset_size_mb", &fields[7]))?;
        let scale_out: u32 = fields[10]
            .parse()
            .map_err(|_| bad("scale_out", &fields[10]))?;
        let repeat: u32 = fields[11].parse().map_err(|_| bad("repeat", &fields[11]))?;
        let runtime_s: f64 = fields[12]
            .parse()
            .map_err(|_| bad("runtime_s", &fields[12]))?;

        let ctx = JobContext {
            id: context_id,
            environment,
            algorithm,
            node_type: NodeType {
                name: fields[3].clone(),
                cores,
                memory_mb,
                relative_speed,
            },
            dataset_size_mb,
            dataset_characteristics: fields[8].clone(),
            job_parameters: fields[9].clone(),
        };

        if context_id < contexts.len() {
            if contexts[context_id] != ctx {
                return Err(CsvError::InconsistentContext { line: line_no });
            }
        } else if context_id == contexts.len() {
            contexts.push(ctx);
        } else {
            // Ids must appear densely in first-occurrence order.
            return Err(CsvError::InconsistentContext { line: line_no });
        }

        runs.push(JobRun {
            context_id,
            scale_out,
            repeat,
            runtime_s,
        });
    }

    Ok(Dataset { contexts, runs })
}

/// Quotes a field when needed (RFC 4180).
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Splits one CSV row honouring quotes.
fn split_row(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut current));
            }
            other => current.push(other),
        }
    }
    fields.push(current);
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_bell, generate_c3o, GeneratorConfig};

    #[test]
    fn round_trip_c3o() {
        let ds = generate_c3o(&GeneratorConfig::seeded(3));
        let text = to_csv(&ds);
        let back = from_csv(&text).unwrap();
        assert_eq!(back.contexts, ds.contexts);
        assert_eq!(back.runs.len(), ds.runs.len());
        for (a, b) in back.runs.iter().zip(ds.runs.iter()) {
            assert_eq!(a.context_id, b.context_id);
            assert_eq!(a.scale_out, b.scale_out);
            assert!((a.runtime_s - b.runtime_s).abs() < 1e-5);
        }
    }

    #[test]
    fn round_trip_bell() {
        let ds = generate_bell(&GeneratorConfig::seeded(3));
        let back = from_csv(&to_csv(&ds)).unwrap();
        assert_eq!(back.contexts, ds.contexts);
        assert_eq!(back.runs.len(), ds.runs.len());
    }

    #[test]
    fn quoted_fields_survive() {
        let mut ds = generate_bell(&GeneratorConfig::seeded(1));
        ds.contexts[0].job_parameters = "--pattern \"a,b\",--verbose".to_string();
        let back = from_csv(&to_csv(&ds)).unwrap();
        assert_eq!(
            back.contexts[0].job_parameters,
            ds.contexts[0].job_parameters
        );
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(from_csv("foo,bar\n"), Err(CsvError::BadHeader(_))));
    }

    #[test]
    fn field_count_checked() {
        let text = format!("{HEADER}\nc3o,grep,0\n");
        assert!(matches!(
            from_csv(&text),
            Err(CsvError::FieldCount { line: 2, got: 3 })
        ));
    }

    #[test]
    fn bad_algorithm_reported() {
        let text =
            format!("{HEADER}\nc3o,quicksort,0,m4.xlarge,4,16384,1,1000,text,params,2,0,10.0\n");
        match from_csv(&text) {
            Err(CsvError::BadField {
                column: "algorithm",
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inconsistent_context_detected() {
        let text = format!(
            "{HEADER}\n\
             c3o,grep,0,m4.xlarge,4,16384,1,1000,text-logs,--pattern a,2,0,10.0\n\
             c3o,grep,0,r4.xlarge,4,31232,0.95,1000,text-logs,--pattern a,4,0,8.0\n"
        );
        assert!(matches!(
            from_csv(&text),
            Err(CsvError::InconsistentContext { line: 3 })
        ));
    }

    #[test]
    fn split_row_handles_escaped_quotes() {
        assert_eq!(
            split_row("a,\"b\"\"c\",d"),
            vec!["a".to_string(), "b\"c".to_string(), "d".to_string()]
        );
    }
}
