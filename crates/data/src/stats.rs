//! Dataset summary statistics: the numbers a user checks before trusting a
//! trace collection (and the numbers §IV-B of the paper reports about the
//! real datasets).

use crate::schema::{Algorithm, Dataset};
use serde::Serialize;

/// Per-algorithm summary of a dataset.
#[derive(Debug, Clone, Serialize)]
pub struct AlgorithmStats {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Number of unique execution contexts.
    pub contexts: usize,
    /// Number of unique `(context, scale-out)` experiments.
    pub unique_experiments: usize,
    /// Total runs (experiments × repeats).
    pub runs: usize,
    /// Smallest observed runtime in seconds.
    pub min_runtime_s: f64,
    /// Largest observed runtime in seconds.
    pub max_runtime_s: f64,
    /// Mean runtime in seconds.
    pub mean_runtime_s: f64,
    /// Mean coefficient of variation across repeats of the same experiment
    /// (measurement noise level).
    pub mean_repeat_cv: f64,
    /// Fraction of contexts whose noise-free-ish runtime curve (mean over
    /// repeats) is monotone decreasing over the scale-out grid — a proxy for
    /// "trivial scale-out behaviour".
    pub monotone_context_fraction: f64,
}

/// Computes per-algorithm statistics.
pub fn summarize(dataset: &Dataset) -> Vec<AlgorithmStats> {
    dataset
        .algorithms()
        .into_iter()
        .map(|algorithm| {
            let contexts = dataset.contexts_for(algorithm);
            let mut runtimes = Vec::new();
            let mut cvs = Vec::new();
            let mut unique = 0;
            let mut monotone = 0;

            for ctx in &contexts {
                let runs = dataset.runs_for_context(ctx.id);
                let scale_outs = dataset.scale_outs_for_context(ctx.id);
                let mut means = Vec::with_capacity(scale_outs.len());
                for &x in &scale_outs {
                    let times: Vec<f64> = runs
                        .iter()
                        .filter(|r| r.scale_out == x)
                        .map(|r| r.runtime_s)
                        .collect();
                    unique += 1;
                    let mean = bellamy_linalg::stats::mean(&times);
                    let sd = bellamy_linalg::stats::std_dev(&times);
                    if mean > 0.0 && times.len() > 1 {
                        cvs.push(sd / mean);
                    }
                    means.push(mean);
                    runtimes.extend(times);
                }
                if means.windows(2).all(|w| w[1] <= w[0]) {
                    monotone += 1;
                }
            }

            AlgorithmStats {
                algorithm,
                contexts: contexts.len(),
                unique_experiments: unique,
                runs: runtimes.len(),
                min_runtime_s: runtimes.iter().copied().fold(f64::INFINITY, f64::min),
                max_runtime_s: runtimes.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                mean_runtime_s: bellamy_linalg::stats::mean(&runtimes),
                mean_repeat_cv: bellamy_linalg::stats::mean(&cvs),
                monotone_context_fraction: if contexts.is_empty() {
                    0.0
                } else {
                    monotone as f64 / contexts.len() as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_bell, generate_c3o, GeneratorConfig};

    #[test]
    fn c3o_summary_matches_paper_shape() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let stats = summarize(&ds);
        assert_eq!(stats.len(), 5);
        let total_unique: usize = stats.iter().map(|s| s.unique_experiments).sum();
        assert_eq!(total_unique, 930);
        let total_runs: usize = stats.iter().map(|s| s.runs).sum();
        assert_eq!(total_runs, 4650);
        for s in &stats {
            assert!(s.min_runtime_s > 0.0);
            assert!(s.max_runtime_s > s.min_runtime_s);
            assert!(
                s.mean_repeat_cv > 0.0 && s.mean_repeat_cv < 0.2,
                "{}: repeat noise {} out of calibration",
                s.algorithm,
                s.mean_repeat_cv
            );
        }
    }

    #[test]
    fn trivial_algorithms_are_more_monotone() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let stats = summarize(&ds);
        let frac = |alg: Algorithm| {
            stats
                .iter()
                .find(|s| s.algorithm == alg)
                .expect("present")
                .monotone_context_fraction
        };
        // Grep scales down smoothly far more often than SGD/K-Means do.
        assert!(frac(Algorithm::Grep) > frac(Algorithm::Sgd));
        assert!(frac(Algorithm::Grep) > frac(Algorithm::KMeans));
    }

    #[test]
    fn bell_summary() {
        let ds = generate_bell(&GeneratorConfig::default());
        let stats = summarize(&ds);
        assert_eq!(stats.len(), 3);
        for s in &stats {
            assert_eq!(s.contexts, 1);
            assert_eq!(s.unique_experiments, 15);
            assert_eq!(s.runs, 105);
        }
    }
}
