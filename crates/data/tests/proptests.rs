//! Property-based tests for the trace generators and the ground-truth model.

use bellamy_data::csv::{from_csv, to_csv};
use bellamy_data::{
    generate_bell, generate_c3o, ground_truth_profile, Algorithm, Dataset, Environment,
    GeneratorConfig, JobContext, JobRun, NodeType,
};
use proptest::prelude::*;

fn arb_context() -> impl Strategy<Value = JobContext> {
    (
        prop_oneof![
            Just("m4.xlarge"),
            Just("c4.2xlarge"),
            Just("r4.xlarge"),
            Just("cluster-node"),
        ],
        512u64..200_000,
        "[a-z]{2,10}-[a-z]{2,10}",
        "--[a-z]{2,10} [a-z0-9]{1,8}",
        prop_oneof![
            Just(Algorithm::Grep),
            Just(Algorithm::Sort),
            Just(Algorithm::Sgd),
            Just(Algorithm::KMeans),
            Just(Algorithm::PageRank),
        ],
        prop_oneof![
            Just(Environment::C3oPublicCloud),
            Just(Environment::BellPrivateCluster)
        ],
    )
        .prop_map(
            |(node, size, chars, params, algorithm, environment)| JobContext {
                id: 0,
                environment,
                algorithm,
                node_type: NodeType::by_name(node).expect("catalog name"),
                dataset_size_mb: size,
                dataset_characteristics: chars,
                job_parameters: params,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn profile_is_monotone_in_dataset_size(ctx in arb_context(), x in 2u32..32) {
        let mut bigger = ctx.clone();
        bigger.dataset_size_mb = ctx.dataset_size_mb * 2;
        let p1 = ground_truth_profile(&ctx);
        let p2 = ground_truth_profile(&bigger);
        prop_assert!(
            p2.runtime(x as f64) >= p1.runtime(x as f64) - 1e-9,
            "doubling the dataset must not speed the job up"
        );
    }

    #[test]
    fn optimal_scale_out_is_in_range(ctx in arb_context()) {
        let p = ground_truth_profile(&ctx);
        let best = p.optimal_scale_out(2, 12);
        prop_assert!((2..=12).contains(&best));
        // It really is minimal over the grid.
        for x in 2..=12u32 {
            prop_assert!(p.runtime(best as f64) <= p.runtime(x as f64) + 1e-9);
        }
    }

    #[test]
    fn min_scale_out_meeting_is_minimal(ctx in arb_context(), slack in 1.01f64..3.0) {
        let p = ground_truth_profile(&ctx);
        let best = (2..=12u32).map(|x| p.runtime(x as f64)).fold(f64::INFINITY, f64::min);
        let target = best * slack;
        let chosen = p.min_scale_out_meeting(target, 2, 12).expect("reachable by construction");
        prop_assert!(p.runtime(chosen as f64) <= target);
        for x in 2..chosen {
            prop_assert!(p.runtime(x as f64) > target, "{x} already met the target");
        }
    }

    #[test]
    fn spill_and_wave_factors_are_bounded_multipliers(ctx in arb_context(), x in 1u32..64) {
        let p = ground_truth_profile(&ctx);
        let s = p.spill_factor(x as f64);
        let w = p.wave_factor(x as f64);
        prop_assert!(s >= 1.0 && s.is_finite());
        prop_assert!(w >= 1.0 && w.is_finite());
        // ceil(v)/v < 2 for v >= 1; below one wave's worth of tasks the
        // factor grows like slots/tasks (cluster saturation) — but then the
        // *work term* (theta2/x)·w stays bounded by a constant, which is the
        // physically meaningful invariant.
        let slots = x as f64 * p.slots_per_machine as f64;
        let cap = 1.0 + p.wave_share * ((slots / p.tasks as f64).max(2.0) - 1.0);
        prop_assert!(w <= cap + 1e-9, "wave factor {w} above cap {cap}");
        let work_term = (1.0 / x as f64) * w;
        let saturation_bound = 1.0 + p.wave_share * p.slots_per_machine as f64 / p.tasks as f64;
        prop_assert!(
            work_term <= saturation_bound + 1e-9,
            "work multiplier {work_term} above saturation bound {saturation_bound}"
        );
    }

    #[test]
    fn csv_round_trip_with_arbitrary_params(
        params in "[ -~]{1,40}",
        chars in "[a-z,\"]{1,20}"
    ) {
        // Arbitrary printable params including quotes/commas must survive.
        let ctx = JobContext {
            id: 0,
            environment: Environment::C3oPublicCloud,
            algorithm: Algorithm::Grep,
            node_type: NodeType::by_name("m4.xlarge").expect("catalog"),
            dataset_size_mb: 1000,
            dataset_characteristics: chars,
            job_parameters: params,
        };
        let ds = Dataset {
            contexts: vec![ctx],
            runs: vec![JobRun { context_id: 0, scale_out: 2, repeat: 0, runtime_s: 10.0 }],
        };
        let back = from_csv(&to_csv(&ds)).expect("round trip");
        prop_assert_eq!(&back.contexts[0].job_parameters, &ds.contexts[0].job_parameters);
        prop_assert_eq!(
            &back.contexts[0].dataset_characteristics,
            &ds.contexts[0].dataset_characteristics
        );
    }

    #[test]
    fn generator_seeds_are_reproducible(seed in 0u64..64) {
        let a = generate_bell(&GeneratorConfig::seeded(seed));
        let b = generate_bell(&GeneratorConfig::seeded(seed));
        prop_assert_eq!(a.runs, b.runs);
    }
}

#[test]
fn c3o_and_bell_do_not_share_noise_streams() {
    // Same master seed must still give independent noise across datasets.
    let gen = GeneratorConfig::seeded(7);
    let c3o = generate_c3o(&gen);
    let bell = generate_bell(&gen);
    assert_ne!(c3o.runs[0].runtime_s, bell.runs[0].runtime_s);
}
