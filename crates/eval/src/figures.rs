//! Data preparation for the descriptive figures: Fig. 2 (runtime variance
//! across contexts) and Fig. 4 (auto-encoder codes of two SGD contexts).

use bellamy_core::ModelState;
use bellamy_data::{Algorithm, Dataset, JobContext};
use bellamy_encoding::PropertyValue;
use bellamy_linalg::stats;
use serde::Serialize;

/// One point of the Fig. 2 distribution: the spread of normalized runtimes
/// at a given scale-out across every context of an algorithm.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Scale-out (machines).
    pub scale_out: u32,
    /// Mean of the normalized runtimes across contexts.
    pub mean: f64,
    /// Standard deviation across contexts.
    pub std: f64,
    /// Minimum across contexts.
    pub min: f64,
    /// Maximum across contexts.
    pub max: f64,
}

/// Computes Fig. 2: per context the mean runtime per scale-out is normalized
/// by the context's maximum (so every context maps into `(0, 1]`), then the
/// distribution across contexts is summarized per (algorithm, scale-out).
///
/// A wide spread at a scale-out means contexts disagree about the shape —
/// exactly the "difficulties of estimating scale-out behaviours" the figure
/// illustrates.
pub fn fig2_normalized_runtimes(dataset: &Dataset) -> Vec<Fig2Row> {
    let mut rows = Vec::new();
    for algorithm in dataset.algorithms() {
        // normalized[context][scale_out] -> value
        let mut per_scale_out: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
        for ctx in dataset.contexts_for(algorithm) {
            let scale_outs = dataset.scale_outs_for_context(ctx.id);
            let runs = dataset.runs_for_context(ctx.id);
            let means: Vec<(u32, f64)> = scale_outs
                .iter()
                .map(|&x| {
                    let times: Vec<f64> = runs
                        .iter()
                        .filter(|r| r.scale_out == x)
                        .map(|r| r.runtime_s)
                        .collect();
                    (x, stats::mean(&times))
                })
                .collect();
            let max = means.iter().map(|m| m.1).fold(f64::NEG_INFINITY, f64::max);
            for (x, m) in means {
                per_scale_out.entry(x).or_default().push(m / max);
            }
        }
        for (x, values) in per_scale_out {
            rows.push(Fig2Row {
                algorithm,
                scale_out: x,
                mean: stats::mean(&values),
                std: stats::std_dev(&values),
                min: values.iter().copied().fold(f64::INFINITY, f64::min),
                max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            });
        }
    }
    rows
}

/// Fig. 4 output: the three displayed properties of a context and their
/// 4-dim codes.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Context {
    /// Human-readable property renderings (node type, job parameters,
    /// dataset size — the rows of the paper's figure).
    pub properties: Vec<String>,
    /// One code (length `M = 4`) per property.
    pub codes: Vec<Vec<f64>>,
}

/// Computes the Fig. 4 code visualization for one context using a (pre-)
/// trained model snapshot: node type, job parameters and dataset size, in
/// the paper's row order (top to bottom).
pub fn fig4_codes(model: &ModelState, ctx: &JobContext) -> Fig4Context {
    let properties = [
        PropertyValue::text(&ctx.node_type.name),
        PropertyValue::text(&ctx.job_parameters),
        PropertyValue::Number(ctx.dataset_size_mb),
    ];
    Fig4Context {
        properties: properties.iter().map(|p| p.display()).collect(),
        codes: properties.iter().map(|p| model.code_for(p)).collect(),
    }
}

/// Empirical cumulative distribution function: returns `(value, P(X <= value))`
/// pairs at each distinct observed value (Fig. 7's y-axis).
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, v) in sorted.iter().enumerate() {
        let p = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == *v => last.1 = p,
            _ => out.push((*v, p)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellamy_core::{BellamyConfig, PretrainConfig, TrainingSample};
    use bellamy_data::{generate_c3o, GeneratorConfig};

    #[test]
    fn fig2_rows_are_normalized() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let rows = fig2_normalized_runtimes(&ds);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.max <= 1.0 + 1e-12, "normalization bound violated: {r:?}");
            assert!(r.min > 0.0);
            assert!(r.mean >= r.min && r.mean <= r.max);
        }
        // Every algorithm contributes all six scale-outs.
        for alg in Algorithm::ALL {
            let n = rows.iter().filter(|r| r.algorithm == alg).count();
            assert_eq!(n, 6, "{alg}");
        }
    }

    #[test]
    fn fig2_shows_more_variance_for_non_trivial_algorithms() {
        // SGD/K-Means curves differ more across contexts than Grep curves at
        // high scale-outs — the motivation for context-aware modeling.
        let ds = generate_c3o(&GeneratorConfig::default());
        let rows = fig2_normalized_runtimes(&ds);
        let spread = |alg: Algorithm| -> f64 {
            rows.iter()
                .filter(|r| r.algorithm == alg && r.scale_out == 12)
                .map(|r| r.max - r.min)
                .next()
                .expect("row exists")
        };
        assert!(
            spread(Algorithm::Sgd) > spread(Algorithm::Grep),
            "SGD should vary more across contexts than Grep"
        );
    }

    #[test]
    fn fig4_codes_shapes() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let ctxs = ds.contexts_for(Algorithm::Sgd);
        let samples: Vec<TrainingSample> = ds
            .runs_for_context(ctxs[0].id)
            .iter()
            .map(|r| TrainingSample::from_run(ctxs[0], r))
            .collect();
        let mut model = bellamy_core::Bellamy::new(BellamyConfig::default(), 4);
        bellamy_core::train::pretrain(
            &mut model,
            &samples,
            &PretrainConfig {
                epochs: 5,
                ..PretrainConfig::default()
            },
            0,
        );
        let state = model.snapshot().expect("pretrained");
        let fig = fig4_codes(&state, ctxs[0]);
        assert_eq!(fig.codes.len(), 3);
        assert!(fig.codes.iter().all(|c| c.len() == 4));
        assert_eq!(fig.properties.len(), 3);
        // Distinct contexts produce distinct code matrices.
        let fig2 = fig4_codes(&state, ctxs[1]);
        assert_ne!(fig.codes, fig2.codes);
    }

    #[test]
    fn ecdf_properties() {
        let values = [3.0, 1.0, 2.0, 2.0];
        let e = ecdf(&values);
        assert_eq!(e, vec![(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]);
        assert!(ecdf(&[]).is_empty());
        // Monotone non-decreasing, ends at 1.
        let e2 = ecdf(&[5.0, 1.0, 9.0, 7.0, 7.0, 2.0]);
        for w in e2.windows(2) {
            assert!(w[1].1 >= w[0].1 && w[1].0 > w[0].0);
        }
        assert_eq!(e2.last().unwrap().1, 1.0);
    }
}
