//! Evaluation harness reproducing the paper's experiments (§IV).
//!
//! Two experiment families:
//!
//! - **Ad hoc cross-context learning** ([`adhoc`]) on the C3O traces —
//!   Fig. 5 (interpolation/extrapolation MRE vs. number of data points),
//!   Fig. 6 (interpolation MAE), Fig. 7 (eCDF of fine-tuning epochs) and the
//!   §IV-C1 fitting-time comparison;
//! - **Ad hoc cross-environment learning** ([`crossenv`]) — pre-train on
//!   C3O, reuse on the Bell traces with the four reuse strategies — Fig. 8
//!   and the §IV-C2 fitting times.
//!
//! Plus the data-description figures: Fig. 2 (normalized runtime variance
//! across contexts) and Fig. 4 (auto-encoder codes of two SGD contexts) in
//! [`figures`].
//!
//! The split protocol ([`splits`]) implements the paper's random
//! sub-sampling cross-validation: training points with pairwise-distinct
//! scale-outs, an interpolation test point inside the training range and an
//! extrapolation test point outside it.

pub mod adhoc;
pub mod allocation_eval;
pub mod crossenv;
pub mod figures;
pub mod report;
pub mod runner;
pub mod splits;

pub use adhoc::{run_adhoc, AdhocConfig, AdhocResults};
pub use allocation_eval::{run_allocation, summarize_allocation, AllocationConfig};
pub use crossenv::{run_crossenv, run_crossenv_with_service, CrossEnvConfig, CrossEnvResults};
pub use runner::{Method, PredictionRecord, Task};
pub use splits::{generate_splits, Split};

/// Experiment scale: `Quick` finishes in minutes on a laptop and is used by
/// tests and `cargo bench`; `Medium` is the scale recorded in
/// EXPERIMENTS.md (tens of minutes on one core); `Paper` approaches the
/// paper's split counts and training budgets (hours).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Reduced split counts and epoch budgets.
    Quick,
    /// Intermediate scale used for the recorded reproduction runs.
    Medium,
    /// Full split counts and Table I epoch budgets.
    Paper,
}

impl Profile {
    /// Parses `"quick"` / `"medium"` / `"paper"`.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "quick" => Some(Profile::Quick),
            "medium" => Some(Profile::Medium),
            "paper" => Some(Profile::Paper),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_parsing() {
        assert_eq!(Profile::from_name("quick"), Some(Profile::Quick));
        assert_eq!(Profile::from_name("paper"), Some(Profile::Paper));
        assert_eq!(Profile::from_name("fast"), None);
    }
}
