//! End-task evaluation: resource allocation quality (paper §I / §V).
//!
//! Runtime predictors exist to *choose resources*: "since methods like NNLS
//! or Bell are eventually used for selecting a suitable scale-out that meets
//! certain runtime targets, an inaccurate model can favor the selection of
//! not ideal resources, which in turn can introduce unnecessary costs"
//! (§IV-C1). This experiment measures that directly: every method picks the
//! smallest scale-out predicted to meet a runtime target from few
//! observations, and the choice is scored against the noise-free ground
//! truth — did the chosen allocation actually meet the target, and how many
//! machines were wasted?

use crate::runner::Method;
use crate::splits::{generate_task_splits, SplitTask};
use bellamy_baselines::{BellModel, ErnestModel, ScaleOutModel};
use bellamy_core::{
    context_properties, min_scale_out_meeting, Bellamy, BellamyConfig, FinetuneConfig, ModelKey,
    PretrainConfig, ReuseStrategy, Service, TrainingSample,
};
use bellamy_data::{ground_truth_profile, Algorithm, Dataset};
use serde::Serialize;

/// Configuration of the allocation experiment.
#[derive(Debug, Clone)]
pub struct AllocationConfig {
    /// Master seed.
    pub seed: u64,
    /// Contexts per algorithm.
    pub contexts_per_algorithm: usize,
    /// Training points per decision.
    pub n_train: usize,
    /// Decisions (splits) per context.
    pub decisions: usize,
    /// Runtime target as a multiple of the context's best achievable
    /// noise-free runtime (must be > 1 for the target to be meetable).
    pub target_slack: f64,
    /// Pre-training budget for the Bellamy (full) variant.
    pub pretrain: PretrainConfig,
    /// Fine-tuning budget.
    pub finetune: FinetuneConfig,
    /// Worker threads.
    pub threads: usize,
}

impl AllocationConfig {
    /// Minutes-scale configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            contexts_per_algorithm: 2,
            n_train: 3,
            decisions: 5,
            target_slack: 1.15,
            pretrain: PretrainConfig {
                epochs: 100,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                max_epochs: 250,
                patience: 150,
                ..FinetuneConfig::default()
            },
            threads: bellamy_par::default_threads(),
        }
    }
}

/// Outcome of one allocation decision by one method.
#[derive(Debug, Clone, Serialize)]
pub struct AllocationRecord {
    /// The deciding method.
    pub method: Method,
    /// Algorithm of the context.
    pub algorithm: Algorithm,
    /// Context id.
    pub context_id: usize,
    /// The runtime target in seconds.
    pub target_s: f64,
    /// Chosen scale-out (`None`: method predicted the target unreachable).
    pub chosen: Option<u32>,
    /// The true minimal scale-out meeting the target (ground truth).
    pub optimal: u32,
    /// Whether the chosen allocation truly meets the target.
    pub met_target: bool,
    /// Machines allocated beyond the true minimum (0 when optimal; counts
    /// only successful decisions).
    pub overshoot: u32,
}

/// Aggregated per-method allocation quality.
#[derive(Debug, Clone, Serialize)]
pub struct AllocationSummary {
    /// The method.
    pub method: Method,
    /// Fraction of decisions where the chosen allocation truly met the
    /// target.
    pub success_rate: f64,
    /// Mean machines over-allocated, among successful decisions.
    pub mean_overshoot: f64,
    /// Fraction of decisions where the method declared the target
    /// unreachable although it was reachable.
    pub gave_up_rate: f64,
    /// Number of decisions.
    pub decisions: usize,
}

/// Runs the allocation experiment on the C3O grid (scale-outs 2–12). The
/// per-context pretrained models are served through one shared [`Service`]
/// (keyed by algorithm and held-out context) instead of being trained into
/// worker-local `&mut Bellamy`s, and every candidate curve is swept
/// through a [`bellamy_core::ModelClient`].
pub fn run_allocation(dataset: &Dataset, cfg: &AllocationConfig) -> Vec<AllocationRecord> {
    let service = Service::in_memory();
    let mut jobs: Vec<(Algorithm, usize)> = Vec::new();
    for algorithm in Algorithm::ALL {
        let seed = cfg.seed ^ (algorithm as u64).wrapping_mul(0xA110C);
        for ctx_id in
            crate::adhoc::choose_contexts(dataset, algorithm, cfg.contexts_per_algorithm, seed)
        {
            jobs.push((algorithm, ctx_id));
        }
    }
    let per_context: Vec<Vec<AllocationRecord>> =
        bellamy_par::par_map_with_threads(&jobs, cfg.threads, |&(algorithm, ctx_id)| {
            evaluate_context(dataset, algorithm, ctx_id, cfg, &service)
        });
    per_context.into_iter().flatten().collect()
}

fn evaluate_context(
    dataset: &Dataset,
    algorithm: Algorithm,
    ctx_id: usize,
    cfg: &AllocationConfig,
    service: &Service,
) -> Vec<AllocationRecord> {
    let ctx = &dataset.contexts[ctx_id];
    let props = context_properties(ctx);
    let seed = cfg.seed ^ (ctx_id as u64).wrapping_mul(0x51CA);

    let truth = ground_truth_profile(ctx);
    let (lo, hi) = (2u32, 12u32);
    let best = (lo..=hi)
        .map(|x| truth.runtime(x as f64))
        .fold(f64::INFINITY, f64::min);
    let target_s = best * cfg.target_slack;
    let optimal = truth
        .min_scale_out_meeting(target_s, lo, hi)
        .expect("slack > 1 makes the target reachable");

    // A serving client for the full variant of this (algorithm, held-out
    // context) — pre-trained at most once per key, shared thereafter.
    let key = ModelKey::new(
        algorithm.name(),
        format!(
            "allocation-excl-ctx{ctx_id}-seed{}-{}",
            cfg.seed,
            crate::runner::pretrain_tag(&cfg.pretrain)
        ),
        &BellamyConfig::default(),
    );
    let pretrained = service
        .client_or_pretrain(&key, &cfg.pretrain, seed, || {
            dataset
                .runs_for_algorithm_excluding(algorithm, Some(ctx_id))
                .iter()
                .map(|r| TrainingSample::from_run(&dataset.contexts[r.context_id], r))
                .collect()
        })
        .expect("allocation pre-training converges");

    let runs: Vec<(u32, f64)> = dataset
        .runs_for_context(ctx_id)
        .iter()
        .map(|r| (r.scale_out, r.runtime_s))
        .collect();
    // Reuse the split machinery for sampling training subsets; the test
    // point is irrelevant here, only the training sets are used.
    let splits = generate_task_splits(
        &runs,
        cfg.n_train,
        SplitTask::Extrapolation,
        cfg.decisions,
        seed,
    );

    // Every method is asked for its full candidate curve up front — the
    // Bellamy variants through one batched client sweep per decision (one
    // graph setup for all 11 candidates instead of one per candidate),
    // the baselines through their own batch API.
    let xs: Vec<f64> = (lo..=hi).map(|x| x as f64).collect();

    let mut records = Vec::new();
    for (split_no, split) in splits.iter().enumerate() {
        let train_pts: Vec<(f64, f64)> = split
            .train
            .iter()
            .map(|&i| (runs[i].0 as f64, runs[i].1))
            .collect();
        let train_samples: Vec<TrainingSample> = split
            .train
            .iter()
            .map(|&i| TrainingSample {
                scale_out: runs[i].0 as f64,
                runtime_s: runs[i].1,
                props: props.clone(),
            })
            .collect();
        let split_seed = seed ^ ((split_no as u64) << 24);

        let mut judge = |method: Method, curve: &[f64]| {
            let chosen = min_scale_out_meeting(|x| curve[(x - lo) as usize], target_s, lo, hi)
                .map(|r| r.scale_out);
            let met = chosen
                .map(|x| truth.runtime(x as f64) <= target_s)
                .unwrap_or(false);
            records.push(AllocationRecord {
                method,
                algorithm,
                context_id: ctx_id,
                target_s,
                chosen,
                optimal,
                met_target: met,
                overshoot: match (chosen, met) {
                    (Some(x), true) => x.saturating_sub(optimal),
                    _ => 0,
                },
            });
        };

        if let Ok(m) = ErnestModel::fit(&train_pts) {
            judge(Method::Nnls, &m.predict_all(&xs));
        }
        if let Ok(m) = BellModel::fit(&train_pts) {
            judge(Method::Bell, &m.predict_all(&xs));
        }
        // Locally trained states live outside the hub; `client_for_state`
        // serves them through the same front door.
        let local = service.client_for_state(eval_local_model(&train_samples, cfg, split_seed));
        judge(Method::BellamyLocal, &local.predict_sweep(&props, &xs));
        let mut tuned = Bellamy::from_state(pretrained.state());
        bellamy_core::finetune::fine_tune(
            &mut tuned,
            &train_samples,
            &cfg.finetune,
            ReuseStrategy::PartialUnfreeze,
            split_seed,
        );
        let tuned_state = tuned.snapshot().expect("fine-tuned model fits");
        let tuned_client = service.client_for_state(tuned_state);
        judge(
            Method::BellamyFull,
            &tuned_client.predict_sweep(&props, &xs),
        );
    }
    records
}

fn eval_local_model(
    train: &[TrainingSample],
    cfg: &AllocationConfig,
    seed: u64,
) -> std::sync::Arc<bellamy_core::ModelState> {
    let mut model = Bellamy::new(BellamyConfig::default(), seed);
    bellamy_core::finetune::fit_local(&mut model, train, &cfg.finetune, seed);
    model.snapshot().expect("fit_local fits")
}

/// Aggregates records per method.
pub fn summarize_allocation(records: &[AllocationRecord]) -> Vec<AllocationSummary> {
    let mut methods: Vec<Method> = Vec::new();
    for r in records {
        if !methods.contains(&r.method) {
            methods.push(r.method);
        }
    }
    methods
        .into_iter()
        .map(|method| {
            let rs: Vec<&AllocationRecord> =
                records.iter().filter(|r| r.method == method).collect();
            let successes: Vec<&&AllocationRecord> = rs.iter().filter(|r| r.met_target).collect();
            AllocationSummary {
                method,
                success_rate: successes.len() as f64 / rs.len() as f64,
                mean_overshoot: if successes.is_empty() {
                    0.0
                } else {
                    successes.iter().map(|r| r.overshoot as f64).sum::<f64>()
                        / successes.len() as f64
                },
                gave_up_rate: rs.iter().filter(|r| r.chosen.is_none()).count() as f64
                    / rs.len() as f64,
                decisions: rs.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellamy_data::{generate_c3o, GeneratorConfig};

    #[test]
    fn allocation_records_are_consistent() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let cfg = AllocationConfig {
            contexts_per_algorithm: 1,
            decisions: 2,
            pretrain: PretrainConfig {
                epochs: 10,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                max_epochs: 30,
                patience: 20,
                ..FinetuneConfig::default()
            },
            ..AllocationConfig::quick(3)
        };
        let records = run_allocation(&ds, &cfg);
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.target_s > 0.0);
            assert!((2..=12).contains(&r.optimal));
            if let Some(x) = r.chosen {
                assert!((2..=12).contains(&x));
            } else {
                assert!(!r.met_target);
            }
            if r.met_target {
                let x = r.chosen.expect("met implies chosen");
                assert!(x >= r.optimal - r.overshoot, "overshoot accounting");
            }
        }
        let summaries = summarize_allocation(&records);
        assert!(!summaries.is_empty());
        for s in &summaries {
            assert!((0.0..=1.0).contains(&s.success_rate));
            assert!((0.0..=1.0).contains(&s.gave_up_rate));
            assert!(s.decisions > 0);
        }
    }

    #[test]
    fn perfect_predictor_always_succeeds() {
        // Judge the ground truth itself: success rate must be 1, overshoot 0.
        let ds = generate_c3o(&GeneratorConfig::default());
        let ctx = &ds.contexts[0];
        let truth = ground_truth_profile(ctx);
        let best = (2..=12u32)
            .map(|x| truth.runtime(x as f64))
            .fold(f64::INFINITY, f64::min);
        let target = best * 1.2;
        let optimal = truth.min_scale_out_meeting(target, 2, 12).unwrap();
        let rec = min_scale_out_meeting(|x| truth.runtime(x as f64), target, 2, 12).unwrap();
        assert_eq!(rec.scale_out, optimal);
        assert!(truth.runtime(rec.scale_out as f64) <= target);
    }
}
