//! Aggregation and rendering: the tables and ASCII series the `repro`
//! binary prints, plus JSON export of raw records.

use crate::runner::{Method, PredictionRecord, Task};
use bellamy_data::Algorithm;
use bellamy_linalg::stats;
use std::collections::BTreeMap;

/// Mean relative error per `(method, n_train)` for one algorithm and task —
/// the series of Fig. 5.
pub fn mre_series(
    records: &[PredictionRecord],
    algorithm: Option<Algorithm>,
    task: Task,
) -> BTreeMap<(String, usize), f64> {
    let mut buckets: BTreeMap<(String, usize), Vec<f64>> = BTreeMap::new();
    for r in records {
        if r.task != task {
            continue;
        }
        if let Some(a) = algorithm {
            if r.algorithm != a {
                continue;
            }
        }
        buckets
            .entry((r.method.name().to_string(), r.n_train))
            .or_default()
            .push(r.rel_error());
    }
    buckets
        .into_iter()
        .map(|(k, v)| (k, stats::mean(&v)))
        .collect()
}

/// Mean absolute error per method for one algorithm and task, aggregated
/// over splits, contexts, and numbers of data points — the bars of
/// Figs. 6 and 8.
pub fn mae_by_method(
    records: &[PredictionRecord],
    algorithm: Option<Algorithm>,
    task: Task,
) -> BTreeMap<String, f64> {
    let mut buckets: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in records {
        if r.task != task {
            continue;
        }
        if let Some(a) = algorithm {
            if r.algorithm != a {
                continue;
            }
        }
        buckets
            .entry(r.method.name().to_string())
            .or_default()
            .push(r.abs_error());
    }
    buckets
        .into_iter()
        .map(|(k, v)| (k, stats::mean(&v)))
        .collect()
}

/// Mean fitting time per method (the §IV-C "training time" numbers).
pub fn fit_time_by_method(records: &[PredictionRecord]) -> BTreeMap<String, f64> {
    let mut buckets: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for r in records {
        buckets
            .entry(r.method.name().to_string())
            .or_default()
            .push(r.fit_time_s);
    }
    buckets
        .into_iter()
        .map(|(k, v)| (k, stats::mean(&v)))
        .collect()
}

/// Fine-tuning epoch samples per `(algorithm, method)` — Fig. 7's inputs.
/// Only fine-tuned Bellamy records (`n_train >= 1`) count.
pub fn epochs_by_algorithm_and_method(
    records: &[PredictionRecord],
) -> BTreeMap<(Algorithm, Method), Vec<f64>> {
    let mut out: BTreeMap<(Algorithm, Method), Vec<f64>> = BTreeMap::new();
    for r in records {
        if r.n_train == 0 {
            continue;
        }
        if let Some(e) = r.epochs {
            out.entry((r.algorithm, r.method))
                .or_default()
                .push(e as f64);
        }
    }
    out
}

/// Renders an aligned, pipe-separated text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    let mut out = String::new();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&fmt_row(&separator));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Renders a horizontal ASCII bar chart (used for the MAE figures).
pub fn render_bar_chart(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(f64::EPSILON, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let bars = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{:<label_w$} | {:<width$} {:>10.3}\n",
            label,
            "#".repeat(bars),
            value,
        ));
    }
    out
}

/// Serializes records as pretty JSON for downstream plotting.
pub fn records_to_json(records: &[PredictionRecord]) -> String {
    serde_json::to_string_pretty(records).expect("records are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        method: Method,
        alg: Algorithm,
        n: usize,
        task: Task,
        pred: f64,
        actual: f64,
    ) -> PredictionRecord {
        PredictionRecord {
            method,
            algorithm: alg,
            context_id: 0,
            n_train: n,
            task,
            predicted_s: pred,
            actual_s: actual,
            fit_time_s: 0.01,
            epochs: method.is_bellamy().then_some(n * 10),
        }
    }

    #[test]
    fn mre_series_groups_correctly() {
        let records = vec![
            rec(
                Method::Nnls,
                Algorithm::Grep,
                2,
                Task::Interpolation,
                110.0,
                100.0,
            ),
            rec(
                Method::Nnls,
                Algorithm::Grep,
                2,
                Task::Interpolation,
                90.0,
                100.0,
            ),
            rec(
                Method::Nnls,
                Algorithm::Grep,
                3,
                Task::Interpolation,
                150.0,
                100.0,
            ),
            rec(
                Method::Nnls,
                Algorithm::Grep,
                2,
                Task::Extrapolation,
                500.0,
                100.0,
            ),
        ];
        let series = mre_series(&records, Some(Algorithm::Grep), Task::Interpolation);
        assert!((series[&("NNLS".to_string(), 2)] - 0.1).abs() < 1e-12);
        assert!((series[&("NNLS".to_string(), 3)] - 0.5).abs() < 1e-12);
        assert_eq!(series.len(), 2, "extrapolation must not leak in");
    }

    #[test]
    fn mae_by_method_aggregates() {
        let records = vec![
            rec(
                Method::Nnls,
                Algorithm::Sgd,
                2,
                Task::Interpolation,
                110.0,
                100.0,
            ),
            rec(
                Method::BellamyFull,
                Algorithm::Sgd,
                2,
                Task::Interpolation,
                102.0,
                100.0,
            ),
        ];
        let mae = mae_by_method(&records, None, Task::Interpolation);
        assert_eq!(mae["NNLS"], 10.0);
        assert_eq!(mae["Bellamy (full)"], 2.0);
    }

    #[test]
    fn epochs_exclude_direct_application() {
        let mut direct = rec(
            Method::BellamyFull,
            Algorithm::Sgd,
            0,
            Task::Extrapolation,
            1.0,
            1.0,
        );
        direct.epochs = Some(0);
        let tuned = rec(
            Method::BellamyFull,
            Algorithm::Sgd,
            3,
            Task::Interpolation,
            1.0,
            1.0,
        );
        let map = epochs_by_algorithm_and_method(&[direct, tuned]);
        let v = &map[&(Algorithm::Sgd, Method::BellamyFull)];
        assert_eq!(v, &vec![30.0]);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["method", "MAE"],
            &[
                vec!["NNLS".into(), "12.5".into()],
                vec!["Bellamy (full)".into(), "3.2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("method"));
        assert_eq!(lines[1].matches('|').count(), 3);
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let chart = render_bar_chart(&[("a".to_string(), 10.0), ("b".to_string(), 5.0)], 20);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 20);
        assert_eq!(lines[1].matches('#').count(), 10);
    }

    #[test]
    fn json_is_valid() {
        let records = vec![rec(
            Method::Bell,
            Algorithm::KMeans,
            3,
            Task::Interpolation,
            5.0,
            4.0,
        )];
        let json = records_to_json(&records);
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed[0]["n_train"], 3);
    }
}
