//! The paper's random sub-sampling cross-validation protocol (§IV-C).
//!
//! "For every fixed amount of training data points, random training points
//! are selected from the dataset such that the scale-outs of the data points
//! are pairwise different. To evaluate the interpolation capabilities ... we
//! randomly select a test point such that its scale-out lies in the range of
//! the training points. For evaluating the extrapolation capabilities, we
//! randomly select a test point such that its scale-out lies outside of the
//! range of the training points." The sub-sampling repeats until at most
//! `max_splits` *unique* splits exist per training-set size.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// One evaluation split over a context's runs. All fields are indices into
/// the run slice handed to [`generate_splits`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Split {
    /// Training runs (pairwise-distinct scale-outs).
    pub train: Vec<usize>,
    /// Interpolation test run (scale-out strictly inside the training range,
    /// not equal to any training scale-out).
    pub interp_test: usize,
    /// Extrapolation test run (scale-out outside the training range).
    pub extrap_test: usize,
}

/// Generates up to `max_splits` unique splits with `n_train` training points
/// from a context's `(scale_out, runtime)` runs.
///
/// Returns an empty vector when the protocol is unsatisfiable for this
/// `n_train` (e.g. every scale-out used for training leaves no interior
/// test point).
pub fn generate_splits(
    runs: &[(u32, f64)],
    n_train: usize,
    max_splits: usize,
    seed: u64,
) -> Vec<Split> {
    assert!(
        n_train >= 1,
        "use extrapolation-only evaluation for n_train = 0"
    );
    let mut scale_outs: Vec<u32> = runs.iter().map(|r| r.0).collect();
    scale_outs.sort_unstable();
    scale_outs.dedup();
    if scale_outs.len() < n_train + 2 {
        // Need at least one interior and one exterior scale-out left over.
        return Vec::new();
    }

    // Indices of runs per scale-out for fast sampling.
    let runs_at = |x: u32| -> Vec<usize> {
        runs.iter()
            .enumerate()
            .filter(|(_, r)| r.0 == x)
            .map(|(i, _)| i)
            .collect()
    };
    let per_scale_out: Vec<(u32, Vec<usize>)> =
        scale_outs.iter().map(|&x| (x, runs_at(x))).collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<Split> = HashSet::new();
    let mut out = Vec::new();
    let attempts = max_splits * 50;

    'outer: for _ in 0..attempts {
        if out.len() >= max_splits {
            break;
        }
        // Choose n_train distinct scale-outs.
        let mut chosen: Vec<usize> = (0..per_scale_out.len()).collect();
        for i in 0..n_train {
            let j = rng.random_range(i..chosen.len());
            chosen.swap(i, j);
        }
        let train_xs: Vec<usize> = chosen[..n_train].to_vec();
        let lo = train_xs
            .iter()
            .map(|&i| per_scale_out[i].0)
            .min()
            .expect("non-empty");
        let hi = train_xs
            .iter()
            .map(|&i| per_scale_out[i].0)
            .max()
            .expect("non-empty");

        // Candidate test scale-outs.
        let interp_candidates: Vec<usize> = (0..per_scale_out.len())
            .filter(|i| {
                let x = per_scale_out[*i].0;
                !train_xs.contains(i) && x > lo && x < hi
            })
            .collect();
        let extrap_candidates: Vec<usize> = (0..per_scale_out.len())
            .filter(|i| {
                let x = per_scale_out[*i].0;
                x < lo || x > hi
            })
            .collect();
        if interp_candidates.is_empty() || extrap_candidates.is_empty() {
            continue 'outer;
        }

        // Sample one concrete run per training scale-out and per test point.
        let mut train: Vec<usize> = train_xs
            .iter()
            .map(|&i| {
                let pool = &per_scale_out[i].1;
                pool[rng.random_range(0..pool.len())]
            })
            .collect();
        train.sort_unstable();
        let pick = |cands: &[usize], rng: &mut StdRng| {
            let sx = cands[rng.random_range(0..cands.len())];
            let pool = &per_scale_out[sx].1;
            pool[rng.random_range(0..pool.len())]
        };
        let split = Split {
            train,
            interp_test: pick(&interp_candidates, &mut rng),
            extrap_test: pick(&extrap_candidates, &mut rng),
        };
        if seen.insert(split.clone()) {
            out.push(split);
        }
    }
    out
}

/// A single-task split: training runs plus one test run.
///
/// The joint triple of [`Split`] is only satisfiable while at least one
/// interior *and* one exterior scale-out remain untouched (`n ≤ 4` on the
/// C3O grid). The figures' outer columns (interpolation at `n = 5`,
/// extrapolation at `n ∈ {1, 5}`) come from these single-task splits, which
/// follow the same sampling procedure with only the relevant test-point
/// constraint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TaskSplit {
    /// Training runs (pairwise-distinct scale-outs).
    pub train: Vec<usize>,
    /// The test run.
    pub test: usize,
}

/// Which test-point constraint a [`TaskSplit`] satisfies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitTask {
    /// Test scale-out strictly inside the training range.
    Interpolation,
    /// Test scale-out outside the training range.
    Extrapolation,
}

/// Generates up to `max_splits` unique single-task splits.
pub fn generate_task_splits(
    runs: &[(u32, f64)],
    n_train: usize,
    task: SplitTask,
    max_splits: usize,
    seed: u64,
) -> Vec<TaskSplit> {
    assert!(
        n_train >= 1,
        "n_train = 0 has no training set; evaluate directly"
    );
    let mut scale_outs: Vec<u32> = runs.iter().map(|r| r.0).collect();
    scale_outs.sort_unstable();
    scale_outs.dedup();
    if scale_outs.len() < n_train + 1 {
        return Vec::new();
    }
    let runs_at = |x: u32| -> Vec<usize> {
        runs.iter()
            .enumerate()
            .filter(|(_, r)| r.0 == x)
            .map(|(i, _)| i)
            .collect()
    };
    let per_scale_out: Vec<(u32, Vec<usize>)> =
        scale_outs.iter().map(|&x| (x, runs_at(x))).collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<TaskSplit> = HashSet::new();
    let mut out = Vec::new();
    for _ in 0..max_splits * 50 {
        if out.len() >= max_splits {
            break;
        }
        let mut chosen: Vec<usize> = (0..per_scale_out.len()).collect();
        for i in 0..n_train {
            let j = rng.random_range(i..chosen.len());
            chosen.swap(i, j);
        }
        let train_xs: Vec<usize> = chosen[..n_train].to_vec();
        let lo = train_xs
            .iter()
            .map(|&i| per_scale_out[i].0)
            .min()
            .expect("non-empty");
        let hi = train_xs
            .iter()
            .map(|&i| per_scale_out[i].0)
            .max()
            .expect("non-empty");
        let candidates: Vec<usize> = (0..per_scale_out.len())
            .filter(|i| {
                let x = per_scale_out[*i].0;
                match task {
                    SplitTask::Interpolation => !train_xs.contains(i) && x > lo && x < hi,
                    SplitTask::Extrapolation => x < lo || x > hi,
                }
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let mut train: Vec<usize> = train_xs
            .iter()
            .map(|&i| {
                let pool = &per_scale_out[i].1;
                pool[rng.random_range(0..pool.len())]
            })
            .collect();
        train.sort_unstable();
        let cx = candidates[rng.random_range(0..candidates.len())];
        let pool = &per_scale_out[cx].1;
        let test = pool[rng.random_range(0..pool.len())];
        let split = TaskSplit { train, test };
        if seen.insert(split.clone()) {
            out.push(split);
        }
    }
    out
}

/// Checks the protocol invariants of a split against the runs it was
/// generated from. Used by tests and debug assertions.
pub fn validate_split(runs: &[(u32, f64)], split: &Split) -> Result<(), String> {
    let train_xs: Vec<u32> = split.train.iter().map(|&i| runs[i].0).collect();
    let mut dedup = train_xs.clone();
    dedup.sort_unstable();
    dedup.dedup();
    if dedup.len() != train_xs.len() {
        return Err("training scale-outs not pairwise distinct".into());
    }
    let lo = *dedup.first().expect("non-empty train");
    let hi = *dedup.last().expect("non-empty train");
    let interp_x = runs[split.interp_test].0;
    if !(interp_x > lo && interp_x < hi) || train_xs.contains(&interp_x) {
        return Err(format!(
            "interpolation test {interp_x} not strictly inside ({lo},{hi})"
        ));
    }
    let extrap_x = runs[split.extrap_test].0;
    if (lo..=hi).contains(&extrap_x) {
        return Err(format!("extrapolation test {extrap_x} inside [{lo},{hi}]"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// C3O-shaped runs: scale-outs 2..12 step 2, 5 repeats each.
    fn c3o_runs() -> Vec<(u32, f64)> {
        let mut runs = Vec::new();
        for x in [2u32, 4, 6, 8, 10, 12] {
            for r in 0..5 {
                runs.push((x, 100.0 / x as f64 + r as f64));
            }
        }
        runs
    }

    #[test]
    fn splits_satisfy_protocol() {
        // Joint triples need an interior point: n = 1 has a degenerate range
        // (covered by task splits instead), so triples span 2..=4 here.
        let runs = c3o_runs();
        for n in 2..=4 {
            let splits = generate_splits(&runs, n, 50, 7);
            assert!(!splits.is_empty(), "no splits for n={n}");
            for s in &splits {
                assert_eq!(s.train.len(), n);
                validate_split(&runs, s).unwrap_or_else(|e| panic!("n={n}: {e}"));
            }
        }
    }

    #[test]
    fn unique_splits_only() {
        let runs = c3o_runs();
        let splits = generate_splits(&runs, 2, 200, 3);
        let set: HashSet<&Split> = splits.iter().collect();
        assert_eq!(set.len(), splits.len());
    }

    #[test]
    fn respects_max_splits() {
        let runs = c3o_runs();
        let splits = generate_splits(&runs, 2, 10, 3);
        assert!(splits.len() <= 10);
        assert!(!splits.is_empty());
    }

    #[test]
    fn unsatisfiable_sizes_return_empty() {
        let runs = c3o_runs();
        // n=5 leaves one scale-out: it cannot be both interior and exterior.
        assert!(generate_splits(&runs, 5, 50, 3).is_empty());
        assert!(generate_splits(&runs, 6, 50, 3).is_empty());
    }

    #[test]
    fn n1_has_no_interior_point() {
        // With one training point the range is degenerate: lo == hi, so no
        // strictly-interior test exists and the protocol is unsatisfiable.
        let runs = c3o_runs();
        assert!(generate_splits(&runs, 1, 50, 3).is_empty());
    }

    #[test]
    fn bell_shaped_runs_allow_larger_n() {
        // 15 distinct scale-outs: n up to 13 can satisfy the protocol.
        let mut runs = Vec::new();
        for i in 1..=15u32 {
            for r in 0..7 {
                runs.push((4 * i, 50.0 + r as f64));
            }
        }
        let splits = generate_splits(&runs, 6, 30, 11);
        assert!(!splits.is_empty());
        for s in &splits {
            validate_split(&runs, s).unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let runs = c3o_runs();
        let a = generate_splits(&runs, 3, 40, 5);
        let b = generate_splits(&runs, 3, 40, 5);
        assert_eq!(a, b);
        let c = generate_splits(&runs, 3, 40, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn task_splits_cover_edge_sizes() {
        let runs = c3o_runs();
        // Interpolation at n=5 works (leftover interior scale-out exists for
        // some subsets); extrapolation at n=1 and n=5 works too.
        let interp5 = generate_task_splits(&runs, 5, SplitTask::Interpolation, 30, 2);
        assert!(!interp5.is_empty());
        for s in &interp5 {
            let train_xs: Vec<u32> = s.train.iter().map(|&i| runs[i].0).collect();
            let lo = *train_xs.iter().min().unwrap();
            let hi = *train_xs.iter().max().unwrap();
            let tx = runs[s.test].0;
            assert!(tx > lo && tx < hi && !train_xs.contains(&tx));
        }
        let extrap1 = generate_task_splits(&runs, 1, SplitTask::Extrapolation, 30, 2);
        assert!(!extrap1.is_empty());
        for s in &extrap1 {
            let tx = runs[s.test].0;
            let train_x = runs[s.train[0]].0;
            assert_ne!(tx, train_x);
        }
        let extrap5 = generate_task_splits(&runs, 5, SplitTask::Extrapolation, 30, 2);
        assert!(!extrap5.is_empty());
        // Interpolation at n=6 stays impossible.
        assert!(generate_task_splits(&runs, 6, SplitTask::Interpolation, 30, 2).is_empty());
    }

    #[test]
    fn validate_split_catches_violations() {
        let runs = c3o_runs();
        // Duplicate training scale-outs (runs 0 and 1 are both x=2).
        let bad = Split {
            train: vec![0, 1],
            interp_test: 10,
            extrap_test: 29,
        };
        assert!(validate_split(&runs, &bad).is_err());
        // Interpolation point outside the range: train x={2,6} (runs 0, 10),
        // test x=12 (run 29).
        let bad2 = Split {
            train: vec![0, 10],
            interp_test: 29,
            extrap_test: 29,
        };
        assert!(validate_split(&runs, &bad2).is_err());
    }
}
