//! Experiment 2: Potential of Ad Hoc Cross-Environment Learning
//! (§IV-C2 — Fig. 8 and the cross-environment fitting times).
//!
//! Simulates migrating from the public cloud (pre-training on C3O data) to
//! the private cluster (evaluation on the Bell data): for each of Grep, SGD
//! and PageRank a model is pre-trained on *all* C3O executions of the
//! algorithm and then reused on the single Bell context under the four reuse
//! strategies, compared against NNLS, Bell, and a local Bellamy model.

use crate::runner::{eval_bell, eval_bellamy, eval_nnls, Method, PredictionRecord, Task};
use crate::splits::{generate_task_splits, SplitTask};
use bellamy_core::{
    context_properties, BellamyConfig, FinetuneConfig, ModelKey, PretrainConfig, ReuseStrategy,
    Service, TrainingSample,
};
use bellamy_data::{Algorithm, Dataset};

/// Configuration of the cross-environment experiment.
#[derive(Debug, Clone)]
pub struct CrossEnvConfig {
    /// Master seed.
    pub seed: u64,
    /// Unique splits per (algorithm, n) (paper: ≤ 500).
    pub max_splits: usize,
    /// Largest training-set size evaluated on the Bell grid.
    pub max_n_train: usize,
    /// Pre-training budget (on the C3O corpus).
    pub pretrain: PretrainConfig,
    /// Fine-tuning budget (on the Bell context).
    pub finetune: FinetuneConfig,
    /// Worker threads.
    pub threads: usize,
}

impl CrossEnvConfig {
    /// Minutes-scale configuration.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            max_splits: 8,
            max_n_train: 4,
            pretrain: PretrainConfig {
                epochs: 100,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                max_epochs: 250,
                patience: 150,
                ..FinetuneConfig::default()
            },
            threads: bellamy_par::default_threads(),
        }
    }

    /// The scale recorded in EXPERIMENTS.md.
    pub fn medium(seed: u64) -> Self {
        Self {
            seed,
            max_splits: 50,
            max_n_train: 6,
            pretrain: PretrainConfig {
                epochs: 400,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                max_epochs: 800,
                patience: 400,
                ..FinetuneConfig::default()
            },
            threads: bellamy_par::default_threads(),
        }
    }

    /// The paper's scale.
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            max_splits: 500,
            max_n_train: 6,
            pretrain: PretrainConfig::default(),
            finetune: FinetuneConfig::default(),
            threads: bellamy_par::default_threads(),
        }
    }
}

/// All records produced by the cross-environment experiment.
#[derive(Debug, Clone)]
pub struct CrossEnvResults {
    /// One record per (method, split, task).
    pub records: Vec<PredictionRecord>,
}

/// The Bellamy variants compared in Fig. 8, with their reuse strategies.
const STRATEGY_METHODS: [(Method, ReuseStrategy); 4] = [
    (
        Method::BellamyPartialUnfreeze,
        ReuseStrategy::PartialUnfreeze,
    ),
    (Method::BellamyFullUnfreeze, ReuseStrategy::FullUnfreeze),
    (Method::BellamyPartialReset, ReuseStrategy::PartialReset),
    (Method::BellamyFullReset, ReuseStrategy::FullReset),
];

/// Runs the experiment: pre-train per algorithm on C3O, evaluate on Bell.
/// Pretrained models are served through one shared [`Service`] — each
/// worker asks the front door for its algorithm's client instead of
/// threading a `&mut Bellamy` through the experiment, and repeated runs
/// against a service over a persistent hub skip the pre-training entirely.
pub fn run_crossenv(c3o: &Dataset, bell: &Dataset, cfg: &CrossEnvConfig) -> CrossEnvResults {
    let service = Service::in_memory();
    run_crossenv_with_service(c3o, bell, cfg, &service)
}

/// [`run_crossenv`] against a caller-provided service (e.g. one over a
/// disk-backed hub shared across experiment invocations).
pub fn run_crossenv_with_service(
    c3o: &Dataset,
    bell: &Dataset,
    cfg: &CrossEnvConfig,
    service: &Service,
) -> CrossEnvResults {
    let jobs: Vec<Algorithm> = Algorithm::BELL.to_vec();
    let per_algorithm: Vec<Vec<PredictionRecord>> =
        bellamy_par::par_map_with_threads(&jobs, cfg.threads, |&algorithm| {
            evaluate_algorithm(c3o, bell, algorithm, cfg, service)
        });
    CrossEnvResults {
        records: per_algorithm.into_iter().flatten().collect(),
    }
}

fn evaluate_algorithm(
    c3o: &Dataset,
    bell: &Dataset,
    algorithm: Algorithm,
    cfg: &CrossEnvConfig,
    service: &Service,
) -> Vec<PredictionRecord> {
    let seed = cfg.seed ^ (algorithm as u64).wrapping_mul(0xC0FFEE);

    // A serving client for this algorithm's general model — pre-training
    // on every C3O execution of it only when the hub behind the service
    // has never seen the key (the corpus closure is not even materialized
    // on a recall).
    let key = ModelKey::new(
        algorithm.name(),
        format!(
            "crossenv-runtime-seed{}-{}",
            cfg.seed,
            crate::runner::pretrain_tag(&cfg.pretrain)
        ),
        &BellamyConfig::default(),
    );
    let client = service
        .client_or_pretrain(&key, &cfg.pretrain, seed, || {
            c3o.runs_for_algorithm_excluding(algorithm, None)
                .iter()
                .map(|r| TrainingSample::from_run(&c3o.contexts[r.context_id], r))
                .collect()
        })
        .expect("cross-environment pre-training converges");
    let pretrained = client.state();

    // The single Bell context for this algorithm.
    let ctx = bell
        .contexts_for(algorithm)
        .into_iter()
        .next()
        .expect("Bell dataset covers this algorithm");
    let props = context_properties(ctx);
    let runs: Vec<(u32, f64)> = bell
        .runs_for_context(ctx.id)
        .iter()
        .map(|r| (r.scale_out, r.runtime_s))
        .collect();

    let mut records = Vec::new();
    for n in 1..=cfg.max_n_train {
        for (task, split_task) in [
            (Task::Interpolation, SplitTask::Interpolation),
            (Task::Extrapolation, SplitTask::Extrapolation),
        ] {
            let splits =
                generate_task_splits(&runs, n, split_task, cfg.max_splits, seed ^ n as u64);
            for (split_no, split) in splits.iter().enumerate() {
                let train_pts: Vec<(f64, f64)> = split
                    .train
                    .iter()
                    .map(|&i| (runs[i].0 as f64, runs[i].1))
                    .collect();
                let train_samples: Vec<TrainingSample> = split
                    .train
                    .iter()
                    .map(|&i| TrainingSample {
                        scale_out: runs[i].0 as f64,
                        runtime_s: runs[i].1,
                        props: props.clone(),
                    })
                    .collect();
                let (test_x, test_y) = runs[split.test];
                let test_x = test_x as f64;
                let split_seed = seed ^ ((n as u64) << 32) ^ split_no as u64;
                let mut emit = |method: Method, pred: f64, t: f64, epochs: Option<usize>| {
                    records.push(PredictionRecord {
                        method,
                        algorithm,
                        context_id: ctx.id,
                        n_train: n,
                        task,
                        predicted_s: pred,
                        actual_s: test_y,
                        fit_time_s: t,
                        epochs,
                    });
                };

                if let Some((pred, t)) = eval_nnls(&train_pts, test_x) {
                    emit(Method::Nnls, pred, t, None);
                }
                if let Some((pred, t)) = eval_bell(&train_pts, test_x) {
                    emit(Method::Bell, pred, t, None);
                }
                // Local model (fresh).
                let local = eval_bellamy(
                    None,
                    ReuseStrategy::PartialUnfreeze,
                    &train_samples,
                    test_x,
                    &props,
                    &cfg.finetune,
                    split_seed,
                    split_seed ^ 0xBEEF,
                );
                emit(
                    Method::BellamyLocal,
                    local.predicted_s,
                    local.fit_time_s,
                    Some(local.epochs),
                );
                // Pre-trained model under each reuse strategy.
                for (method, strategy) in STRATEGY_METHODS {
                    let eval = eval_bellamy(
                        Some(pretrained),
                        strategy,
                        &train_samples,
                        test_x,
                        &props,
                        &cfg.finetune,
                        split_seed,
                        split_seed ^ 0xCAFE,
                    );
                    emit(method, eval.predicted_s, eval.fit_time_s, Some(eval.epochs));
                }
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellamy_data::{generate_bell, generate_c3o, GeneratorConfig};

    #[test]
    fn run_crossenv_produces_all_methods() {
        let gen = GeneratorConfig::default();
        let c3o = generate_c3o(&gen);
        let bell = generate_bell(&gen);
        let cfg = CrossEnvConfig {
            seed: 1,
            max_splits: 2,
            max_n_train: 3,
            pretrain: PretrainConfig {
                epochs: 10,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                max_epochs: 30,
                patience: 20,
                ..FinetuneConfig::default()
            },
            threads: 3,
        };
        let results = run_crossenv(&c3o, &bell, &cfg);
        assert!(!results.records.is_empty());
        for method in [
            Method::Nnls,
            Method::Bell,
            Method::BellamyLocal,
            Method::BellamyPartialUnfreeze,
            Method::BellamyFullUnfreeze,
            Method::BellamyPartialReset,
            Method::BellamyFullReset,
        ] {
            assert!(
                results.records.iter().any(|r| r.method == method),
                "missing {}",
                method.name()
            );
        }
        // Only the three Bell algorithms appear.
        assert!(results
            .records
            .iter()
            .all(|r| Algorithm::BELL.contains(&r.algorithm)));
        assert!(results.records.iter().all(|r| r.predicted_s.is_finite()));
    }
}
