//! Shared per-split evaluation machinery: the methods under comparison and
//! the record type every experiment emits.

use bellamy_baselines::{BellModel, ErnestModel, ScaleOutModel};
use bellamy_core::{
    Bellamy, ContextProperties, FinetuneConfig, ModelState, ReuseStrategy, TrainingSample,
};
use bellamy_data::Algorithm;
use serde::Serialize;
use std::time::Instant;

/// A prediction method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Method {
    /// Ernest's parametric model fitted with NNLS.
    Nnls,
    /// Bell's CV-selected hybrid.
    Bell,
    /// Bellamy without pre-training (§IV-C1 `local`).
    BellamyLocal,
    /// Bellamy pre-trained on substantially different contexts (`filtered`).
    BellamyFiltered,
    /// Bellamy pre-trained on all other contexts (`full`).
    BellamyFull,
    /// Cross-environment reuse strategies (§IV-C2).
    BellamyPartialUnfreeze,
    /// See [`ReuseStrategy::FullUnfreeze`].
    BellamyFullUnfreeze,
    /// See [`ReuseStrategy::PartialReset`].
    BellamyPartialReset,
    /// See [`ReuseStrategy::FullReset`].
    BellamyFullReset,
}

impl Method {
    /// Legend name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::Nnls => "NNLS",
            Method::Bell => "Bell",
            Method::BellamyLocal => "Bellamy (local)",
            Method::BellamyFiltered => "Bellamy (filtered)",
            Method::BellamyFull => "Bellamy (full)",
            Method::BellamyPartialUnfreeze => "Bellamy (partial-unfreeze)",
            Method::BellamyFullUnfreeze => "Bellamy (full-unfreeze)",
            Method::BellamyPartialReset => "Bellamy (partial-reset)",
            Method::BellamyFullReset => "Bellamy (full-reset)",
        }
    }

    /// True for every Bellamy variant (they report epochs for Fig. 7).
    pub fn is_bellamy(self) -> bool {
        !matches!(self, Method::Nnls | Method::Bell)
    }
}

/// Interpolation or extrapolation (Fig. 5 left/right).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Task {
    /// Test scale-out inside the training range.
    Interpolation,
    /// Test scale-out outside the training range.
    Extrapolation,
}

impl Task {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Task::Interpolation => "interpolation",
            Task::Extrapolation => "extrapolation",
        }
    }
}

/// One prediction on one split by one method.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionRecord {
    /// The method that produced the prediction.
    pub method: Method,
    /// Algorithm of the evaluated context.
    pub algorithm: Algorithm,
    /// Context id within its dataset.
    pub context_id: usize,
    /// Number of training points available.
    pub n_train: usize,
    /// Interpolation or extrapolation.
    pub task: Task,
    /// Predicted runtime (seconds).
    pub predicted_s: f64,
    /// Measured runtime (seconds).
    pub actual_s: f64,
    /// Wall-clock seconds spent fitting/fine-tuning for this split.
    pub fit_time_s: f64,
    /// Fine-tuning epochs (Bellamy variants only).
    pub epochs: Option<usize>,
}

impl PredictionRecord {
    /// `|pred - actual|`.
    pub fn abs_error(&self) -> f64 {
        (self.predicted_s - self.actual_s).abs()
    }

    /// `|pred - actual| / actual` (the paper's MRE contribution).
    pub fn rel_error(&self) -> f64 {
        self.abs_error() / self.actual_s.abs().max(1e-9)
    }
}

/// A compact objective-string tag for every [`PretrainConfig`] field that
/// changes what a pretrained model *is*. Experiment hub keys must embed
/// this: against a persistent hub, a key that omitted the training budget
/// would silently recall a model trained under an older configuration and
/// misattribute the results.
pub fn pretrain_tag(cfg: &bellamy_core::PretrainConfig) -> String {
    format!(
        "ep{}-bs{}-lr{:e}-wd{:e}-do{}-sh{}",
        cfg.epochs, cfg.batch_size, cfg.lr, cfg.weight_decay, cfg.dropout, cfg.shards
    )
}

/// Fits Ernest/NNLS on `(scale_out, runtime)` points and predicts at
/// `test_x`. Returns `None` when the model cannot be fitted.
pub fn eval_nnls(train: &[(f64, f64)], test_x: f64) -> Option<(f64, f64)> {
    let start = Instant::now();
    let model = ErnestModel::fit(train).ok()?;
    let pred = model.predict(test_x);
    Some((pred, start.elapsed().as_secs_f64()))
}

/// Fits Bell and predicts at `test_x`. `None` below three distinct
/// scale-outs (§IV-C1).
pub fn eval_bell(train: &[(f64, f64)], test_x: f64) -> Option<(f64, f64)> {
    let start = Instant::now();
    let model = BellModel::fit(train).ok()?;
    let pred = model.predict(test_x);
    Some((pred, start.elapsed().as_secs_f64()))
}

/// Outcome of one Bellamy split evaluation.
#[derive(Debug, Clone)]
pub struct BellamyEval {
    /// Predicted runtime in seconds.
    pub predicted_s: f64,
    /// Wall-clock fitting time (0 for direct application of a pre-trained
    /// model).
    pub fit_time_s: f64,
    /// Fine-tuning epochs (0 for direct application).
    pub epochs: usize,
}

/// Evaluates a Bellamy variant on one split.
///
/// `pretrained = None` is the `local` variant: a fresh model is initialized
/// from `model_seed` and fitted on the training samples alone. A
/// pre-trained variant receives the *shared snapshot* recalled from the hub
/// — with an empty training set the snapshot is applied directly (the
/// paper's 0-data-points extrapolation column, zero copies); otherwise a
/// private trainer handle is derived from it ([`Bellamy::from_state`]) and
/// fine-tuned, leaving the shared snapshot untouched for every other split
/// evaluating in parallel.
///
/// Each split asks for a single test-point prediction, served by
/// [`ModelState::predict`] — the thin wrapper over the thread-local
/// [`bellamy_core::Predictor`] arena, so the hundreds of splits an
/// experiment sweeps share one warm inference workspace per worker thread.
#[allow(clippy::too_many_arguments)]
pub fn eval_bellamy(
    pretrained: Option<&ModelState>,
    strategy: ReuseStrategy,
    train: &[TrainingSample],
    test_x: f64,
    props: &ContextProperties,
    ft: &FinetuneConfig,
    model_seed: u64,
    seed: u64,
) -> BellamyEval {
    let start = Instant::now();
    match pretrained {
        None => {
            assert!(!train.is_empty(), "the local variant needs training data");
            let mut model = Bellamy::new(bellamy_core::BellamyConfig::default(), model_seed);
            let report = bellamy_core::finetune::fit_local(&mut model, train, ft, seed);
            BellamyEval {
                predicted_s: model.predict(test_x, props).expect("fit_local fits"),
                fit_time_s: start.elapsed().as_secs_f64(),
                epochs: report.epochs,
            }
        }
        Some(base) => {
            if train.is_empty() {
                return BellamyEval {
                    predicted_s: base.predict(test_x, props),
                    fit_time_s: start.elapsed().as_secs_f64(),
                    epochs: 0,
                };
            }
            let mut model = Bellamy::from_state(base);
            let report = bellamy_core::finetune::fine_tune(&mut model, train, ft, strategy, seed);
            BellamyEval {
                predicted_s: model.predict(test_x, props).expect("fine-tuned model fits"),
                fit_time_s: start.elapsed().as_secs_f64(),
                epochs: report.epochs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellamy_core::context_properties;
    use bellamy_data::{generate_c3o, GeneratorConfig};

    #[test]
    fn method_names_match_figures() {
        assert_eq!(Method::Nnls.name(), "NNLS");
        assert_eq!(Method::BellamyFull.name(), "Bellamy (full)");
        assert_eq!(
            Method::BellamyPartialReset.name(),
            "Bellamy (partial-reset)"
        );
        assert!(Method::BellamyLocal.is_bellamy());
        assert!(!Method::Bell.is_bellamy());
    }

    #[test]
    fn record_errors() {
        let r = PredictionRecord {
            method: Method::Nnls,
            algorithm: Algorithm::Grep,
            context_id: 0,
            n_train: 3,
            task: Task::Interpolation,
            predicted_s: 120.0,
            actual_s: 100.0,
            fit_time_s: 0.001,
            epochs: None,
        };
        assert_eq!(r.abs_error(), 20.0);
        assert!((r.rel_error() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn nnls_and_bell_eval() {
        let train = [(2.0, 100.0), (4.0, 60.0), (8.0, 40.0), (12.0, 35.0)];
        let (pred, t) = eval_nnls(&train, 6.0).unwrap();
        assert!(pred.is_finite() && pred > 0.0);
        assert!(t >= 0.0);
        let (pred_b, _) = eval_bell(&train, 6.0).unwrap();
        assert!(pred_b.is_finite());
        // Bell refuses with two distinct scale-outs.
        assert!(eval_bell(&train[..2], 6.0).is_none());
        // NNLS accepts even one.
        assert!(eval_nnls(&train[..1], 6.0).is_some());
    }

    #[test]
    fn bellamy_local_eval_roundtrip() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let ctx = &ds.contexts[0];
        let props = context_properties(ctx);
        let train: Vec<_> = ds
            .runs_for_context(ctx.id)
            .iter()
            .step_by(7)
            .map(|r| bellamy_core::TrainingSample::from_run(ctx, r))
            .collect();
        assert!(train.len() >= 3);
        let ft = FinetuneConfig {
            max_epochs: 60,
            ..FinetuneConfig::default()
        };
        let eval = eval_bellamy(
            None,
            ReuseStrategy::PartialUnfreeze,
            &train,
            6.0,
            &props,
            &ft,
            1,
            2,
        );
        assert!(eval.predicted_s.is_finite());
        assert!(eval.epochs > 0);
        assert!(eval.fit_time_s > 0.0);
    }

    #[test]
    fn pretrained_direct_application_has_zero_epochs() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let ctx = &ds.contexts[0];
        let props = context_properties(ctx);
        let samples: Vec<_> = ds
            .runs_for_context(ctx.id)
            .iter()
            .map(|r| bellamy_core::TrainingSample::from_run(ctx, r))
            .collect();
        let mut model = Bellamy::new(bellamy_core::BellamyConfig::default(), 0);
        bellamy_core::train::pretrain(
            &mut model,
            &samples,
            &bellamy_core::PretrainConfig {
                epochs: 10,
                ..Default::default()
            },
            0,
        );
        let state = model.snapshot().expect("pretrained");
        let ft = FinetuneConfig::default();
        let eval = eval_bellamy(
            Some(&state),
            ReuseStrategy::PartialUnfreeze,
            &[],
            6.0,
            &props,
            &ft,
            0,
            0,
        );
        assert_eq!(eval.epochs, 0);
        assert!(eval.predicted_s.is_finite());
    }
}
