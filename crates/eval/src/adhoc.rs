//! Experiment 1: Ad Hoc Cross-Context Learning on the C3O traces
//! (§IV-C1 — Figs. 5, 6, 7 and the fitting-time comparison).
//!
//! For each algorithm, seven contexts are chosen such that every node type
//! appears at least once. For each chosen context, two pre-trained models
//! are built — `filtered` (only substantially different contexts) and
//! `full` (all other contexts) — and every method is evaluated on random
//! sub-sampling splits with 1–5 training points, plus the 0-point direct
//! application of the pre-trained variants for extrapolation.

use crate::runner::{eval_bell, eval_bellamy, eval_nnls, Method, PredictionRecord, Task};
use crate::splits::{generate_task_splits, SplitTask};
use bellamy_core::{
    context_properties, Bellamy, BellamyConfig, FinetuneConfig, PretrainConfig, ReuseStrategy,
    TrainingSample,
};
use bellamy_data::{Algorithm, Dataset, NodeType};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the ad hoc cross-context experiment.
#[derive(Debug, Clone)]
pub struct AdhocConfig {
    /// Master seed.
    pub seed: u64,
    /// Contexts evaluated per algorithm (paper: 7).
    pub contexts_per_algorithm: usize,
    /// Unique splits per (context, n) (paper: ≤ 200).
    pub max_splits: usize,
    /// Largest training-set size (paper: 5 on the C3O grid).
    pub max_n_train: usize,
    /// Pre-training budget.
    pub pretrain: PretrainConfig,
    /// Fine-tuning budget.
    pub finetune: FinetuneConfig,
    /// Algorithms to evaluate (all five by default).
    pub algorithms: Vec<Algorithm>,
    /// Worker threads for the per-context parallel fan-out.
    pub threads: usize,
}

impl AdhocConfig {
    /// Minutes-scale configuration for tests and `cargo bench`.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            contexts_per_algorithm: 2,
            max_splits: 8,
            max_n_train: 4,
            pretrain: PretrainConfig {
                epochs: 100,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                max_epochs: 250,
                patience: 150,
                ..FinetuneConfig::default()
            },
            algorithms: Algorithm::ALL.to_vec(),
            threads: bellamy_par::default_threads(),
        }
    }

    /// The scale recorded in EXPERIMENTS.md: a compromise between the quick
    /// profile and the paper's budgets that a single core finishes in tens
    /// of minutes.
    pub fn medium(seed: u64) -> Self {
        Self {
            seed,
            contexts_per_algorithm: 4,
            max_splits: 30,
            max_n_train: 5,
            pretrain: PretrainConfig {
                epochs: 400,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                max_epochs: 800,
                patience: 400,
                ..FinetuneConfig::default()
            },
            algorithms: Algorithm::ALL.to_vec(),
            threads: bellamy_par::default_threads(),
        }
    }

    /// The paper's scale (hours of compute).
    pub fn paper(seed: u64) -> Self {
        Self {
            seed,
            contexts_per_algorithm: 7,
            max_splits: 200,
            max_n_train: 5,
            pretrain: PretrainConfig::default(),
            finetune: FinetuneConfig::default(),
            algorithms: Algorithm::ALL.to_vec(),
            threads: bellamy_par::default_threads(),
        }
    }
}

/// All records produced by the experiment.
#[derive(Debug, Clone)]
pub struct AdhocResults {
    /// One record per (method, split, task).
    pub records: Vec<PredictionRecord>,
}

/// Picks `count` contexts for an algorithm such that every node type of the
/// catalog is present at least once (§IV-C1), deterministic in `seed`.
pub fn choose_contexts(
    dataset: &Dataset,
    algorithm: Algorithm,
    count: usize,
    seed: u64,
) -> Vec<usize> {
    let ctxs = dataset.contexts_for(algorithm);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..ctxs.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    let mut chosen: Vec<usize> = Vec::new();
    // First pass: cover node types greedily.
    for node in NodeType::c3o_catalog() {
        if chosen.len() >= count {
            break;
        }
        if let Some(&pick) = order
            .iter()
            .find(|&&i| ctxs[i].node_type.name == node.name && !chosen.contains(&ctxs[i].id))
        {
            chosen.push(ctxs[pick].id);
        }
    }
    // Fill the remainder randomly.
    for &i in &order {
        if chosen.len() >= count {
            break;
        }
        if !chosen.contains(&ctxs[i].id) {
            chosen.push(ctxs[i].id);
        }
    }
    chosen
}

/// Runs the full experiment.
pub fn run_adhoc(dataset: &Dataset, cfg: &AdhocConfig) -> AdhocResults {
    let mut jobs: Vec<(Algorithm, usize)> = Vec::new();
    for &algorithm in &cfg.algorithms {
        let seed = cfg.seed ^ (algorithm as u64).wrapping_mul(0x9E37);
        for ctx_id in choose_contexts(dataset, algorithm, cfg.contexts_per_algorithm, seed) {
            jobs.push((algorithm, ctx_id));
        }
    }

    let per_context: Vec<Vec<PredictionRecord>> =
        bellamy_par::par_map_with_threads(&jobs, cfg.threads, |&(algorithm, ctx_id)| {
            evaluate_context(dataset, algorithm, ctx_id, cfg)
        });

    AdhocResults {
        records: per_context.into_iter().flatten().collect(),
    }
}

/// Pre-trains the `filtered`/`full` variants for one target context and
/// evaluates every method over all split sizes.
fn evaluate_context(
    dataset: &Dataset,
    algorithm: Algorithm,
    ctx_id: usize,
    cfg: &AdhocConfig,
) -> Vec<PredictionRecord> {
    let ctx = &dataset.contexts[ctx_id];
    let props = context_properties(ctx);
    let ctx_seed = cfg.seed ^ (ctx_id as u64).wrapping_mul(0xA5A5_A5A5);

    // Target-context runs, as (scale_out, runtime) with stable indexing.
    let runs: Vec<(u32, f64)> = dataset
        .runs_for_context(ctx_id)
        .iter()
        .map(|r| (r.scale_out, r.runtime_s))
        .collect();

    // Pre-training corpora.
    let full_samples: Vec<TrainingSample> = dataset
        .runs_for_algorithm_excluding(algorithm, Some(ctx_id))
        .iter()
        .map(|r| TrainingSample::from_run(&dataset.contexts[r.context_id], r))
        .collect();
    let filtered_samples: Vec<TrainingSample> = dataset
        .runs_for_algorithm_excluding(algorithm, Some(ctx_id))
        .iter()
        .filter(|r| dataset.contexts[r.context_id].substantially_different(ctx))
        .map(|r| TrainingSample::from_run(&dataset.contexts[r.context_id], r))
        .collect();

    let mut model_full = Bellamy::new(BellamyConfig::default(), ctx_seed);
    bellamy_core::train::pretrain(&mut model_full, &full_samples, &cfg.pretrain, ctx_seed);
    // Filtered contexts can be empty for very central contexts; fall back to
    // the full corpus in that case (and note it in the record stream via the
    // identical model behaviour).
    let mut model_filtered = Bellamy::new(BellamyConfig::default(), ctx_seed ^ 1);
    let filtered_ref = if filtered_samples.is_empty() {
        &full_samples
    } else {
        &filtered_samples
    };
    bellamy_core::train::pretrain(
        &mut model_filtered,
        filtered_ref,
        &cfg.pretrain,
        ctx_seed ^ 1,
    );
    // Publish both variants as shared snapshots: every split below reuses
    // them read-only (fine-tuning derives private handles).
    let state_full = model_full.snapshot().expect("pretrained");
    let state_filtered = model_filtered.snapshot().expect("pretrained");

    let mut records = Vec::new();
    let mut emit = |method: Method,
                    n_train: usize,
                    task: Task,
                    predicted_s: f64,
                    actual_s: f64,
                    fit_time_s: f64,
                    epochs: Option<usize>| {
        records.push(PredictionRecord {
            method,
            algorithm,
            context_id: ctx_id,
            n_train,
            task,
            predicted_s,
            actual_s,
            fit_time_s,
            epochs,
        });
    };

    // n = 0: direct application of the pre-trained models (extrapolation).
    let mut rng = StdRng::seed_from_u64(ctx_seed ^ 0xD1D1);
    for _ in 0..cfg.max_splits.min(runs.len()) {
        let test = runs[rng.random_range(0..runs.len())];
        for (method, model) in [
            (Method::BellamyFiltered, &state_filtered),
            (Method::BellamyFull, &state_full),
        ] {
            let eval = eval_bellamy(
                Some(model),
                ReuseStrategy::PartialUnfreeze,
                &[],
                test.0 as f64,
                &props,
                &cfg.finetune,
                ctx_seed,
                ctx_seed,
            );
            emit(
                method,
                0,
                Task::Extrapolation,
                eval.predicted_s,
                test.1,
                eval.fit_time_s,
                Some(0),
            );
        }
    }

    // n >= 1: the sub-sampling protocol for both tasks.
    for n in 1..=cfg.max_n_train {
        for (task, split_task) in [
            (Task::Interpolation, SplitTask::Interpolation),
            (Task::Extrapolation, SplitTask::Extrapolation),
        ] {
            let splits =
                generate_task_splits(&runs, n, split_task, cfg.max_splits, ctx_seed ^ n as u64);
            for (split_no, split) in splits.iter().enumerate() {
                let train_pts: Vec<(f64, f64)> = split
                    .train
                    .iter()
                    .map(|&i| (runs[i].0 as f64, runs[i].1))
                    .collect();
                let train_samples: Vec<TrainingSample> = split
                    .train
                    .iter()
                    .map(|&i| TrainingSample {
                        scale_out: runs[i].0 as f64,
                        runtime_s: runs[i].1,
                        props: props.clone(),
                    })
                    .collect();
                let (test_x, test_y) = runs[split.test];
                let test_x = test_x as f64;
                let split_seed = ctx_seed ^ ((n as u64) << 32) ^ split_no as u64;

                if let Some((pred, t)) = eval_nnls(&train_pts, test_x) {
                    emit(Method::Nnls, n, task, pred, test_y, t, None);
                }
                if let Some((pred, t)) = eval_bell(&train_pts, test_x) {
                    emit(Method::Bell, n, task, pred, test_y, t, None);
                }
                for (method, pretrained) in [
                    (Method::BellamyLocal, None),
                    (Method::BellamyFiltered, Some(&*state_filtered)),
                    (Method::BellamyFull, Some(&*state_full)),
                ] {
                    let eval = eval_bellamy(
                        pretrained,
                        ReuseStrategy::PartialUnfreeze,
                        &train_samples,
                        test_x,
                        &props,
                        &cfg.finetune,
                        split_seed,
                        split_seed ^ 0xF00D,
                    );
                    emit(
                        method,
                        n,
                        task,
                        eval.predicted_s,
                        test_y,
                        eval.fit_time_s,
                        Some(eval.epochs),
                    );
                }
            }
        }
    }

    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellamy_data::{generate_c3o, GeneratorConfig};

    fn tiny_config() -> AdhocConfig {
        AdhocConfig {
            seed: 3,
            contexts_per_algorithm: 1,
            max_splits: 2,
            max_n_train: 3,
            pretrain: PretrainConfig {
                epochs: 15,
                ..PretrainConfig::default()
            },
            finetune: FinetuneConfig {
                max_epochs: 40,
                patience: 30,
                ..FinetuneConfig::default()
            },
            algorithms: vec![Algorithm::Grep],
            threads: 2,
        }
    }

    #[test]
    fn choose_contexts_covers_node_types() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let chosen = choose_contexts(&ds, Algorithm::Sgd, 7, 5);
        assert_eq!(chosen.len(), 7);
        let types: std::collections::HashSet<String> = chosen
            .iter()
            .map(|&id| ds.contexts[id].node_type.name.clone())
            .collect();
        assert_eq!(types.len(), 6, "all six node types covered");
        // Determinism.
        assert_eq!(chosen, choose_contexts(&ds, Algorithm::Sgd, 7, 5));
    }

    #[test]
    fn run_adhoc_produces_records_for_all_methods() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let results = run_adhoc(&ds, &tiny_config());
        assert!(!results.records.is_empty());
        for method in [
            Method::Nnls,
            Method::Bell,
            Method::BellamyLocal,
            Method::BellamyFiltered,
            Method::BellamyFull,
        ] {
            assert!(
                results.records.iter().any(|r| r.method == method),
                "missing records for {}",
                method.name()
            );
        }
        // Bell only appears with n >= 3 (distinct scale-outs).
        assert!(results
            .records
            .iter()
            .filter(|r| r.method == Method::Bell)
            .all(|r| r.n_train >= 3));
        // 0-data-points extrapolation exists for pre-trained variants only.
        let zero: Vec<_> = results.records.iter().filter(|r| r.n_train == 0).collect();
        assert!(!zero.is_empty());
        assert!(zero
            .iter()
            .all(|r| matches!(r.method, Method::BellamyFiltered | Method::BellamyFull)));
        assert!(zero.iter().all(|r| r.task == Task::Extrapolation));
        // Every record carries finite predictions.
        assert!(results.records.iter().all(|r| r.predicted_s.is_finite()));
    }
}
