//! Property-based tests for the split protocol and aggregation helpers.

use bellamy_eval::figures::ecdf;
use bellamy_eval::splits::{generate_splits, generate_task_splits, validate_split, SplitTask};
use proptest::prelude::*;

/// Strategy: a C3O- or Bell-like run table with `k` distinct scale-outs and
/// `r` repeats each.
fn arb_runs() -> impl Strategy<Value = Vec<(u32, f64)>> {
    (3usize..12, 1usize..6, 1u32..8).prop_map(|(k, r, step)| {
        let mut runs = Vec::new();
        for i in 1..=k {
            let x = step * i as u32;
            for rep in 0..r {
                runs.push((x, 100.0 / x as f64 + rep as f64 * 0.5));
            }
        }
        runs
    })
}

proptest! {
    #[test]
    fn joint_splits_always_validate((runs, n, seed) in
        (arb_runs(), 2usize..5, 0u64..500).prop_filter("n small enough", |(runs, n, _)| {
            let mut xs: Vec<u32> = runs.iter().map(|r| r.0).collect();
            xs.sort_unstable();
            xs.dedup();
            xs.len() >= n + 2
        })
    ) {
        for s in generate_splits(&runs, n, 20, seed) {
            prop_assert!(validate_split(&runs, &s).is_ok());
            prop_assert_eq!(s.train.len(), n);
        }
    }

    #[test]
    fn task_splits_satisfy_their_constraint(
        (runs, n, seed) in (arb_runs(), 1usize..6, 0u64..500)
    ) {
        for task in [SplitTask::Interpolation, SplitTask::Extrapolation] {
            for s in generate_task_splits(&runs, n, task, 20, seed) {
                let train_xs: Vec<u32> = s.train.iter().map(|&i| runs[i].0).collect();
                let mut dedup = train_xs.clone();
                dedup.sort_unstable();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), train_xs.len(), "pairwise distinct");
                let lo = *dedup.first().expect("non-empty");
                let hi = *dedup.last().expect("non-empty");
                let tx = runs[s.test].0;
                match task {
                    SplitTask::Interpolation => {
                        prop_assert!(tx > lo && tx < hi && !train_xs.contains(&tx));
                    }
                    SplitTask::Extrapolation => {
                        prop_assert!(tx < lo || tx > hi);
                    }
                }
            }
        }
    }

    #[test]
    fn task_splits_are_unique_and_bounded(
        (runs, seed) in (arb_runs(), 0u64..200), cap in 1usize..40
    ) {
        let splits = generate_task_splits(&runs, 2, SplitTask::Extrapolation, cap, seed);
        prop_assert!(splits.len() <= cap);
        for (i, a) in splits.iter().enumerate() {
            for b in &splits[i + 1..] {
                prop_assert_ne!(a, b, "duplicate split emitted");
            }
        }
    }

    #[test]
    fn splits_are_deterministic((runs, seed) in (arb_runs(), 0u64..200)) {
        let a = generate_task_splits(&runs, 3, SplitTask::Interpolation, 15, seed);
        let b = generate_task_splits(&runs, 3, SplitTask::Interpolation, 15, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ecdf_is_a_valid_cdf(values in proptest::collection::vec(-1e4f64..1e4, 1..100)) {
        let e = ecdf(&values);
        prop_assert!(!e.is_empty());
        // Strictly increasing x, non-decreasing p, ending exactly at 1.
        for w in e.windows(2) {
            prop_assert!(w[1].0 > w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert!((e.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
        for &(_, p) in &e {
            prop_assert!(p > 0.0 && p <= 1.0);
        }
        // P at the minimum is at least 1/n.
        prop_assert!(e[0].1 >= 1.0 / values.len() as f64 - 1e-12);
    }
}
