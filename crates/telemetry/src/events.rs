//! Bounded ring-buffer event log for rare, operationally significant events.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Well-known event kinds. Components emit these so operators and tests can
/// match on a stable, machine-readable tag instead of scraping stderr.
pub mod event_kind {
    /// A requested kernel tier was unavailable and dispatch fell back.
    pub const KERNEL_DEGRADED: &str = "kernel.degraded";
    /// A checkpoint failed to decode and was renamed out of the store.
    pub const CHECKPOINT_QUARANTINED: &str = "hub.quarantine";
    /// A micro-batcher exceeded its panic budget and degraded to direct mode.
    pub const BATCHER_DEGRADED: &str = "serve.degraded";
    /// A serving loop observed a predictor panic.
    pub const LOOP_PANIC: &str = "serve.panic";
    /// A supervised serving loop was restarted after a panic.
    pub const LOOP_RESTART: &str = "serve.restart";
    /// A deterministic failpoint fired an injected fault.
    pub const FAULT_INJECTED: &str = "fault.injected";
}

/// One logged event. `seq` is a process-wide monotonic sequence number
/// (gaps mean the ring evicted older entries); `elapsed_us` is microseconds
/// since [`process_start`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    pub seq: u64,
    pub elapsed_us: u64,
    pub kind: &'static str,
    pub detail: String,
}

/// A bounded ring buffer of [`Event`]s. Recording takes a mutex and may
/// allocate — this log is for rare events (degradations, quarantines,
/// restarts), never for the per-query hot path.
pub struct EventLog {
    capacity: usize,
    seq: AtomicU64,
    inner: Mutex<VecDeque<Event>>,
}

impl EventLog {
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            inner: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Append an event, evicting the oldest entry if the ring is full.
    /// Returns the event's sequence number.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            elapsed_us: process_start().elapsed().as_micros().min(u64::MAX as u128) as u64,
            kind,
            detail: detail.into(),
        };
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
        seq
    }

    /// Copy of the retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Number of events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained events (sequence numbers keep advancing).
    pub fn clear(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

const GLOBAL_EVENT_CAPACITY: usize = 256;

static EVENTS: OnceLock<EventLog> = OnceLock::new();
static START: OnceLock<Instant> = OnceLock::new();

/// The process-global event log (capacity 256).
pub fn events() -> &'static EventLog {
    EVENTS.get_or_init(|| EventLog::with_capacity(GLOBAL_EVENT_CAPACITY))
}

/// The instant telemetry was first touched; event timestamps are relative
/// to this.
pub fn process_start() -> Instant {
    *START.get_or_init(Instant::now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.record(event_kind::FAULT_INJECTED, format!("e{i}"));
        }
        assert_eq!(log.total(), 5);
        assert_eq!(log.len(), 3);
        let kept = log.recent();
        assert_eq!(
            kept.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(kept[0].detail, "e2");
        // Timestamps are monotonically non-decreasing.
        assert!(kept.windows(2).all(|w| w[0].elapsed_us <= w[1].elapsed_us));
    }

    #[test]
    fn clear_retains_sequence_counter() {
        let log = EventLog::with_capacity(8);
        log.record(event_kind::LOOP_PANIC, "boom");
        log.clear();
        assert!(log.is_empty());
        let seq = log.record(event_kind::LOOP_RESTART, "up again");
        assert_eq!(seq, 1);
    }

    #[test]
    fn global_log_exists() {
        let before = events().total();
        events().record(event_kind::KERNEL_DEGRADED, "test");
        assert!(events().total() > before);
    }
}
