//! Zero-overhead runtime observability for the Bellamy serving stack.
//!
//! This crate is the bottom layer of the workspace (even `bellamy_linalg`
//! depends on it) and therefore depends on nothing but `std`. It provides
//! three things:
//!
//! 1. **Lock-free metric primitives** — [`Counter`], [`Gauge`], and a
//!    fixed-bucket log₂-scale latency [`Histogram`] whose record path is a
//!    single relaxed `fetch_add`: no locks, no allocation, safe to call from
//!    the zero-alloc steady-state serving paths. Handles are resolved once
//!    (owned by the instrumented component, or via the process-wide
//!    [`global()`] registry behind a `OnceLock`, the same pattern as
//!    `bellamy_linalg::kernels`).
//! 2. **A structured event log** — a bounded ring buffer ([`EventLog`],
//!    process-global via [`events()`]) for *rare* events: kernel-tier
//!    degradation, checkpoint quarantine, batcher degrade-to-direct, serving
//!    loop panics/restarts, injected faults. Recording an event takes a
//!    mutex and may allocate; none of these events fire on the hot path.
//! 3. **Exporters** — [`TelemetrySnapshot`], a typed point-in-time read of
//!    every metric, with JSON ([`TelemetrySnapshot::to_json`]) and
//!    Prometheus text ([`TelemetrySnapshot::to_prometheus`]) rendering.
//!    `bellamy_core::Service::telemetry()` assembles one from the live
//!    counters.
//!
//! "Consistent" here means each individual metric is read atomically and the
//! whole snapshot is taken in one pass; counters incremented concurrently
//! with the read may land on either side of it, as with any lock-free
//! registry.
//!
//! # Metric reference
//!
//! | name | type | unit | emitted by |
//! |------|------|------|-----------|
//! | `bellamy_serve_queries_total` | counter | queries | core/serve (batcher) |
//! | `bellamy_serve_batches_total` | counter | batches | core/serve |
//! | `bellamy_serve_flushes_total{reason}` | counter | flushes | core/serve (`reason` ∈ capacity, timeout, quiesce, assist, shutdown) |
//! | `bellamy_serve_shed_total` | counter | queries | core/serve |
//! | `bellamy_serve_deadline_expired_total` | counter | queries | core/serve |
//! | `bellamy_serve_panics_total` | counter | panics | core/serve |
//! | `bellamy_serve_restarts_total` | counter | restarts | core/serve |
//! | `bellamy_serve_queue_depth` | gauge | queries | core/serve (admission in-flight count) |
//! | `bellamy_serve_submit_latency_seconds` | histogram | seconds | core/serve (submit → response, sampled 1-in-8) |
//! | `bellamy_serve_flush_latency_seconds` | histogram | seconds | core/serve (per-batch forward pass) |
//! | `bellamy_serve_batch_size` | histogram | queries | core/serve (claimed batch sizes) |
//! | `bellamy_hub_memory_recalls_total` | counter | recalls | core/hub |
//! | `bellamy_hub_disk_recalls_total` | counter | recalls | core/hub |
//! | `bellamy_hub_pretrains_total` | counter | trainings | core/hub |
//! | `bellamy_hub_finetune_hits_total` | counter | recalls | core/hub |
//! | `bellamy_hub_finetunes_total` | counter | trainings | core/hub |
//! | `bellamy_hub_disk_retries_total` | counter | retries | core/hub |
//! | `bellamy_hub_quarantined_total` | counter | checkpoints | core/hub |
//! | `bellamy_hub_recall_latency_seconds{mode}` | histogram | seconds | core/hub (`mode` ∈ deserialize, mmap) |
//! | `bellamy_predict_batch_rows` | histogram | rows | core/predictor (forward-pass batch sizes) |
//! | `bellamy_predict_queries_total` | counter | rows | core/predictor |
//! | `bellamy_train_steps_total` | counter | steps | core/train |
//! | `bellamy_train_step_latency_seconds` | histogram | seconds | core/train (per optimizer step) |
//! | `bellamy_kernel_info{requested,resolved,source}` | gauge | — | linalg/kernels (constant 1) |
//! | `bellamy_kernel_degraded` | gauge | — | linalg/kernels (1 if tier degraded) |
//!
//! # Event kinds
//!
//! See [`event_kind`]: `kernel.degraded`, `hub.quarantine`, `serve.degraded`,
//! `serve.panic`, `serve.restart`, `fault.injected`.
//!
//! # Timing toggle
//!
//! [`set_timing_enabled`] gates only the *supplemental latency timing* added
//! by this crate (the `Instant::now()` pair + histogram record on the submit
//! path — itself gated behind a 1-in-8 [`Sampler`], because a clock read
//! costs more than the whole record path). Counters are never gated: they
//! are the single source of truth behind `BatcherStats`/`HubStats`. The
//! bench harness uses the toggle to measure instrumented-vs-uninstrumented
//! overhead.

mod events;
mod metrics;
mod snapshot;

pub use events::{event_kind, events, process_start, Event, EventLog};
pub use metrics::{
    nearest_rank, Counter, Gauge, Histogram, HistogramSnapshot, Sampler, NUM_BUCKETS,
};
pub use snapshot::{MetricValue, Sample, TelemetrySnapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Process-wide metrics that do not belong to any one `Service`/`ModelHub`
/// instance: predictor batch-size distribution and train step timing.
///
/// Handles are resolved once through a `OnceLock` (the same pattern as
/// `bellamy_linalg::kernels::resolution()`); after the first call every
/// access is a plain shared reference and every record is one `fetch_add`.
pub struct GlobalMetrics {
    /// Distribution of rows per forward pass (unit: rows).
    pub predict_batch_rows: Histogram,
    /// Total rows pushed through the forward pass.
    pub predict_queries: Counter,
    /// Total optimizer steps taken.
    pub train_steps: Counter,
    /// Per-step wall time (recorded in nanoseconds).
    pub train_step_nanos: Histogram,
}

impl GlobalMetrics {
    const fn new() -> Self {
        Self {
            predict_batch_rows: Histogram::new(),
            predict_queries: Counter::new(),
            train_steps: Counter::new(),
            train_step_nanos: Histogram::new(),
        }
    }
}

static GLOBAL: OnceLock<GlobalMetrics> = OnceLock::new();

/// The process-wide metric registry. First call initialises it; subsequent
/// calls are a single atomic load.
pub fn global() -> &'static GlobalMetrics {
    GLOBAL.get_or_init(GlobalMetrics::new)
}

static TIMING: AtomicBool = AtomicBool::new(true);

/// Enable or disable the supplemental latency timing instrumentation
/// (defaults to enabled). Counters and the event log are unaffected.
pub fn set_timing_enabled(on: bool) {
    TIMING.store(on, Ordering::Relaxed);
}

/// Whether latency timing instrumentation is currently enabled.
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_a_singleton() {
        let a = global() as *const GlobalMetrics;
        let b = global() as *const GlobalMetrics;
        assert_eq!(a, b);
    }

    #[test]
    fn timing_toggle_round_trips() {
        assert!(timing_enabled());
        set_timing_enabled(false);
        assert!(!timing_enabled());
        set_timing_enabled(true);
        assert!(timing_enabled());
    }
}
