//! Typed point-in-time snapshot of every metric, with JSON and
//! Prometheus-text rendering.

use crate::events::Event;
use crate::metrics::{Histogram, HistogramSnapshot};

/// The value carried by one [`Sample`]. Histograms are boxed so a
/// counter-only `Sample` stays small; snapshots are built on the scrape
/// path, never on a hot path, so the allocation is free to make.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(Box<HistogramSnapshot>),
}

/// One named metric reading. Histograms recorded in nanoseconds use
/// `unit == "seconds"`; exporters scale their bucket bounds by 1e-9 so the
/// rendered output is in the named unit.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    pub name: &'static str,
    pub labels: Vec<(&'static str, String)>,
    pub unit: &'static str,
    pub help: &'static str,
    pub value: MetricValue,
}

impl Sample {
    fn scale(&self) -> f64 {
        if self.unit == "seconds" {
            1e-9
        } else {
            1.0
        }
    }

    /// The value of label `key` on this sample, if present.
    pub fn label_value(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A typed, consistent point-in-time read of every metric plus the recent
/// structured events. Built by the instrumented layers (one pass over live
/// atomics), rendered here.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    samples: Vec<Sample>,
    events: Vec<Event>,
}

impl TelemetrySnapshot {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push_counter(
        &mut self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        unit: &'static str,
        help: &'static str,
        value: u64,
    ) {
        self.samples.push(Sample {
            name,
            labels,
            unit,
            help,
            value: MetricValue::Counter(value),
        });
    }

    pub fn push_gauge(
        &mut self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        unit: &'static str,
        help: &'static str,
        value: i64,
    ) {
        self.samples.push(Sample {
            name,
            labels,
            unit,
            help,
            value: MetricValue::Gauge(value),
        });
    }

    pub fn push_histogram(
        &mut self,
        name: &'static str,
        labels: Vec<(&'static str, String)>,
        unit: &'static str,
        help: &'static str,
        value: HistogramSnapshot,
    ) {
        self.samples.push(Sample {
            name,
            labels,
            unit,
            help,
            value: MetricValue::Histogram(Box::new(value)),
        });
    }

    pub fn set_events(&mut self, events: Vec<Event>) {
        self.events = events;
    }

    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Sum of a counter across all label sets, if any sample carries it.
    pub fn counter(&self, name: &str) -> Option<u64> {
        let mut found = false;
        let mut total = 0u64;
        for s in &self.samples {
            if s.name == name {
                if let MetricValue::Counter(v) = s.value {
                    found = true;
                    total += v;
                }
            }
        }
        found.then_some(total)
    }

    /// A counter restricted to one `label == value` pair.
    pub fn counter_with(&self, name: &str, label: &str, value: &str) -> Option<u64> {
        self.samples.iter().find_map(|s| {
            if s.name == name && s.label_value(label) == Some(value) {
                if let MetricValue::Counter(v) = s.value {
                    return Some(v);
                }
            }
            None
        })
    }

    /// First gauge sample with this name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.samples.iter().find_map(|s| {
            if s.name == name {
                if let MetricValue::Gauge(v) = s.value {
                    return Some(v);
                }
            }
            None
        })
    }

    /// First histogram sample with this name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.samples.iter().find_map(|s| {
            if s.name == name {
                if let MetricValue::Histogram(h) = &s.value {
                    return Some(h.as_ref());
                }
            }
            None
        })
    }

    /// A histogram restricted to one `label == value` pair.
    pub fn histogram_with(
        &self,
        name: &str,
        label: &str,
        value: &str,
    ) -> Option<&HistogramSnapshot> {
        self.samples.iter().find_map(|s| {
            if s.name == name && s.label_value(label) == Some(value) {
                if let MetricValue::Histogram(h) = &s.value {
                    return Some(h.as_ref());
                }
            }
            None
        })
    }

    /// Render the snapshot as a single JSON object:
    /// `{"metrics": [...], "events": [...]}`. Histogram bucket bounds and
    /// quantiles are scaled into the sample's declared unit.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"metrics\": [");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            render_sample_json(&mut out, s);
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"seq\": {}, \"elapsed_us\": {}, \"kind\": \"{}\", \"detail\": \"{}\"}}",
                e.seq,
                e.elapsed_us,
                json_escape(e.kind),
                json_escape(&e.detail)
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Render the snapshot in the Prometheus text exposition format.
    /// `# HELP` / `# TYPE` headers are emitted once per metric name;
    /// histograms render cumulative `_bucket{le=...}` series plus `_sum`
    /// (midpoint-approximated) and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);
        let mut seen: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !seen.contains(&s.name) {
                seen.push(s.name);
                let kind = match s.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
                out.push_str(&format!("# TYPE {} {}\n", s.name, kind));
            }
            render_sample_prometheus(&mut out, s);
        }
        out
    }
}

fn render_sample_json(out: &mut String, s: &Sample) {
    out.push_str(&format!("{{\"name\": \"{}\", ", s.name));
    out.push_str("\"labels\": {");
    for (i, (k, v)) in s.labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": \"{}\"", k, json_escape(v)));
    }
    out.push_str("}, ");
    if !s.unit.is_empty() {
        out.push_str(&format!("\"unit\": \"{}\", ", s.unit));
    }
    match &s.value {
        MetricValue::Counter(v) => {
            out.push_str(&format!("\"type\": \"counter\", \"value\": {v}}}"));
        }
        MetricValue::Gauge(v) => {
            out.push_str(&format!("\"type\": \"gauge\", \"value\": {v}}}"));
        }
        MetricValue::Histogram(h) => {
            let scale = s.scale();
            out.push_str(&format!(
                "\"type\": \"histogram\", \"count\": {}, \"p50\": {}, \"p99\": {}, \"mean\": {}, \"buckets\": [",
                h.count(),
                fmt_f64(h.quantile(0.5) as f64 * scale),
                fmt_f64(h.quantile(0.99) as f64 * scale),
                fmt_f64(h.mean_approx() * scale),
            ));
            let n = h.nonzero_len();
            for (i, &c) in h.counts()[..n].iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"le\": {}, \"count\": {}}}",
                    fmt_le(Histogram::bucket_upper(i), scale),
                    c
                ));
            }
            out.push_str("]}");
        }
    }
}

fn render_sample_prometheus(out: &mut String, s: &Sample) {
    match &s.value {
        MetricValue::Counter(v) => {
            out.push_str(&format!(
                "{}{} {}\n",
                s.name,
                prom_labels(&s.labels, None),
                v
            ));
        }
        MetricValue::Gauge(v) => {
            out.push_str(&format!(
                "{}{} {}\n",
                s.name,
                prom_labels(&s.labels, None),
                v
            ));
        }
        MetricValue::Histogram(h) => {
            let scale = s.scale();
            let n = h.nonzero_len();
            let mut cum = 0u64;
            for (i, &c) in h.counts()[..n].iter().enumerate() {
                cum += c;
                let le = fmt_le(Histogram::bucket_upper(i), scale);
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    s.name,
                    prom_labels(&s.labels, Some(&le)),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                s.name,
                prom_labels(&s.labels, Some("+Inf")),
                h.count()
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                s.name,
                prom_labels(&s.labels, None),
                fmt_f64(h.sum_approx() * scale)
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                s.name,
                prom_labels(&s.labels, None),
                h.count()
            ));
        }
    }
}

/// `{k="v",...}` including an optional trailing `le` label; empty string when
/// there are no labels at all.
fn prom_labels(labels: &[(&'static str, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}=\"{}\"", k, prom_escape(v)));
    }
    if let Some(le) = le {
        if !labels.is_empty() {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

/// Bucket upper bound in the sample's unit. The unbounded last bucket
/// renders as `+Inf` only via the explicit prometheus series; here it gets
/// its saturated numeric value, which JSON consumers treat as "huge".
fn fmt_le(upper: u64, scale: f64) -> String {
    if scale == 1.0 {
        format!("{upper}")
    } else {
        fmt_f64(upper as f64 * scale)
    }
}

/// Compact float rendering that is still valid JSON (never NaN/inf — inputs
/// are finite by construction).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn prom_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::event_kind;
    use crate::metrics::Histogram;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        snap.push_counter(
            "bellamy_serve_queries_total",
            vec![("model", "sgd".to_string())],
            "queries",
            "Queries served through the batcher.",
            42,
        );
        snap.push_gauge(
            "bellamy_serve_queue_depth",
            vec![("model", "sgd".to_string())],
            "queries",
            "In-flight queries.",
            3,
        );
        let h = Histogram::new();
        for _ in 0..9 {
            h.record(1_000);
        }
        h.record(1_000_000);
        snap.push_histogram(
            "bellamy_serve_submit_latency_seconds",
            vec![("model", "sgd".to_string())],
            "seconds",
            "Per-query submit latency.",
            h.snapshot(),
        );
        snap.set_events(vec![Event {
            seq: 0,
            elapsed_us: 5,
            kind: event_kind::BATCHER_DEGRADED,
            detail: "panic budget \"exceeded\"".to_string(),
        }]);
        snap
    }

    #[test]
    fn typed_accessors_find_samples() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("bellamy_serve_queries_total"), Some(42));
        assert_eq!(
            snap.counter_with("bellamy_serve_queries_total", "model", "sgd"),
            Some(42)
        );
        assert_eq!(
            snap.counter_with("bellamy_serve_queries_total", "model", "other"),
            None
        );
        assert_eq!(snap.gauge("bellamy_serve_queue_depth"), Some(3));
        let h = snap
            .histogram("bellamy_serve_submit_latency_seconds")
            .unwrap();
        assert_eq!(h.count(), 10);
        assert_eq!(snap.counter("no_such_metric"), None);
    }

    #[test]
    fn json_rendering_is_balanced_and_escaped() {
        let json = sample_snapshot().to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in: {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"bellamy_serve_queries_total\""));
        assert!(json.contains("\"value\": 42"));
        assert!(json.contains("\"type\": \"histogram\""));
        assert!(json.contains("\"count\": 10"));
        // The quoted word inside the event detail must be escaped.
        assert!(json.contains("panic budget \\\"exceeded\\\""));
    }

    #[test]
    fn prometheus_rendering_has_headers_and_cumulative_buckets() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# HELP bellamy_serve_queries_total"));
        assert!(text.contains("# TYPE bellamy_serve_queries_total counter"));
        assert!(text.contains("# TYPE bellamy_serve_queue_depth gauge"));
        assert!(text.contains("# TYPE bellamy_serve_submit_latency_seconds histogram"));
        assert!(text.contains("bellamy_serve_queries_total{model=\"sgd\"} 42"));
        assert!(text.contains("bellamy_serve_submit_latency_seconds_count{model=\"sgd\"} 10"));
        assert!(text
            .contains("bellamy_serve_submit_latency_seconds_bucket{model=\"sgd\",le=\"+Inf\"} 10"));
        // Bucket series must be cumulative and non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts not cumulative: {line}");
            last = v;
        }
        assert_eq!(last, 10);
    }

    #[test]
    fn headers_emitted_once_per_name() {
        let mut snap = TelemetrySnapshot::new();
        for mode in ["deserialize", "mmap"] {
            snap.push_counter(
                "bellamy_hub_disk_recalls_total",
                vec![("mode", mode.to_string())],
                "recalls",
                "Disk recalls.",
                1,
            );
        }
        let text = snap.to_prometheus();
        assert_eq!(
            text.matches("# HELP bellamy_hub_disk_recalls_total")
                .count(),
            1
        );
        assert_eq!(text.matches("bellamy_hub_disk_recalls_total{").count(), 2);
    }
}
