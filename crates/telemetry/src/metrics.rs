//! Lock-free metric primitives: counters, gauges, log₂ latency histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event count. `add` is a single relaxed
/// `fetch_add`: no locks, no allocation.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A deterministic 1-in-N gate for supplemental measurements that cost
/// more than a `fetch_add` — clock reads, most commonly. `tick()` is a
/// single relaxed `fetch_add` plus a mask test (the period is a power of
/// two, so there is never a division), returning `true` on the first call
/// and every `period`-th call after. Sampling a latency histogram this way
/// keeps its quantiles representative of a steady workload while shrinking
/// the per-operation cost by the period.
#[derive(Debug)]
pub struct Sampler {
    ticks: AtomicU64,
    mask: u64,
}

impl Sampler {
    /// A sampler firing every `period`-th tick; `period` must be a power
    /// of two.
    pub const fn every(period: u64) -> Self {
        assert!(period.is_power_of_two(), "sample period must be 2^k");
        Self {
            ticks: AtomicU64::new(0),
            mask: period - 1,
        }
    }

    /// Advances the sampler and reports whether this tick is sampled.
    #[inline]
    pub fn tick(&self) -> bool {
        self.ticks.fetch_add(1, Ordering::Relaxed) & self.mask == 0
    }

    /// Total ticks observed (sampled or not).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` covers values in
/// `[2^i, 2^(i+1))` (bucket 0 also absorbs 0), so 48 buckets span
/// 1 ns … ~3.3 days when recording nanoseconds — ample for every latency
/// and batch-size distribution in the stack. The last bucket is unbounded.
pub const NUM_BUCKETS: usize = 48;

/// A fixed-bucket, log₂-scale histogram. The record path is exactly one
/// relaxed `fetch_add` on the owning bucket — no locks, no allocation —
/// which preserves the zero-alloc serving contract when called from the
/// steady-state submit/predict paths.
///
/// Values are raw `u64`s; callers pick the unit (the serving layer records
/// nanoseconds, the predictor records row counts).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
        }
    }

    /// Index of the bucket owning `v`: `floor(log2(v))` clamped to the table.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < 2 {
            0
        } else {
            let idx = 63 - v.leading_zeros() as usize;
            idx.min(NUM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (last bucket is unbounded).
    pub const fn bucket_upper(i: usize) -> u64 {
        if i >= NUM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Record one observation. One relaxed `fetch_add`, nothing else.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy of all bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; NUM_BUCKETS];
        for (dst, src) in counts.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot { counts }
    }
}

/// An owned, immutable copy of a [`Histogram`]'s bucket counts, with
/// quantile and summary helpers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; NUM_BUCKETS],
}

impl HistogramSnapshot {
    pub fn from_counts(counts: [u64; NUM_BUCKETS]) -> Self {
        Self { counts }
    }

    pub fn counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Nearest-rank quantile, resolved to the inclusive upper bound of the
    /// bucket holding the target rank (log₂ resolution). Returns 0 for an
    /// empty histogram. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Same nearest-rank convention as `nearest_rank`: zero-based target
        // index round((n-1) * q), then walk the cumulative counts.
        let target = ((total - 1) as f64 * q).round() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > target {
                return Histogram::bucket_upper(i);
            }
        }
        Histogram::bucket_upper(NUM_BUCKETS - 1)
    }

    /// Approximate sum of all observations, assuming each landed at its
    /// bucket's arithmetic midpoint. Exact enough for rate/mean dashboards;
    /// not for billing.
    pub fn sum_approx(&self) -> f64 {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mid = if i == 0 {
                    1.0
                } else {
                    1.5 * (1u64 << i) as f64
                };
                c as f64 * mid
            })
            .sum()
    }

    /// Approximate mean observation (see [`Self::sum_approx`]).
    pub fn mean_approx(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_approx() / n as f64
        }
    }

    /// Index one past the highest non-empty bucket (0 if empty). Exporters
    /// use this to avoid rendering the empty tail.
    pub fn nonzero_len(&self) -> usize {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
    }
}

/// Shared nearest-rank percentile over an already-sorted sample set:
/// the element at zero-based index `round((len - 1) * q)`. This is the
/// single implementation behind both `HistogramSnapshot::quantile` and the
/// bench harness's exact p50/p99 columns. Returns 0 for an empty slice.
pub fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_fires_first_then_every_period() {
        let s = Sampler::every(4);
        let fired: Vec<bool> = (0..9).map(|_| s.tick()).collect();
        assert_eq!(
            fired,
            vec![true, false, false, false, true, false, false, false, true]
        );
        assert_eq!(s.ticks(), 9);
        let always = Sampler::every(1);
        assert!((0..5).all(|_| always.tick()));
    }

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn bucket_index_is_floor_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1023), 9);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_are_inclusive() {
        assert_eq!(Histogram::bucket_upper(0), 1);
        assert_eq!(Histogram::bucket_upper(1), 3);
        assert_eq!(Histogram::bucket_upper(9), 1023);
        assert_eq!(Histogram::bucket_upper(NUM_BUCKETS - 1), u64::MAX);
        // Every value maps inside its bucket's bound.
        for v in [0u64, 1, 2, 3, 5, 100, 1 << 20, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper(i));
            if i > 0 {
                assert!(v > Histogram::bucket_upper(i - 1));
            }
        }
    }

    #[test]
    fn histogram_quantiles_hit_bucket_uppers() {
        let h = Histogram::new();
        // 90 fast observations (~1µs), 10 slow (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.quantile(0.5), Histogram::bucket_upper(9)); // 1000 → bucket 9
        assert_eq!(s.quantile(0.99), Histogram::bucket_upper(19)); // 1e6 → bucket 19
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean_approx(), 0.0);
        assert_eq!(s.nonzero_len(), 0);
    }

    #[test]
    fn nearest_rank_matches_bench_convention() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&sorted, 0.0), 1);
        assert_eq!(nearest_rank(&sorted, 1.0), 100);
        assert_eq!(nearest_rank(&sorted, 0.5), 51); // round(99*0.5)=50 → sorted[50]
        assert_eq!(nearest_rank(&sorted, 0.99), 99); // round(99*0.99)=98
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[7], 0.99), 7);
    }

    #[test]
    fn sum_approx_uses_midpoints() {
        let h = Histogram::new();
        h.record(0); // bucket 0, midpoint 1
        h.record(4); // bucket 2, midpoint 6
        let s = h.snapshot();
        assert_eq!(s.sum_approx(), 7.0);
        assert_eq!(s.mean_approx(), 3.5);
    }

    #[test]
    fn record_duration_records_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(1));
        let s = h.snapshot();
        assert_eq!(s.counts()[Histogram::bucket_index(1_000)], 1);
    }
}
