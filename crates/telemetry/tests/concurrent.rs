//! Concurrency guarantees of the lock-free histogram: exact totals and
//! bucket monotonicity under 8 simultaneous recorders.

use std::sync::Arc;
use std::thread;

use bellamy_telemetry::{Counter, Histogram, NUM_BUCKETS};

const THREADS: usize = 8;
const RECORDS_PER_THREAD: u64 = 50_000;

#[test]
fn histogram_is_exact_under_8_concurrent_recorders() {
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                // Thread t records values landing exactly in bucket t+1
                // (value 2^(t+1)), plus a shared stream into bucket 0.
                let v = 1u64 << (t + 1);
                for i in 0..RECORDS_PER_THREAD {
                    if i % 2 == 0 {
                        hist.record(v);
                    } else {
                        hist.record(1);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = hist.snapshot();
    let expected_total = THREADS as u64 * RECORDS_PER_THREAD;
    assert_eq!(snap.count(), expected_total, "no record may be lost");

    // Bucket 0 got every thread's odd-iteration records.
    assert_eq!(snap.counts()[0], expected_total / 2);
    // Each thread's dedicated bucket got exactly its even-iteration records.
    for t in 0..THREADS {
        assert_eq!(
            snap.counts()[t + 1],
            RECORDS_PER_THREAD / 2,
            "bucket {} lost records",
            t + 1
        );
    }
    // All remaining buckets are untouched.
    for (i, &c) in snap.counts().iter().enumerate().skip(THREADS + 1) {
        assert_eq!(c, 0, "bucket {i} unexpectedly non-empty");
    }

    // Cumulative bucket counts are monotonically non-decreasing and end at
    // the exact total (the invariant the Prometheus exporter relies on).
    let mut cum = 0u64;
    let mut last = 0u64;
    for &c in snap.counts().iter() {
        cum += c;
        assert!(cum >= last, "cumulative counts must be monotone");
        last = cum;
    }
    assert_eq!(cum, expected_total);
    assert!(snap.nonzero_len() <= NUM_BUCKETS);
}

#[test]
fn counter_is_exact_under_8_concurrent_recorders() {
    let counter = Arc::new(Counter::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = Arc::clone(&counter);
            thread::spawn(move || {
                for _ in 0..RECORDS_PER_THREAD {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.get(), THREADS as u64 * RECORDS_PER_THREAD);
}
