//! Feature assembly: scale-out features, context properties, and training
//! samples.

use bellamy_data::{JobContext, JobRun};
use bellamy_encoding::PropertyValue;

/// The Ernest-inspired scale-out feature vector `[1/x, log x, x]` (§III-B).
pub fn scale_out_features(x: f64) -> [f64; 3] {
    assert!(x >= 1.0, "scale-out must be at least 1");
    [1.0 / x, x.ln(), x]
}

/// The descriptive properties of one execution context, split into the
/// paper's essential and optional groups (§IV-B): essential are dataset
/// size, dataset characteristics, job parameters and node type; optional are
/// memory (MB), CPU cores, and the job name.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextProperties {
    /// Always-available properties, order-sensitive (each position has its
    /// own code slot in `r`).
    pub essential: Vec<PropertyValue>,
    /// Sometimes-available properties, mean-pooled into one code (Eq. 6).
    pub optional: Vec<PropertyValue>,
}

/// Extracts the paper's property assignment from a [`JobContext`].
pub fn context_properties(ctx: &JobContext) -> ContextProperties {
    ContextProperties {
        essential: vec![
            PropertyValue::Number(ctx.dataset_size_mb),
            PropertyValue::text(&ctx.dataset_characteristics),
            PropertyValue::text(&ctx.job_parameters),
            PropertyValue::text(&ctx.node_type.name),
        ],
        optional: vec![
            PropertyValue::Number(ctx.node_type.memory_mb),
            PropertyValue::Number(ctx.node_type.cores as u64),
            PropertyValue::text(ctx.algorithm.name()),
        ],
    }
}

/// One training observation: a scale-out, its measured runtime, and the
/// context it ran in.
#[derive(Debug, Clone)]
pub struct TrainingSample {
    /// Number of machines.
    pub scale_out: f64,
    /// Measured runtime in seconds.
    pub runtime_s: f64,
    /// Context description.
    pub props: ContextProperties,
}

impl TrainingSample {
    /// Builds a sample from a run and its context.
    pub fn from_run(ctx: &JobContext, run: &JobRun) -> Self {
        Self {
            scale_out: run.scale_out as f64,
            runtime_s: run.runtime_s,
            props: context_properties(ctx),
        }
    }
}

/// Converts a set of runs (with their dataset for context lookup) into
/// training samples.
pub fn samples_from_runs(dataset: &bellamy_data::Dataset, runs: &[&JobRun]) -> Vec<TrainingSample> {
    runs.iter()
        .map(|r| TrainingSample::from_run(&dataset.contexts[r.context_id], r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellamy_data::{generate_c3o, GeneratorConfig};

    #[test]
    fn scale_out_features_values() {
        let f = scale_out_features(4.0);
        assert_eq!(f[0], 0.25);
        assert!((f[1] - 4.0f64.ln()).abs() < 1e-12);
        assert_eq!(f[2], 4.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_scale_out_rejected() {
        let _ = scale_out_features(0.0);
    }

    #[test]
    fn context_properties_assignment() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let ctx = &ds.contexts[0];
        let props = context_properties(ctx);
        assert_eq!(props.essential.len(), 4);
        assert_eq!(props.optional.len(), 3);
        assert_eq!(
            props.essential[0],
            PropertyValue::Number(ctx.dataset_size_mb)
        );
        assert_eq!(props.essential[3], PropertyValue::text(&ctx.node_type.name));
        assert_eq!(props.optional[2], PropertyValue::text(ctx.algorithm.name()));
    }

    #[test]
    fn samples_from_runs_align() {
        let ds = generate_c3o(&GeneratorConfig::default());
        let runs = ds.runs_for_context(0);
        let samples = samples_from_runs(&ds, &runs);
        assert_eq!(samples.len(), runs.len());
        assert_eq!(samples[0].scale_out, runs[0].scale_out as f64);
        assert_eq!(samples[0].runtime_s, runs[0].runtime_s);
        // Every sample of one context carries identical properties.
        for s in &samples {
            assert_eq!(s.props, samples[0].props);
        }
    }
}
