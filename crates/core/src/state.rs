//! The immutable, shareable half of a model: [`ModelState`].
//!
//! Bellamy's reuse story — one pretrained model per (algorithm, objective)
//! recalled and served across contexts — needs a clean split between
//! *training* (mutation) and *serving* (concurrent reads):
//!
//! - [`crate::Bellamy`] is the **trainer handle**: it owns the mutable
//!   parameters and is driven by `pretrain`/`fine_tune`.
//! - `ModelState` is an **immutable snapshot** of a fitted model — weights,
//!   fitted scalers, target scale, and configuration — published behind an
//!   `Arc` by [`crate::Bellamy::snapshot`] (copy-on-write: republishing an
//!   unchanged handle is a reference-count bump).
//!
//! Any number of threads predict through one `Arc<ModelState>` with no
//! locking on the hot path: a [`crate::Predictor`] per thread holds the
//! mutable scratch (graph arena, batch matrices), while the state carries
//! everything threads can *share* — including the memoized
//! property-encoding cache, which is lock-sharded so that one thread
//! encoding `"m4.2xlarge"` warms it for every other thread serving the same
//! model. Batched, swept, and single-query predictions through the same
//! state agree bit-for-bit (`tests/predictor.rs`, `tests/concurrency.rs`).

use crate::config::BellamyConfig;
use crate::features::ContextProperties;
use crate::model::{
    checkpoint_metadata, config_from_metadata, scaler_from_metadata, target_scale_from_metadata,
    Layers,
};
use bellamy_encoding::{MinMaxScaler, PropertyEncoder, PropertyValue};
use bellamy_nn::{Checkpoint, CheckpointError, ParamSet};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Upper bound on cached distinct property encodings per model state. Real
/// workloads see a few properties per context and a few hundred contexts per
/// process; the cap only guards against pathological unbounded streams. On
/// overflow the offending shard is cleared (and re-warms) — correctness is
/// never affected, only the amortization.
pub const ENCODE_CACHE_CAP: usize = 4096;

/// Lock shards in the encoding cache. Sharding keeps writer stalls local:
/// a miss inserting into one shard never blocks readers of the other seven.
const CACHE_SHARDS: usize = 8;

/// The lock-sharded, bounded property-encoding memo shared by every thread
/// serving one model. Encodings are deterministic per (encoder, property),
/// so a cached vector is valid for the lifetime of the state.
struct EncodingCache {
    shards: Vec<RwLock<HashMap<PropertyValue, Vec<f64>>>>,
}

impl EncodingCache {
    fn new() -> Self {
        Self {
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard_for(&self, p: &PropertyValue) -> &RwLock<HashMap<PropertyValue, Vec<f64>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        p.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    /// Runs `f` on the cached encoding of `p`, computing and inserting it
    /// first on a miss. The hit path takes one shard read lock and performs
    /// no allocation; the miss path encodes outside any lock and takes the
    /// shard write lock only to insert.
    fn with_encoding(&self, encoder: &PropertyEncoder, p: &PropertyValue, f: impl FnOnce(&[f64])) {
        let shard = self.shard_for(p);
        {
            let read = shard.read();
            if let Some(enc) = read.get(p) {
                f(enc);
                return;
            }
        }
        let enc = encoder.encode(p);
        let mut write = shard.write();
        if write.len() >= ENCODE_CACHE_CAP / CACHE_SHARDS {
            write.clear();
        }
        let entry = write.entry(p.clone()).or_insert(enc);
        f(entry);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

/// Where a state came from, when it was produced through a
/// [`crate::hub::ModelHub`]: its registry key and (for fine-tuned
/// descendants) the key of the pretrained parent checkpoint it was derived
/// from.
#[derive(Debug, Clone, Default)]
pub(crate) struct Lineage {
    pub key: Option<String>,
    pub parent: Option<String>,
}

/// Why a checkpoint could not be turned into a serving state directly.
#[derive(Debug)]
pub enum StateFromCheckpointError {
    /// The checkpoint's metadata or parameters don't describe a valid
    /// Bellamy model (missing dims, tensors that don't match the
    /// architecture, ...).
    Invalid(CheckpointError),
    /// The checkpoint is structurally valid but was written before the
    /// model was ever fitted (no scaler bounds) — there is nothing to
    /// serve.
    Unfitted,
}

impl std::fmt::Display for StateFromCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateFromCheckpointError::Invalid(e) => write!(f, "invalid checkpoint: {e}"),
            StateFromCheckpointError::Unfitted => {
                write!(f, "checkpoint holds an unfitted model (no scaler bounds)")
            }
        }
    }
}

impl std::error::Error for StateFromCheckpointError {}

/// An immutable snapshot of a fitted Bellamy model — everything inference
/// needs, nothing training can move. See the module docs for the
/// trainer/serving split and the concurrency contract.
pub struct ModelState {
    config: BellamyConfig,
    layers: Layers,
    params: ParamSet,
    encoder: PropertyEncoder,
    scaler: MinMaxScaler,
    target_scale: f64,
    lineage: Lineage,
    cache: EncodingCache,
}

impl std::fmt::Debug for ModelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelState")
            .field("config", &self.config)
            .field("target_scale", &self.target_scale)
            .field("lineage", &self.lineage)
            .field("cached_encodings", &self.cache.len())
            .finish_non_exhaustive()
    }
}

impl ModelState {
    pub(crate) fn new(
        config: BellamyConfig,
        layers: Layers,
        params: ParamSet,
        encoder: PropertyEncoder,
        scaler: MinMaxScaler,
        target_scale: f64,
    ) -> Self {
        Self {
            config,
            layers,
            params,
            encoder,
            scaler,
            target_scale,
            lineage: Lineage::default(),
            cache: EncodingCache::new(),
        }
    }

    /// Builds a serving state **directly** from a decoded checkpoint,
    /// taking ownership of its tensors without copying a single element.
    ///
    /// This is the zero-copy recall path: when the checkpoint came from
    /// [`Checkpoint::map`], the parameter matrices are read-only views into
    /// the shared file mapping, and the resulting state serves straight
    /// from the OS page cache. (It is equally valid for owned checkpoints —
    /// it simply skips the fresh-model-plus-value-copy detour that
    /// [`crate::Bellamy::from_checkpoint`] takes.) Mapped and owned states
    /// are bit-identical under every prediction path
    /// (`tests/mmap_store.rs`).
    pub fn from_checkpoint(ck: Checkpoint) -> Result<Self, StateFromCheckpointError> {
        let config = config_from_metadata(&ck).map_err(StateFromCheckpointError::Invalid)?;
        let layers = Layers::from_existing(&ck.params, &config).ok_or_else(|| {
            StateFromCheckpointError::Invalid(CheckpointError::Io(
                "checkpoint parameters do not match the model architecture".into(),
            ))
        })?;
        let scaler = scaler_from_metadata(&ck).ok_or(StateFromCheckpointError::Unfitted)?;
        let target_scale = target_scale_from_metadata(&ck);
        let encoder = PropertyEncoder::new(config.property_dim);
        Ok(Self::new(
            config,
            layers,
            ck.params,
            encoder,
            scaler,
            target_scale,
        ))
    }

    /// The model configuration.
    pub fn config(&self) -> &BellamyConfig {
        &self.config
    }

    /// The target scale applied to predictions.
    pub fn target_scale(&self) -> f64 {
        self.target_scale
    }

    pub(crate) fn layers(&self) -> &Layers {
        &self.layers
    }

    pub(crate) fn params(&self) -> &ParamSet {
        &self.params
    }

    pub(crate) fn encoder(&self) -> &PropertyEncoder {
        &self.encoder
    }

    pub(crate) fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    pub(crate) fn set_lineage(&mut self, key: Option<String>, parent: Option<String>) {
        self.lineage = Lineage { key, parent };
    }

    /// The hub registry key this state was published under, if any.
    pub fn registry_key(&self) -> Option<&str> {
        self.lineage.key.as_deref()
    }

    /// For fine-tuned descendants: the registry key of the pretrained
    /// parent checkpoint (provenance).
    pub fn parent_key(&self) -> Option<&str> {
        self.lineage.parent.as_deref()
    }

    /// Content fingerprint of the weights (exact bits). Two states with
    /// equal fingerprints serve bit-identical predictions.
    pub fn params_fingerprint(&self) -> u64 {
        self.params.values_fingerprint()
    }

    /// True when the weights are memory-mapped views of a checkpoint file
    /// (the zero-copy recall path) rather than owned buffers.
    pub fn weights_mapped(&self) -> bool {
        self.params.iter().any(|(_, p)| p.value.is_mapped())
    }

    /// Runs `f` on the shared cached encoding of `slot` (a zero row is the
    /// caller's business for missing properties).
    pub(crate) fn with_encoding(&self, p: &PropertyValue, f: impl FnOnce(&[f64])) {
        self.cache.with_encoding(&self.encoder, p, f);
    }

    /// Number of distinct property encodings currently cached (bounded by
    /// [`ENCODE_CACHE_CAP`]).
    pub fn encoding_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Predicts the runtime (seconds) for a scale-out in a described
    /// context. Total — a `ModelState` is always fitted. Served through
    /// this thread's shared predictor arena; for many queries, prefer
    /// [`crate::Predictor::predict_batch`] / [`crate::Predictor::predict_sweep`].
    pub fn predict(&self, scale_out: f64, props: &ContextProperties) -> f64 {
        crate::Predictor::with_thread_local(|p| p.predict_one(self, scale_out, props))
    }

    /// The latent code (length `M`) the auto-encoder assigns to one
    /// property — the vectors visualized in Fig. 4.
    pub fn code_for(&self, property: &PropertyValue) -> Vec<f64> {
        crate::Predictor::with_thread_local(|p| p.code_for(self, property))
    }

    /// Serializes the state (same format as [`crate::Bellamy::to_checkpoint`],
    /// so either side restores from either).
    pub fn to_checkpoint(&self) -> Checkpoint {
        let meta = checkpoint_metadata(&self.config, Some(&self.scaler), self.target_scale);
        Checkpoint::new(self.params.clone(), meta)
    }

    /// Saves to a file.
    pub fn save(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), bellamy_nn::CheckpointError> {
        self.to_checkpoint().save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bellamy, TrainingSample};
    use bellamy_encoding::PropertyValue;

    fn tiny_samples() -> Vec<TrainingSample> {
        (0..6)
            .map(|i| TrainingSample {
                scale_out: 2.0 + i as f64,
                runtime_s: 100.0 - 5.0 * i as f64,
                props: ContextProperties {
                    essential: vec![PropertyValue::Number(1024 + i as u64)],
                    optional: vec![PropertyValue::text(format!("opt-{i}"))],
                },
            })
            .collect()
    }

    #[test]
    fn encoding_cache_is_shared_bounded_and_deterministic() {
        let samples = tiny_samples();
        let mut model = Bellamy::new(BellamyConfig::default(), 1);
        model.fit_normalization(&samples);
        let state = model.snapshot().unwrap();
        assert_eq!(state.encoding_cache_len(), 0, "cold cache");

        let p1 = state.predict(4.0, &samples[0].props);
        let warm = state.encoding_cache_len();
        assert!(warm > 0, "serving must populate the shared cache");
        let p2 = state.predict(4.0, &samples[0].props);
        assert_eq!(p1.to_bits(), p2.to_bits());
        assert_eq!(
            state.encoding_cache_len(),
            warm,
            "repeat queries must hit, not grow"
        );
    }

    #[test]
    fn encoding_cache_stays_under_the_cap() {
        let samples = tiny_samples();
        let mut model = Bellamy::new(BellamyConfig::default(), 2);
        model.fit_normalization(&samples);
        let state = model.snapshot().unwrap();
        // A pathological stream of distinct properties (more than the cap).
        for i in 0..(ENCODE_CACHE_CAP + 512) {
            state.with_encoding(&PropertyValue::Number(i as u64), |enc| {
                assert_eq!(enc.len(), state.config().property_dim);
            });
        }
        assert!(
            state.encoding_cache_len() <= ENCODE_CACHE_CAP,
            "cache exceeded its cap: {}",
            state.encoding_cache_len()
        );
    }

    #[test]
    fn lineage_defaults_to_none() {
        let samples = tiny_samples();
        let mut model = Bellamy::new(BellamyConfig::default(), 3);
        model.fit_normalization(&samples);
        let state = model.snapshot().unwrap();
        assert!(state.registry_key().is_none());
        assert!(state.parent_key().is_none());
    }
}
