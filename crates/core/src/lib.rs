//! The Bellamy runtime-prediction model (paper §III).
//!
//! Bellamy predicts the runtime of a distributed dataflow job from its
//! horizontal scale-out *and* descriptive properties of the execution
//! context, which lets one model learn from historical executions across
//! contexts — the paper's central contribution. The architecture is four
//! two-layer feed-forward networks (§III-B/C/D, §IV-A):
//!
//! ```text
//!   scale-out x ──[1/x, log x, x]──► f: 3→16→8 ──────────────► e ∈ R^8
//!   property p⁽ⁱ⁾ ──[λ, q]──► g: 40→8→4 ──► code c⁽ⁱ⁾ ∈ R^4 ──┐
//!                         └─► h: 4→8→40 (reconstruction loss)  │
//!   r = e ⊕ c⁽¹⁾…c⁽ᵐ⁾ ⊕ mean(optional codes) ∈ R^28 ──► z: 28→8→1
//! ```
//!
//! Training jointly minimizes Huber(runtime) + MSE(reconstruction). The
//! workflow is two-step: [`train::pretrain`] on historical executions of
//! the same algorithm from *other* contexts, then [`finetune::fine_tune`] on
//! the few observations available for the context at hand, with most
//! components frozen (§III-A). Cross-environment reuse strategies
//! (partial/full unfreeze/reset, §IV-C2) are in [`finetune::ReuseStrategy`].
//!
//! # Training / serving split
//!
//! [`Bellamy`] is the mutable *trainer handle*; [`Bellamy::snapshot`]
//! publishes an immutable, `Arc`-shared [`ModelState`] that any number of
//! threads serve concurrently through the batched, arena-backed
//! [`predictor::Predictor`] (allocation-free after warm-up, with a
//! lock-sharded property-encoding cache shared across threads). The
//! [`hub::ModelHub`] builds the paper's *recall → fine-tune → serve* reuse
//! workflow on top: a content-addressed registry of pretrained snapshots
//! (in memory + on disk) plus an LRU of fine-tuned descendants with
//! parent-checkpoint provenance. See the [`state`] and [`hub`] module docs.
//!
//! The [`serve`] module is the unified front door over all of it: a
//! [`serve::Service`] hands out cheap [`serve::ModelClient`] handles whose
//! single-query predictions are micro-batched *across callers* into one
//! arena-backed forward pass per flush, and every layer's error surfaces
//! as one [`error::BellamyError`]. New callers should start there.

pub mod allocation;
pub mod config;
pub mod error;
pub mod faults;
pub mod features;
pub mod finetune;
pub mod hub;
pub mod model;
pub mod predictor;
pub mod search;
pub mod serve;
pub mod state;
pub mod train;

pub use allocation::{cheapest_scale_out, min_scale_out_meeting, ScaleOutRecommendation};
pub use config::{BellamyConfig, FinetuneConfig, PretrainConfig};
pub use error::BellamyError;
pub use faults::{ArmedGuard, Failpoint, Fault, FaultPlan};
pub use features::{context_properties, scale_out_features, ContextProperties, TrainingSample};
pub use finetune::{FinetuneReport, ReuseStrategy};
pub use hub::{HubError, HubStats, ModelHub, ModelKey, RecallMode};
pub use model::{Bellamy, PredictError};
pub use predictor::{PredictQuery, Predictor};
pub use search::{search_pretrain, SearchError, SearchReport, SearchSpace};
pub use serve::{
    BatcherConfig, BatcherStats, FinetunePolicy, FlushPolicy, ModelClient, Service, ServiceBuilder,
};
pub use state::{ModelState, StateFromCheckpointError};
pub use train::PretrainReport;

pub use bellamy_linalg::kernels::{
    Backend as KernelBackend, KernelTier, Resolution as KernelResolution, TierRequest,
};

pub use bellamy_telemetry::{
    event_kind, Event, HistogramSnapshot, MetricValue, Sample, TelemetrySnapshot,
};
