//! The Bellamy runtime-prediction model (paper §III).
//!
//! Bellamy predicts the runtime of a distributed dataflow job from its
//! horizontal scale-out *and* descriptive properties of the execution
//! context, which lets one model learn from historical executions across
//! contexts — the paper's central contribution. The architecture is four
//! two-layer feed-forward networks (§III-B/C/D, §IV-A):
//!
//! ```text
//!   scale-out x ──[1/x, log x, x]──► f: 3→16→8 ──────────────► e ∈ R^8
//!   property p⁽ⁱ⁾ ──[λ, q]──► g: 40→8→4 ──► code c⁽ⁱ⁾ ∈ R^4 ──┐
//!                         └─► h: 4→8→40 (reconstruction loss)  │
//!   r = e ⊕ c⁽¹⁾…c⁽ᵐ⁾ ⊕ mean(optional codes) ∈ R^28 ──► z: 28→8→1
//! ```
//!
//! Training jointly minimizes Huber(runtime) + MSE(reconstruction). The
//! workflow is two-step: [`train::pretrain`] on historical executions of
//! the same algorithm from *other* contexts, then [`finetune::fine_tune`] on
//! the few observations available for the context at hand, with most
//! components frozen (§III-A). Cross-environment reuse strategies
//! (partial/full unfreeze/reset, §IV-C2) are in [`finetune::ReuseStrategy`].
//!
//! Inference runs through the batched, arena-backed [`predictor::Predictor`]
//! subsystem (allocation-free after warm-up; [`Bellamy::predict`] is a thin
//! single-query wrapper over a thread-local instance) — see the
//! [`predictor`] module docs for the lifecycle and reuse rules.

pub mod allocation;
pub mod config;
pub mod features;
pub mod finetune;
pub mod model;
pub mod predictor;
pub mod search;
pub mod train;

pub use allocation::{cheapest_scale_out, min_scale_out_meeting, ScaleOutRecommendation};
pub use config::{BellamyConfig, FinetuneConfig, PretrainConfig};
pub use features::{context_properties, scale_out_features, ContextProperties, TrainingSample};
pub use finetune::{FinetuneReport, ReuseStrategy};
pub use model::Bellamy;
pub use predictor::{PredictQuery, Predictor};
pub use search::{search_pretrain, SearchError, SearchReport, SearchSpace};
pub use train::PretrainReport;
