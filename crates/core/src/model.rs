//! The Bellamy model: parameters, forward pass, prediction, persistence.
//!
//! Since the model-state split, `Bellamy` is the *trainer handle*: it owns
//! the mutable [`ParamSet`], normalization state, and layer handles, and the
//! training loops in sibling modules drive it. Serving never reads the
//! handle directly — [`Bellamy::snapshot`] publishes an immutable,
//! `Arc`-shared [`ModelState`] that any number of threads predict through
//! (see [`crate::state`] for the split's rationale and [`crate::hub`] for
//! the registry built on top of it).

use crate::config::BellamyConfig;
use crate::features::{scale_out_features, ContextProperties, TrainingSample};
use crate::state::ModelState;
use bellamy_autograd::{Activation, NodeId};
use bellamy_encoding::{MinMaxScaler, PropertyEncoder, PropertyValue};
use bellamy_linalg::{BufferPool, Matrix};
use bellamy_nn::{AlphaDropout, Checkpoint, CheckpointError, Graph, Linear, ParamSet};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Inference was requested from a model that cannot serve it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// The model has never been fitted (no pre-training, fine-tuning, or
    /// checkpoint load has established normalization bounds), so there is no
    /// state to predict with.
    NotFitted,
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::NotFitted => write!(
                f,
                "model is not fitted: pre-train, fine-tune, or load a checkpoint first"
            ),
        }
    }
}

impl std::error::Error for PredictError {}

/// A sample with all encodings precomputed (encoding is deterministic, so it
/// is done once per sample, not once per epoch).
#[derive(Debug, Clone)]
pub(crate) struct EncodedSample {
    /// Normalized scale-out features (after the min-max scaler).
    pub sx: [f64; 3],
    /// One `N`-dim vector per property position (`m` essential then `n`
    /// optional).
    pub props: Vec<Vec<f64>>,
    /// Raw runtime in seconds.
    pub target_s: f64,
}

/// A batch of encoded samples as matrices ready for the graph.
///
/// Property encodings are stacked into **one** `(m + n)·batch x N` matrix
/// (rows `[k·batch, (k+1)·batch)` hold property `k` for the whole batch), so
/// the shared auto-encoder runs once over all properties instead of once per
/// property — fewer, taller matmuls and a fraction of the tape nodes.
/// The struct is reusable: [`Bellamy::make_batch_into`] refills it in place.
pub(crate) struct BatchTensors {
    /// `batch x 3` normalized scale-out features.
    pub sx: Matrix,
    /// `(m + n)·batch x N` property encodings, stacked by property.
    pub props: Matrix,
    /// `batch x 1` scaled targets.
    pub targets_scaled: Matrix,
    /// Rows per property block.
    pub batch: usize,
}

impl BatchTensors {
    /// An empty shell to be filled by [`Bellamy::make_batch_into`].
    pub fn empty() -> Self {
        Self {
            sx: Matrix::zeros(0, 0),
            props: Matrix::zeros(0, 0),
            targets_scaled: Matrix::zeros(0, 0),
            batch: 0,
        }
    }
}

/// Output node handles from one forward pass.
pub(crate) struct ForwardOut {
    /// `batch x 1` prediction in scaled-target units.
    pub pred: NodeId,
    /// Mean auto-encoder reconstruction MSE across all properties.
    pub recon: NodeId,
}

/// The four two-layer networks of the architecture (§IV-A), as parameter
/// handles into a [`ParamSet`]. The struct is pure *wiring*: it holds no
/// values, so the trainer handle and every published [`ModelState`] share
/// one `Layers` (handles stay valid because snapshots clone the parameter
/// set with an identical layout).
#[derive(Debug, Clone)]
pub(crate) struct Layers {
    pub f1: Linear,
    pub f2: Linear,
    pub g1: Linear,
    pub g2: Linear,
    pub h1: Linear,
    pub h2: Linear,
    pub z1: Linear,
    pub z2: Linear,
}

impl Layers {
    /// Registers all layer parameters (He/LeCun per `config.init`).
    fn new(params: &mut ParamSet, config: &BellamyConfig, rng: &mut StdRng) -> Self {
        let init = config.init;
        let n = config.property_dim;
        let m = config.code_dim;
        let hid = config.hidden_dim;
        let fh = config.scale_out_hidden_dim;
        let f_out = config.scale_out_dim;
        let r_dim = config.combined_dim();

        // §IV-A: every linear layer is followed by an activation — SELU
        // everywhere except the decoder output (tanh). The auto-encoder
        // waives additive biases.
        Self {
            f1: Linear::new(params, "f.l1", 3, fh, true, Activation::Selu, init, rng),
            f2: Linear::new(params, "f.l2", fh, f_out, true, Activation::Selu, init, rng),
            g1: Linear::new(params, "g.l1", n, hid, false, Activation::Selu, init, rng),
            g2: Linear::new(params, "g.l2", hid, m, false, Activation::Selu, init, rng),
            h1: Linear::new(params, "h.l1", m, hid, false, Activation::Selu, init, rng),
            h2: Linear::new(params, "h.l2", hid, n, false, Activation::Tanh, init, rng),
            z1: Linear::new(
                params,
                "z.l1",
                r_dim,
                hid,
                true,
                Activation::Selu,
                init,
                rng,
            ),
            z2: Linear::new(params, "z.l2", hid, 1, true, Activation::Selu, init, rng),
        }
    }

    /// Rebuilds the wiring over an **existing** parameter set (a decoded
    /// checkpoint) without touching any values — the zero-copy recall path:
    /// where [`Bellamy::from_checkpoint`] constructs a fresh model and
    /// copies weights into it, this validates that the named tensors match
    /// the architecture `config` describes and wires handles straight to
    /// them (mapped or owned alike). Returns `None` when a layer is
    /// missing, has the wrong shape, or has the wrong bias arity.
    pub(crate) fn from_existing(params: &ParamSet, config: &BellamyConfig) -> Option<Self> {
        let n = config.property_dim;
        let m = config.code_dim;
        let hid = config.hidden_dim;
        let fh = config.scale_out_hidden_dim;
        let f_out = config.scale_out_dim;
        let r_dim = config.combined_dim();

        let layer = |name: &str,
                     in_dim: usize,
                     out_dim: usize,
                     bias: bool,
                     act: Activation|
         -> Option<Linear> {
            let l = Linear::from_existing(params, name, act)?;
            (l.in_dim() == in_dim && l.out_dim() == out_dim && l.bias().is_some() == bias)
                .then_some(l)
        };

        Some(Self {
            f1: layer("f.l1", 3, fh, true, Activation::Selu)?,
            f2: layer("f.l2", fh, f_out, true, Activation::Selu)?,
            g1: layer("g.l1", n, hid, false, Activation::Selu)?,
            g2: layer("g.l2", hid, m, false, Activation::Selu)?,
            h1: layer("h.l1", m, hid, false, Activation::Selu)?,
            h2: layer("h.l2", hid, n, false, Activation::Tanh)?,
            z1: layer("z.l1", r_dim, hid, true, Activation::Selu)?,
            z2: layer("z.l2", hid, 1, true, Activation::Selu)?,
        })
    }

    /// Runs the training forward pass for a batch. `dropout` applies
    /// alpha-dropout between the auto-encoder layers (pre-training only).
    ///
    /// The shared auto-encoder runs **once** over the property-stacked
    /// matrix (`(m+n)·batch x N`); per-property codes are recovered with row
    /// slices, and the stacked reconstruction MSE equals the mean of the
    /// per-property MSEs because all blocks have identical size. The pass
    /// allocates nothing once the graph's arena is warm.
    pub fn forward(
        &self,
        config: &BellamyConfig,
        g: &mut Graph<'_>,
        batch: &BatchTensors,
        dropout: Option<(f64, &mut StdRng)>,
    ) -> ForwardOut {
        let (drop_p, rng) = match dropout {
            Some((p, rng)) => (p, Some(rng)),
            None => (0.0, None),
        };
        let alpha_dropout = AlphaDropout::new(drop_p);

        // Scale-out branch: e = f(sx).
        let sx = g.input_ref(&batch.sx);
        let f_hidden = self.f1.forward(g, sx);
        let e = self.f2.forward(g, f_hidden);

        // Property branch: the shared auto-encoder over all properties at
        // once.
        let mut rng = rng;
        let p_node = g.input_ref(&batch.props);
        let mut enc_hidden = self.g1.forward(g, p_node);
        if let Some(r) = rng.as_deref_mut() {
            enc_hidden = alpha_dropout.forward(g, enc_hidden, true, r);
        }
        let codes = self.g2.forward(g, enc_hidden);
        let mut dec_hidden = self.h1.forward(g, codes);
        if let Some(r) = rng {
            dec_hidden = alpha_dropout.forward(g, dec_hidden, true, r);
        }
        let recon_out = self.h2.forward(g, dec_hidden);
        let recon = g.tape.mse_loss(recon_out, &batch.props);

        let pred = self.combine_and_regress(config, g, e, codes, batch.batch);
        ForwardOut { pred, recon }
    }

    /// `r = e ⊕ essential codes ⊕ mean(optional codes)` (Eq. 5/6) followed
    /// by the regression head `z`: codes are split back out of the stacked
    /// auto-encoder output by row blocks, and fixed stack buffers keep the
    /// hot path allocation-free.
    fn combine_and_regress(
        &self,
        config: &BellamyConfig,
        g: &mut Graph<'_>,
        e: NodeId,
        codes: NodeId,
        b: usize,
    ) -> NodeId {
        let m = config.essential_props;
        let n_props = m + config.optional_props;
        const MAX_PROPS: usize = 30;
        assert!(
            n_props <= MAX_PROPS,
            "more properties than the forward pass supports"
        );
        let mut parts = [0 as NodeId; MAX_PROPS + 2];
        parts[0] = e;
        for k in 0..m {
            parts[1 + k] = g.tape.slice_rows(codes, k * b, (k + 1) * b);
        }
        let mut optional = [0 as NodeId; MAX_PROPS];
        for (j, k) in (m..n_props).enumerate() {
            optional[j] = g.tape.slice_rows(codes, k * b, (k + 1) * b);
        }
        let optional_mean = g.tape.mean_of_nodes(&optional[..n_props - m]);
        parts[m + 1] = optional_mean;
        let r = g.tape.concat_cols(&parts[..m + 2]);

        let z_hidden = self.z1.forward(g, r);
        self.z2.forward(g, z_hidden)
    }

    /// The prediction-only forward pass: scale-out branch, encoder, code
    /// combination, and regression head — **no decoder and no
    /// reconstruction loss**, which exist only for the training objective.
    /// `sx` is `batch x 3` (normalized scale-out features) and `props` is
    /// the `(m + n)·batch x N` stacked property-encoding matrix. Every op
    /// here is row-independent, so batched and single-query results agree
    /// bit-for-bit. Allocation-free once the graph's arena is warm.
    pub fn forward_predict(
        &self,
        config: &BellamyConfig,
        g: &mut Graph<'_>,
        sx: &Matrix,
        props: &Matrix,
        batch: usize,
    ) -> NodeId {
        let sx = g.input_ref(sx);
        let f_hidden = self.f1.forward(g, sx);
        let e = self.f2.forward(g, f_hidden);

        let p_node = g.input_ref(props);
        let enc_hidden = self.g1.forward(g, p_node);
        let codes = self.g2.forward(g, enc_hidden);

        self.combine_and_regress(config, g, e, codes, batch)
    }

    /// Encoder-only pass over a `rows x N` property matrix, returning the
    /// `rows x M` code node (Fig. 4 / [`crate::Predictor::code_for`]).
    pub fn encode_code(&self, g: &mut Graph<'_>, props: &Matrix) -> NodeId {
        let p = g.input_ref(props);
        let hidden = self.g1.forward(g, p);
        self.g2.forward(g, hidden)
    }

    /// The seed implementation's forward pass: one auto-encoder application
    /// per property, fresh input clones, per-property reconstruction losses.
    /// Numerically equivalent to [`Layers::forward`] (up to floating-point
    /// association); kept as the baseline the train-step benchmark measures
    /// the batched zero-allocation path against.
    #[doc(hidden)]
    pub fn forward_legacy(
        &self,
        config: &BellamyConfig,
        g: &mut Graph<'_>,
        batch: &BatchTensors,
        dropout: Option<(f64, &mut StdRng)>,
    ) -> ForwardOut {
        let (drop_p, rng) = match dropout {
            Some((p, rng)) => (p, Some(rng)),
            None => (0.0, None),
        };
        let alpha_dropout = AlphaDropout::new(drop_p);

        let sx = g.input(batch.sx.clone());
        let f_hidden = self.f1.forward(g, sx);
        let e = self.f2.forward(g, f_hidden);

        let b = batch.batch;
        let n_dim = config.property_dim;
        let n_props = config.essential_props + config.optional_props;
        let prop_block = |k: usize| {
            Matrix::from_vec(
                b,
                n_dim,
                batch.props.as_slice()[k * b * n_dim..(k + 1) * b * n_dim].to_vec(),
            )
        };

        let mut codes = Vec::with_capacity(n_props);
        let mut recon_losses = Vec::with_capacity(n_props);
        let mut rng = rng;
        for k in 0..n_props {
            let p = prop_block(k);
            let p_node = g.input(p.clone());
            let mut enc_hidden = self.g1.forward(g, p_node);
            if let Some(r) = rng.as_deref_mut() {
                enc_hidden = alpha_dropout.forward(g, enc_hidden, true, r);
            }
            let code = self.g2.forward(g, enc_hidden);
            codes.push(code);

            let mut dec_hidden = self.h1.forward(g, code);
            if let Some(r) = rng.as_deref_mut() {
                dec_hidden = alpha_dropout.forward(g, dec_hidden, true, r);
            }
            let recon = self.h2.forward(g, dec_hidden);
            recon_losses.push(g.tape.mse_loss(recon, &p));
        }

        let m = config.essential_props;
        let mut parts = vec![e];
        parts.extend_from_slice(&codes[..m]);
        let optional_mean = g.tape.mean_of_nodes(&codes[m..]);
        parts.push(optional_mean);
        let r = g.tape.concat_cols(&parts);

        let z_hidden = self.z1.forward(g, r);
        let pred = self.z2.forward(g, z_hidden);

        let mut recon = recon_losses[0];
        for &l in &recon_losses[1..] {
            recon = g.tape.add(recon, l);
        }
        let recon = g.tape.scale(recon, 1.0 / recon_losses.len() as f64);

        ForwardOut { pred, recon }
    }
}

/// The Bellamy trainer handle (see the crate docs for the architecture
/// diagram and [`ModelState`] for the serving half of the split).
pub struct Bellamy {
    config: BellamyConfig,
    params: ParamSet,
    layers: Layers,
    encoder: PropertyEncoder,
    /// Fitted on first training; `None` means the model has never seen data.
    scaler: Option<MinMaxScaler>,
    /// Targets are divided by this during training and multiplied back at
    /// inference (1.0 when `config.scale_targets` is off).
    target_scale: f64,
    /// Mutation counter: bumped by every path that can change what a
    /// snapshot would contain, so [`Bellamy::snapshot`] knows when its
    /// cached `Arc` is still current (copy-on-write publishing).
    version: AtomicU64,
    /// The last published snapshot, keyed by the version it was taken at.
    snapshot_cache: Mutex<Option<(u64, Arc<ModelState>)>>,
}

impl Bellamy {
    /// Creates a freshly-initialized model.
    pub fn new(config: BellamyConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let layers = Layers::new(&mut params, &config, &mut rng);
        let encoder = PropertyEncoder::new(config.property_dim);
        Self {
            config,
            params,
            layers,
            encoder,
            scaler: None,
            target_scale: 1.0,
            version: AtomicU64::new(0),
            snapshot_cache: Mutex::new(None),
        }
    }

    /// Reconstructs a mutable trainer handle from a published snapshot —
    /// the "recall" direction of the model-reuse workflow: take a shared
    /// immutable state and derive a private handle to fine-tune. The
    /// handle's parameters are a bit-identical copy; the snapshot is never
    /// affected by anything done to the handle.
    pub fn from_state(state: &ModelState) -> Self {
        Self {
            config: state.config().clone(),
            params: state.params().clone(),
            layers: state.layers().clone(),
            encoder: state.encoder().clone(),
            scaler: Some(state.scaler().clone()),
            target_scale: state.target_scale(),
            version: AtomicU64::new(0),
            snapshot_cache: Mutex::new(None),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &BellamyConfig {
        &self.config
    }

    /// Marks the handle mutated: the next [`Bellamy::snapshot`] call must
    /// rebuild instead of serving the cached `Arc`.
    fn bump_version(&mut self) {
        *self.version.get_mut() += 1;
    }

    /// Mutable access to the parameters (training loops live in sibling
    /// modules). Taking this invalidates the cached snapshot.
    pub(crate) fn params_mut(&mut self) -> &mut ParamSet {
        self.bump_version();
        &mut self.params
    }

    /// Immutable access to the parameters.
    pub(crate) fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Whether the model has been fitted (scaler present).
    pub fn is_fitted(&self) -> bool {
        self.scaler.is_some()
    }

    /// Publishes the current fitted state as an immutable, `Arc`-shared
    /// [`ModelState`] for serving.
    ///
    /// Publishing is copy-on-write: the first call after a mutation clones
    /// the parameters and scalers once; further calls on an unchanged
    /// handle return the same `Arc` (a reference-count bump, no copy, no
    /// allocation). Training the handle afterwards never moves a snapshot
    /// that is already out.
    pub fn snapshot(&self) -> Result<Arc<ModelState>, PredictError> {
        if self.scaler.is_none() {
            return Err(PredictError::NotFitted);
        }
        let version = self.version.load(Ordering::Acquire);
        let mut cached = self.snapshot_cache.lock();
        if let Some((v, state)) = cached.as_ref() {
            if *v == version {
                return Ok(Arc::clone(state));
            }
        }
        let state = Arc::new(self.build_state()?);
        *cached = Some((version, Arc::clone(&state)));
        Ok(state)
    }

    /// The fitted state, or `None` when the model has never been fitted —
    /// the question the old API answered with a documented panic.
    pub fn fitted(&self) -> Option<Arc<ModelState>> {
        self.snapshot().ok()
    }

    /// Builds a fresh (uncached, un-shared) state — the hub uses this to
    /// attach lineage before publishing.
    pub(crate) fn build_state(&self) -> Result<ModelState, PredictError> {
        let scaler = self.scaler.clone().ok_or(PredictError::NotFitted)?;
        Ok(ModelState::new(
            self.config.clone(),
            self.layers.clone(),
            self.params.clone(),
            self.encoder.clone(),
            scaler,
            self.target_scale,
        ))
    }

    /// The target scale (1.0 until fitted or when scaling is disabled).
    pub fn target_scale(&self) -> f64 {
        self.target_scale
    }

    /// Fits the scale-out scaler and target scale on training samples.
    /// Called by pre-training always, and by fine-tuning only when the model
    /// has never been fitted (the paper reuses pre-training bounds at
    /// fine-tuning time).
    pub(crate) fn fit_normalization(&mut self, samples: &[TrainingSample]) {
        assert!(
            !samples.is_empty(),
            "cannot fit normalization on no samples"
        );
        self.bump_version();
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| scale_out_features(s.scale_out).to_vec())
            .collect();
        self.scaler = Some(MinMaxScaler::fit(&rows));
        self.target_scale = if self.config.scale_targets {
            let mean = samples.iter().map(|s| s.runtime_s).sum::<f64>() / samples.len() as f64;
            mean.max(1e-9)
        } else {
            1.0
        };
    }

    /// Encodes samples with the fitted scaler.
    ///
    /// # Panics
    /// Panics if the model has not been fitted.
    pub(crate) fn encode_samples(&self, samples: &[TrainingSample]) -> Vec<EncodedSample> {
        let scaler = self
            .scaler
            .as_ref()
            .expect("model must be fitted before encoding");
        samples
            .iter()
            .map(|s| {
                let sx = scaler.transform(&scale_out_features(s.scale_out));
                let props = self.encode_property_vectors(&s.props);
                EncodedSample {
                    sx: [sx[0], sx[1], sx[2]],
                    props,
                    target_s: s.runtime_s,
                }
            })
            .collect()
    }

    /// Encodes the `m` essential + `n` optional properties, padding or
    /// truncating to the configured counts (limited knowledge is allowed —
    /// §III-C): any missing slot, essential or optional, becomes a zero
    /// vector. [`crate::Predictor`]'s batch assembly mirrors this rule
    /// exactly — keep them in lockstep or batched and encoded predictions
    /// drift apart.
    fn encode_property_vectors(&self, props: &ContextProperties) -> Vec<Vec<f64>> {
        let n_dim = self.config.property_dim;
        let mut out = Vec::with_capacity(self.config.essential_props + self.config.optional_props);
        for i in 0..self.config.essential_props {
            match props.essential.get(i) {
                Some(p) => out.push(self.encoder.encode(p)),
                None => out.push(vec![0.0; n_dim]),
            }
        }
        for i in 0..self.config.optional_props {
            match props.optional.get(i) {
                Some(p) => out.push(self.encoder.encode(p)),
                None => out.push(vec![0.0; n_dim]),
            }
        }
        out
    }

    /// Assembles a batch from encoded samples (gathered by `indices`).
    pub(crate) fn make_batch(&self, encoded: &[EncodedSample], indices: &[usize]) -> BatchTensors {
        let mut out = BatchTensors::empty();
        let mut pool = BufferPool::new();
        self.make_batch_into(encoded, indices, &mut out, &mut pool);
        out
    }

    /// Refills `out` from encoded samples (gathered by `indices`), reusing
    /// its matrices when the batch size is unchanged and recycling their
    /// storage through `pool` otherwise — allocation-free once every batch
    /// size has been seen.
    pub(crate) fn make_batch_into(
        &self,
        encoded: &[EncodedSample],
        indices: &[usize],
        out: &mut BatchTensors,
        pool: &mut BufferPool,
    ) {
        assert!(!indices.is_empty(), "empty batch");
        let b = indices.len();
        let n_dim = self.config.property_dim;
        let n_props = self.config.essential_props + self.config.optional_props;
        if out.sx.shape() != (b, 3) || out.props.shape() != (n_props * b, n_dim) {
            let stale = std::mem::replace(out, BatchTensors::empty());
            pool.put_matrix(stale.sx);
            pool.put_matrix(stale.props);
            pool.put_matrix(stale.targets_scaled);
            out.sx = pool.take_matrix(b, 3);
            out.props = pool.take_matrix(n_props * b, n_dim);
            out.targets_scaled = pool.take_matrix(b, 1);
        }
        out.batch = b;
        for (i, &src) in indices.iter().enumerate() {
            let e = &encoded[src];
            out.sx.row_mut(i).copy_from_slice(&e.sx);
            out.targets_scaled[(i, 0)] = e.target_s / self.target_scale;
        }
        for k in 0..n_props {
            for (i, &src) in indices.iter().enumerate() {
                out.props
                    .row_mut(k * b + i)
                    .copy_from_slice(&encoded[src].props[k]);
            }
        }
    }

    /// Training forward pass (see [`Layers::forward`]).
    pub(crate) fn forward(
        &self,
        g: &mut Graph<'_>,
        batch: &BatchTensors,
        dropout: Option<(f64, &mut StdRng)>,
    ) -> ForwardOut {
        self.layers.forward(&self.config, g, batch, dropout)
    }

    /// Prediction-only forward pass (see [`Layers::forward_predict`]).
    pub(crate) fn forward_predict(
        &self,
        g: &mut Graph<'_>,
        sx: &Matrix,
        props: &Matrix,
        batch: usize,
    ) -> NodeId {
        self.layers
            .forward_predict(&self.config, g, sx, props, batch)
    }

    /// Seed-style forward pass (see [`Layers::forward_legacy`]).
    #[doc(hidden)]
    pub(crate) fn forward_legacy(
        &self,
        g: &mut Graph<'_>,
        batch: &BatchTensors,
        dropout: Option<(f64, &mut StdRng)>,
    ) -> ForwardOut {
        self.layers.forward_legacy(&self.config, g, batch, dropout)
    }

    /// Predicts the runtime (seconds) for a scale-out in a described
    /// context, or [`PredictError::NotFitted`] for a model that has never
    /// been fitted or loaded.
    ///
    /// A convenience over `self.snapshot()?.predict(..)`: for repeated
    /// queries, snapshot once and predict through the [`ModelState`] (which
    /// is also what can be shared across threads). The call is
    /// allocation-free once the snapshot cache and this thread's predictor
    /// arena are warm; for many queries at once, prefer
    /// [`crate::Predictor::predict_batch`] / [`crate::Predictor::predict_sweep`].
    pub fn predict(&self, scale_out: f64, props: &ContextProperties) -> Result<f64, PredictError> {
        Ok(self.snapshot()?.predict(scale_out, props))
    }

    /// The latent code (length `M`) the auto-encoder assigns to one property
    /// — the vectors visualized in Fig. 4 — or [`PredictError::NotFitted`]
    /// for a model that has never been fitted or loaded.
    pub fn code_for(&self, property: &PropertyValue) -> Result<Vec<f64>, PredictError> {
        Ok(self.snapshot()?.code_for(property))
    }

    /// The seed implementation's prediction path, kept verbatim as the
    /// baseline the `predict` benchmark measures the batched predictor
    /// against: clone the properties into a dummy training sample, encode,
    /// assemble a one-row batch, build a fresh graph, and run the full
    /// training forward (per-property auto-encoder passes, decoder and
    /// reconstruction included) on libm scalar math.
    #[doc(hidden)]
    pub fn predict_reference(&self, scale_out: f64, props: &ContextProperties) -> f64 {
        let sample = TrainingSample {
            scale_out,
            runtime_s: 0.0,
            props: props.clone(),
        };
        let encoded = self.encode_samples(std::slice::from_ref(&sample));
        let batch = self.make_batch(&encoded, &[0]);
        let mut graph = Graph::new(&self.params);
        graph.tape.set_reference_scalars(true);
        let out = self.forward_legacy(&mut graph, &batch, None);
        graph.value(out.pred)[(0, 0)] * self.target_scale
    }

    /// Freezes/unfreezes a component by prefix (`"f."`, `"g."`, `"h."`,
    /// `"z."`). Returns the number of affected parameters.
    pub fn set_component_trainable(&mut self, prefix: &str, trainable: bool) -> usize {
        self.bump_version();
        self.params.set_trainable_by_prefix(prefix, trainable)
    }

    /// Re-initializes a component (used by the reset reuse strategies).
    pub fn reinit_component(&mut self, prefix: &str, seed: u64) -> usize {
        self.bump_version();
        let init = self.config.init;
        let mut rng = StdRng::seed_from_u64(seed);
        self.params.reinit_by_prefix(prefix, init, &mut rng)
    }

    /// Serializes the model (weights + normalization state + dims).
    pub fn to_checkpoint(&self) -> Checkpoint {
        let meta = checkpoint_metadata(&self.config, self.scaler.as_ref(), self.target_scale);
        Checkpoint::new(self.params.clone(), meta)
    }

    /// Restores a model from a checkpoint produced by
    /// [`Bellamy::to_checkpoint`] (or [`ModelState::to_checkpoint`]).
    pub fn from_checkpoint(ck: &Checkpoint) -> Result<Self, CheckpointError> {
        let config = config_from_metadata(ck)?;
        let mut model = Bellamy::new(config, 0);
        model
            .params
            .load_values_from(&ck.params)
            .map_err(CheckpointError::Io)?;
        // Restore trainability flags too.
        for (_, p) in ck.params.iter() {
            if let Some(id) = model.params.find(&p.name) {
                model.params.get_mut(id).trainable = p.trainable;
            }
        }
        model.target_scale = target_scale_from_metadata(ck);
        model.scaler = scaler_from_metadata(ck);
        Ok(model)
    }

    /// Saves to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        self.to_checkpoint().save(path)
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, CheckpointError> {
        Self::from_checkpoint(&Checkpoint::load(path)?)
    }

    /// Deep-copies the model (fresh parameter storage).
    pub fn clone_model(&self) -> Self {
        Self::from_checkpoint(&self.to_checkpoint()).expect("round trip of a valid model")
    }
}

/// Reconstructs the [`BellamyConfig`] a checkpoint's metadata describes —
/// shared by [`Bellamy::from_checkpoint`] (fresh model + value copy) and
/// [`ModelState::from_checkpoint`] (zero-copy wiring over the decoded
/// parameters).
pub(crate) fn config_from_metadata(ck: &Checkpoint) -> Result<BellamyConfig, CheckpointError> {
    let get_dim = |key: &str| -> Result<usize, CheckpointError> {
        ck.metadata
            .get(key)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Io(format!("missing/invalid metadata {key}")))
    };
    Ok(BellamyConfig {
        property_dim: get_dim("property_dim")?,
        code_dim: get_dim("code_dim")?,
        hidden_dim: get_dim("hidden_dim")?,
        scale_out_hidden_dim: get_dim("scale_out_hidden_dim")?,
        scale_out_dim: get_dim("scale_out_dim")?,
        essential_props: get_dim("essential_props")?,
        optional_props: get_dim("optional_props")?,
        scale_targets: ck
            .metadata
            .get("scale_targets")
            .map(|v| v == "true")
            .unwrap_or(true),
        huber_delta: ck
            .metadata
            .get("huber_delta")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0),
        // Older checkpoints (pre-PR 4) carry no init entry; they were
        // all written by He-initialized default configs. A *present but
        // unrecognized* value is a different situation — substituting a
        // default there would silently change reset-strategy redraws —
        // so it is rejected instead.
        init: match ck.metadata.get("init") {
            None => BellamyConfig::default().init,
            Some(v) => parse_init(v).ok_or_else(|| {
                CheckpointError::Io(format!("unrecognized init scheme in checkpoint: {v}"))
            })?,
        },
    })
}

/// Parses the fitted scale-out scaler from checkpoint metadata, if present.
pub(crate) fn scaler_from_metadata(ck: &Checkpoint) -> Option<MinMaxScaler> {
    match (
        ck.metadata.get("scaler_mins"),
        ck.metadata.get("scaler_maxs"),
    ) {
        (Some(mins), Some(maxs)) => Some(MinMaxScaler::from_bounds(
            parse_floats(mins),
            parse_floats(maxs),
        )),
        _ => None,
    }
}

/// Parses the target scale from checkpoint metadata (1.0 when absent).
pub(crate) fn target_scale_from_metadata(ck: &Checkpoint) -> f64 {
    ck.metadata
        .get("target_scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Checkpoint metadata shared by the handle and [`ModelState`] (both
/// serialize to the same format, so either side can restore from either).
pub(crate) fn checkpoint_metadata(
    config: &BellamyConfig,
    scaler: Option<&MinMaxScaler>,
    target_scale: f64,
) -> BTreeMap<String, String> {
    let mut meta = BTreeMap::new();
    meta.insert("model".into(), "bellamy".into());
    meta.insert("property_dim".into(), config.property_dim.to_string());
    meta.insert("code_dim".into(), config.code_dim.to_string());
    meta.insert("hidden_dim".into(), config.hidden_dim.to_string());
    meta.insert(
        "scale_out_hidden_dim".into(),
        config.scale_out_hidden_dim.to_string(),
    );
    meta.insert("scale_out_dim".into(), config.scale_out_dim.to_string());
    meta.insert("essential_props".into(), config.essential_props.to_string());
    meta.insert("optional_props".into(), config.optional_props.to_string());
    meta.insert("scale_targets".into(), config.scale_targets.to_string());
    meta.insert("huber_delta".into(), config.huber_delta.to_string());
    meta.insert("init".into(), format!("{:?}", config.init));
    meta.insert("target_scale".into(), format!("{target_scale:e}"));
    if let Some(s) = scaler {
        meta.insert("scaler_mins".into(), join_floats(s.mins()));
        meta.insert("scaler_maxs".into(), join_floats(s.maxs()));
    }
    meta
}

/// Inverse of the `{:?}` rendering `checkpoint_metadata` writes. The reset
/// reuse strategies re-draw components with `config.init`, so losing it on
/// reload would silently change `partial-reset`/`full-reset` trajectories
/// for non-default configurations.
fn parse_init(s: &str) -> Option<bellamy_nn::Init> {
    match s {
        "HeNormal" => Some(bellamy_nn::Init::HeNormal),
        "LecunNormal" => Some(bellamy_nn::Init::LecunNormal),
        "XavierNormal" => Some(bellamy_nn::Init::XavierNormal),
        "Zeros" => Some(bellamy_nn::Init::Zeros),
        _ => None,
    }
}

fn join_floats(v: &[f64]) -> String {
    v.iter()
        .map(|x| format!("{x:e}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_floats(s: &str) -> Vec<f64> {
    s.split(',').filter_map(|t| t.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::context_properties;
    use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};

    fn fitted_model() -> (Bellamy, Vec<TrainingSample>) {
        let ds = generate_c3o(&GeneratorConfig::default());
        let ctx = ds.contexts_for(Algorithm::Sgd)[0];
        let runs = ds.runs_for_context(ctx.id);
        let samples = crate::features::samples_from_runs(&ds, &runs);
        let mut model = Bellamy::new(BellamyConfig::default(), 7);
        model.fit_normalization(&samples);
        (model, samples)
    }

    #[test]
    fn parameter_inventory_matches_architecture() {
        let model = Bellamy::new(BellamyConfig::default(), 0);
        let p = model.params();
        // f: (3x16 + 16) + (16x8 + 8); g: 40x8 + 8x4; h: 4x8 + 8x40;
        // z: (28x8 + 8) + (8x1 + 1).
        let expected = (3 * 16 + 16)
            + (16 * 8 + 8)
            + (40 * 8)
            + (8 * 4)
            + (4 * 8)
            + (8 * 40)
            + (28 * 8 + 8)
            + (8 + 1);
        assert_eq!(p.num_scalars(), expected);
        // Auto-encoder has no biases.
        assert!(p.find("g.l1.bias").is_none());
        assert!(p.find("h.l2.bias").is_none());
        assert!(p.find("f.l1.bias").is_some());
        assert!(p.find("z.l2.bias").is_some());
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let (model, samples) = fitted_model();
        let encoded = model.encode_samples(&samples);
        let batch = model.make_batch(&encoded, &[0, 1, 2, 3]);
        let mut graph = Graph::new(model.params());
        let out = model.forward(&mut graph, &batch, None);
        assert_eq!(graph.value(out.pred).shape(), (4, 1));
        assert_eq!(graph.value(out.recon).shape(), (1, 1));
        assert!(graph.value(out.pred).all_finite());
        assert!(graph.value(out.recon)[(0, 0)] >= 0.0);
    }

    #[test]
    fn predict_is_deterministic_and_finite() {
        let (model, samples) = fitted_model();
        let p1 = model.predict(6.0, &samples[0].props).unwrap();
        let p2 = model.predict(6.0, &samples[0].props).unwrap();
        assert_eq!(p1, p2);
        assert!(p1.is_finite());
    }

    #[test]
    fn untrained_model_reports_not_fitted() {
        let model = Bellamy::new(BellamyConfig::default(), 0);
        let ds = generate_c3o(&GeneratorConfig::default());
        let props = context_properties(&ds.contexts[0]);
        assert_eq!(model.predict(4.0, &props), Err(PredictError::NotFitted));
        assert_eq!(
            model.code_for(&PropertyValue::text("m4.2xlarge")),
            Err(PredictError::NotFitted)
        );
        assert!(model.fitted().is_none());
        assert!(model.snapshot().is_err());
        assert!(PredictError::NotFitted.to_string().contains("not fitted"));
    }

    #[test]
    fn snapshot_is_copy_on_write() {
        let (mut model, samples) = fitted_model();
        let s1 = model.snapshot().unwrap();
        let s2 = model.snapshot().unwrap();
        assert!(
            Arc::ptr_eq(&s1, &s2),
            "unchanged handle must republish the same Arc"
        );
        let before = s1.predict(4.0, &samples[0].props);

        // Mutating the handle must not move the published snapshot, and the
        // next snapshot must be a fresh one.
        model.reinit_component("z.", 99);
        let s3 = model.snapshot().unwrap();
        assert!(!Arc::ptr_eq(&s1, &s3), "mutation must invalidate the cache");
        assert_eq!(
            before,
            s1.predict(4.0, &samples[0].props),
            "published snapshots are immutable"
        );
        assert_ne!(before, s3.predict(4.0, &samples[0].props));
    }

    #[test]
    fn from_state_round_trip_is_bit_identical_and_independent() {
        let (model, samples) = fitted_model();
        let state = model.snapshot().unwrap();
        let mut handle = Bellamy::from_state(&state);
        assert_eq!(
            handle.params().values_fingerprint(),
            model.params().values_fingerprint(),
            "recalled handle must carry bit-identical weights"
        );
        let a = state.predict(6.0, &samples[0].props);
        let b = handle.predict(6.0, &samples[0].props).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        // Mutating the handle must not disturb the state it came from.
        handle.reinit_component("z.", 1);
        assert_eq!(a.to_bits(), state.predict(6.0, &samples[0].props).to_bits());
    }

    #[test]
    fn checkpoint_round_trip_preserves_predictions() {
        let (model, samples) = fitted_model();
        let ck = model.to_checkpoint();
        let restored = Bellamy::from_checkpoint(&ck).unwrap();
        for s in samples.iter().take(3) {
            let a = model.predict(s.scale_out, &s.props).unwrap();
            let b = restored.predict(s.scale_out, &s.props).unwrap();
            assert!(
                (a - b).abs() < 1e-12,
                "prediction drift after reload: {a} vs {b}"
            );
        }
        assert_eq!(restored.target_scale(), model.target_scale());
    }

    #[test]
    fn checkpoint_round_trip_preserves_init_scheme() {
        // The reset reuse strategies re-draw components with config.init;
        // a reload that silently fell back to the default init would change
        // partial-reset/full-reset trajectories for non-default configs.
        let ds = generate_c3o(&GeneratorConfig::default());
        let ctx = ds.contexts_for(Algorithm::Sgd)[0];
        let samples = crate::features::samples_from_runs(&ds, &ds.runs_for_context(ctx.id));
        let mut model = Bellamy::new(
            BellamyConfig {
                init: bellamy_nn::Init::LecunNormal,
                ..BellamyConfig::default()
            },
            7,
        );
        model.fit_normalization(&samples);
        let mut restored = Bellamy::from_checkpoint(&model.to_checkpoint()).unwrap();
        assert_eq!(restored.config().init, bellamy_nn::Init::LecunNormal);
        // Reinit draws the same values on both sides — same scheme, same
        // seed, same shapes.
        model.reinit_component("z.", 3);
        restored.reinit_component("z.", 3);
        assert_eq!(
            model.params().values_fingerprint(),
            restored.params().values_fingerprint(),
            "reinit after reload must follow the original init scheme"
        );
    }

    #[test]
    fn clone_model_is_independent() {
        let (mut model, samples) = fitted_model();
        let copy = model.clone_model();
        let before = copy.predict(4.0, &samples[0].props).unwrap();
        // Mutate the original; the copy must not move.
        model.reinit_component("z.", 99);
        let after = copy.predict(4.0, &samples[0].props).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn codes_distinguish_contexts() {
        let (model, _) = fitted_model();
        let a = model.code_for(&PropertyValue::text("m4.2xlarge")).unwrap();
        let b = model.code_for(&PropertyValue::text("r4.2xlarge")).unwrap();
        assert_eq!(a.len(), 4);
        let diff: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-9, "distinct properties must get distinct codes");
    }

    #[test]
    fn freeze_and_reinit_components() {
        let (mut model, _) = fitted_model();
        assert_eq!(model.set_component_trainable("g.", false), 2);
        assert_eq!(model.set_component_trainable("f.", false), 4);
        assert_eq!(model.reinit_component("z.", 5), 4);
    }

    #[test]
    fn missing_optional_properties_fall_back() {
        let (model, samples) = fitted_model();
        let mut props = samples[0].props.clone();
        props.optional.clear();
        // Must not panic; zero vectors stand in.
        let p = model.predict(4.0, &props).unwrap();
        assert!(p.is_finite());
    }
}
