//! The Bellamy model: parameters, forward pass, prediction, persistence.

use crate::config::BellamyConfig;
use crate::features::{scale_out_features, ContextProperties, TrainingSample};
use bellamy_autograd::{Activation, NodeId};
use bellamy_encoding::{MinMaxScaler, PropertyEncoder, PropertyValue};
use bellamy_linalg::{BufferPool, Matrix};
use bellamy_nn::{AlphaDropout, Checkpoint, CheckpointError, Graph, Linear, ParamSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A sample with all encodings precomputed (encoding is deterministic, so it
/// is done once per sample, not once per epoch).
#[derive(Debug, Clone)]
pub(crate) struct EncodedSample {
    /// Normalized scale-out features (after the min-max scaler).
    pub sx: [f64; 3],
    /// One `N`-dim vector per property position (`m` essential then `n`
    /// optional).
    pub props: Vec<Vec<f64>>,
    /// Raw runtime in seconds.
    pub target_s: f64,
}

/// A batch of encoded samples as matrices ready for the graph.
///
/// Property encodings are stacked into **one** `(m + n)·batch x N` matrix
/// (rows `[k·batch, (k+1)·batch)` hold property `k` for the whole batch), so
/// the shared auto-encoder runs once over all properties instead of once per
/// property — fewer, taller matmuls and a fraction of the tape nodes.
/// The struct is reusable: [`Bellamy::make_batch_into`] refills it in place.
pub(crate) struct BatchTensors {
    /// `batch x 3` normalized scale-out features.
    pub sx: Matrix,
    /// `(m + n)·batch x N` property encodings, stacked by property.
    pub props: Matrix,
    /// `batch x 1` scaled targets.
    pub targets_scaled: Matrix,
    /// Rows per property block.
    pub batch: usize,
}

impl BatchTensors {
    /// An empty shell to be filled by [`Bellamy::make_batch_into`].
    pub fn empty() -> Self {
        Self {
            sx: Matrix::zeros(0, 0),
            props: Matrix::zeros(0, 0),
            targets_scaled: Matrix::zeros(0, 0),
            batch: 0,
        }
    }
}

/// Output node handles from one forward pass.
pub(crate) struct ForwardOut {
    /// `batch x 1` prediction in scaled-target units.
    pub pred: NodeId,
    /// Mean auto-encoder reconstruction MSE across all properties.
    pub recon: NodeId,
}

/// The Bellamy model (see the crate docs for the architecture diagram).
pub struct Bellamy {
    config: BellamyConfig,
    params: ParamSet,
    f1: Linear,
    f2: Linear,
    g1: Linear,
    g2: Linear,
    h1: Linear,
    h2: Linear,
    z1: Linear,
    z2: Linear,
    encoder: PropertyEncoder,
    /// Fitted on first training; `None` means the model has never seen data.
    scaler: Option<MinMaxScaler>,
    /// Targets are divided by this during training and multiplied back at
    /// inference (1.0 when `config.scale_targets` is off).
    target_scale: f64,
}

impl Bellamy {
    /// Creates a freshly-initialized model.
    pub fn new(config: BellamyConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let init = config.init;
        let n = config.property_dim;
        let m = config.code_dim;
        let hid = config.hidden_dim;
        let fh = config.scale_out_hidden_dim;
        let f_out = config.scale_out_dim;
        let r_dim = config.combined_dim();

        // §IV-A: every linear layer is followed by an activation — SELU
        // everywhere except the decoder output (tanh). The auto-encoder
        // waives additive biases.
        let f1 = Linear::new(
            &mut params,
            "f.l1",
            3,
            fh,
            true,
            Activation::Selu,
            init,
            &mut rng,
        );
        let f2 = Linear::new(
            &mut params,
            "f.l2",
            fh,
            f_out,
            true,
            Activation::Selu,
            init,
            &mut rng,
        );
        let g1 = Linear::new(
            &mut params,
            "g.l1",
            n,
            hid,
            false,
            Activation::Selu,
            init,
            &mut rng,
        );
        let g2 = Linear::new(
            &mut params,
            "g.l2",
            hid,
            m,
            false,
            Activation::Selu,
            init,
            &mut rng,
        );
        let h1 = Linear::new(
            &mut params,
            "h.l1",
            m,
            hid,
            false,
            Activation::Selu,
            init,
            &mut rng,
        );
        let h2 = Linear::new(
            &mut params,
            "h.l2",
            hid,
            n,
            false,
            Activation::Tanh,
            init,
            &mut rng,
        );
        let z1 = Linear::new(
            &mut params,
            "z.l1",
            r_dim,
            hid,
            true,
            Activation::Selu,
            init,
            &mut rng,
        );
        let z2 = Linear::new(
            &mut params,
            "z.l2",
            hid,
            1,
            true,
            Activation::Selu,
            init,
            &mut rng,
        );

        Self {
            config,
            params,
            f1,
            f2,
            g1,
            g2,
            h1,
            h2,
            z1,
            z2,
            encoder: PropertyEncoder::new(n),
            scaler: None,
            target_scale: 1.0,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &BellamyConfig {
        &self.config
    }

    /// Mutable access to the parameters (training loops live in sibling
    /// modules).
    pub(crate) fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Immutable access to the parameters.
    pub(crate) fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Whether the model has been fitted (scaler present).
    pub fn is_fitted(&self) -> bool {
        self.scaler.is_some()
    }

    /// The fitted scale-out scaler.
    ///
    /// # Panics
    /// Panics if the model has not been fitted or loaded.
    pub(crate) fn scaler_ref(&self) -> &MinMaxScaler {
        self.scaler
            .as_ref()
            .expect("model must be fitted before predicting")
    }

    /// The property encoder.
    pub(crate) fn encoder_ref(&self) -> &PropertyEncoder {
        &self.encoder
    }

    /// The target scale (1.0 until fitted or when scaling is disabled).
    pub fn target_scale(&self) -> f64 {
        self.target_scale
    }

    /// Fits the scale-out scaler and target scale on training samples.
    /// Called by pre-training always, and by fine-tuning only when the model
    /// has never been fitted (the paper reuses pre-training bounds at
    /// fine-tuning time).
    pub(crate) fn fit_normalization(&mut self, samples: &[TrainingSample]) {
        assert!(
            !samples.is_empty(),
            "cannot fit normalization on no samples"
        );
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| scale_out_features(s.scale_out).to_vec())
            .collect();
        self.scaler = Some(MinMaxScaler::fit(&rows));
        self.target_scale = if self.config.scale_targets {
            let mean = samples.iter().map(|s| s.runtime_s).sum::<f64>() / samples.len() as f64;
            mean.max(1e-9)
        } else {
            1.0
        };
    }

    /// Encodes samples with the fitted scaler.
    ///
    /// # Panics
    /// Panics if the model has not been fitted.
    pub(crate) fn encode_samples(&self, samples: &[TrainingSample]) -> Vec<EncodedSample> {
        let scaler = self
            .scaler
            .as_ref()
            .expect("model must be fitted before encoding");
        samples
            .iter()
            .map(|s| {
                let sx = scaler.transform(&scale_out_features(s.scale_out));
                let props = self.encode_property_vectors(&s.props);
                EncodedSample {
                    sx: [sx[0], sx[1], sx[2]],
                    props,
                    target_s: s.runtime_s,
                }
            })
            .collect()
    }

    /// Encodes the `m` essential + `n` optional properties, padding or
    /// truncating to the configured counts (limited knowledge is allowed —
    /// §III-C): any missing slot, essential or optional, becomes a zero
    /// vector. [`crate::Predictor`]'s batch assembly mirrors this rule
    /// exactly — keep them in lockstep or batched and encoded predictions
    /// drift apart.
    fn encode_property_vectors(&self, props: &ContextProperties) -> Vec<Vec<f64>> {
        let n_dim = self.config.property_dim;
        let mut out = Vec::with_capacity(self.config.essential_props + self.config.optional_props);
        for i in 0..self.config.essential_props {
            match props.essential.get(i) {
                Some(p) => out.push(self.encoder.encode(p)),
                None => out.push(vec![0.0; n_dim]),
            }
        }
        for i in 0..self.config.optional_props {
            match props.optional.get(i) {
                Some(p) => out.push(self.encoder.encode(p)),
                None => out.push(vec![0.0; n_dim]),
            }
        }
        out
    }

    /// Assembles a batch from encoded samples (gathered by `indices`).
    pub(crate) fn make_batch(&self, encoded: &[EncodedSample], indices: &[usize]) -> BatchTensors {
        let mut out = BatchTensors::empty();
        let mut pool = BufferPool::new();
        self.make_batch_into(encoded, indices, &mut out, &mut pool);
        out
    }

    /// Refills `out` from encoded samples (gathered by `indices`), reusing
    /// its matrices when the batch size is unchanged and recycling their
    /// storage through `pool` otherwise — allocation-free once every batch
    /// size has been seen.
    pub(crate) fn make_batch_into(
        &self,
        encoded: &[EncodedSample],
        indices: &[usize],
        out: &mut BatchTensors,
        pool: &mut BufferPool,
    ) {
        assert!(!indices.is_empty(), "empty batch");
        let b = indices.len();
        let n_dim = self.config.property_dim;
        let n_props = self.config.essential_props + self.config.optional_props;
        if out.sx.shape() != (b, 3) || out.props.shape() != (n_props * b, n_dim) {
            let stale = std::mem::replace(out, BatchTensors::empty());
            pool.put_matrix(stale.sx);
            pool.put_matrix(stale.props);
            pool.put_matrix(stale.targets_scaled);
            out.sx = pool.take_matrix(b, 3);
            out.props = pool.take_matrix(n_props * b, n_dim);
            out.targets_scaled = pool.take_matrix(b, 1);
        }
        out.batch = b;
        for (i, &src) in indices.iter().enumerate() {
            let e = &encoded[src];
            out.sx.row_mut(i).copy_from_slice(&e.sx);
            out.targets_scaled[(i, 0)] = e.target_s / self.target_scale;
        }
        for k in 0..n_props {
            for (i, &src) in indices.iter().enumerate() {
                out.props
                    .row_mut(k * b + i)
                    .copy_from_slice(&encoded[src].props[k]);
            }
        }
    }

    /// Runs the forward pass for a batch. `dropout` applies alpha-dropout
    /// between the auto-encoder layers (pre-training only).
    ///
    /// The shared auto-encoder runs **once** over the property-stacked
    /// matrix (`(m+n)·batch x N`); per-property codes are recovered with row
    /// slices, and the stacked reconstruction MSE equals the mean of the
    /// per-property MSEs because all blocks have identical size. The pass
    /// allocates nothing once the graph's arena is warm.
    pub(crate) fn forward(
        &self,
        g: &mut Graph<'_>,
        batch: &BatchTensors,
        dropout: Option<(f64, &mut StdRng)>,
    ) -> ForwardOut {
        let (drop_p, rng) = match dropout {
            Some((p, rng)) => (p, Some(rng)),
            None => (0.0, None),
        };
        let alpha_dropout = AlphaDropout::new(drop_p);

        // Scale-out branch: e = f(sx).
        let sx = g.input_ref(&batch.sx);
        let f_hidden = self.f1.forward(g, sx);
        let e = self.f2.forward(g, f_hidden);

        // Property branch: the shared auto-encoder over all properties at
        // once.
        let mut rng = rng;
        let p_node = g.input_ref(&batch.props);
        let mut enc_hidden = self.g1.forward(g, p_node);
        if let Some(r) = rng.as_deref_mut() {
            enc_hidden = alpha_dropout.forward(g, enc_hidden, true, r);
        }
        let codes = self.g2.forward(g, enc_hidden);
        let mut dec_hidden = self.h1.forward(g, codes);
        if let Some(r) = rng {
            dec_hidden = alpha_dropout.forward(g, dec_hidden, true, r);
        }
        let recon_out = self.h2.forward(g, dec_hidden);
        let recon = g.tape.mse_loss(recon_out, &batch.props);

        let pred = self.combine_and_regress(g, e, codes, batch.batch);
        ForwardOut { pred, recon }
    }

    /// `r = e ⊕ essential codes ⊕ mean(optional codes)` (Eq. 5/6) followed
    /// by the regression head `z`: codes are split back out of the stacked
    /// auto-encoder output by row blocks, and fixed stack buffers keep the
    /// hot path allocation-free.
    fn combine_and_regress(&self, g: &mut Graph<'_>, e: NodeId, codes: NodeId, b: usize) -> NodeId {
        let m = self.config.essential_props;
        let n_props = m + self.config.optional_props;
        const MAX_PROPS: usize = 30;
        assert!(
            n_props <= MAX_PROPS,
            "more properties than the forward pass supports"
        );
        let mut parts = [0 as NodeId; MAX_PROPS + 2];
        parts[0] = e;
        for k in 0..m {
            parts[1 + k] = g.tape.slice_rows(codes, k * b, (k + 1) * b);
        }
        let mut optional = [0 as NodeId; MAX_PROPS];
        for (j, k) in (m..n_props).enumerate() {
            optional[j] = g.tape.slice_rows(codes, k * b, (k + 1) * b);
        }
        let optional_mean = g.tape.mean_of_nodes(&optional[..n_props - m]);
        parts[m + 1] = optional_mean;
        let r = g.tape.concat_cols(&parts[..m + 2]);

        let z_hidden = self.z1.forward(g, r);
        self.z2.forward(g, z_hidden)
    }

    /// The prediction-only forward pass: scale-out branch, encoder, code
    /// combination, and regression head — **no decoder and no
    /// reconstruction loss**, which exist only for the training objective.
    /// `sx` is `batch x 3` (normalized scale-out features) and `props` is
    /// the `(m + n)·batch x N` stacked property-encoding matrix. Every op
    /// here is row-independent, so batched and single-query results agree
    /// bit-for-bit. Allocation-free once the graph's arena is warm.
    pub(crate) fn forward_predict(
        &self,
        g: &mut Graph<'_>,
        sx: &Matrix,
        props: &Matrix,
        batch: usize,
    ) -> NodeId {
        let sx = g.input_ref(sx);
        let f_hidden = self.f1.forward(g, sx);
        let e = self.f2.forward(g, f_hidden);

        let p_node = g.input_ref(props);
        let enc_hidden = self.g1.forward(g, p_node);
        let codes = self.g2.forward(g, enc_hidden);

        self.combine_and_regress(g, e, codes, batch)
    }

    /// Encoder-only pass over a `rows x N` property matrix, returning the
    /// `rows x M` code node (Fig. 4 / [`crate::Predictor::code_for`]).
    pub(crate) fn encode_code(&self, g: &mut Graph<'_>, props: &Matrix) -> NodeId {
        let p = g.input_ref(props);
        let hidden = self.g1.forward(g, p);
        self.g2.forward(g, hidden)
    }

    /// The seed implementation's forward pass: one auto-encoder application
    /// per property, fresh input clones, per-property reconstruction losses.
    /// Numerically equivalent to [`Bellamy::forward`] (up to floating-point
    /// association); kept as the baseline the train-step benchmark measures
    /// the batched zero-allocation path against.
    #[doc(hidden)]
    pub(crate) fn forward_legacy(
        &self,
        g: &mut Graph<'_>,
        batch: &BatchTensors,
        dropout: Option<(f64, &mut StdRng)>,
    ) -> ForwardOut {
        let (drop_p, rng) = match dropout {
            Some((p, rng)) => (p, Some(rng)),
            None => (0.0, None),
        };
        let alpha_dropout = AlphaDropout::new(drop_p);

        let sx = g.input(batch.sx.clone());
        let f_hidden = self.f1.forward(g, sx);
        let e = self.f2.forward(g, f_hidden);

        let b = batch.batch;
        let n_dim = self.config.property_dim;
        let n_props = self.config.essential_props + self.config.optional_props;
        let prop_block = |k: usize| {
            Matrix::from_vec(
                b,
                n_dim,
                batch.props.as_slice()[k * b * n_dim..(k + 1) * b * n_dim].to_vec(),
            )
        };

        let mut codes = Vec::with_capacity(n_props);
        let mut recon_losses = Vec::with_capacity(n_props);
        let mut rng = rng;
        for k in 0..n_props {
            let p = prop_block(k);
            let p_node = g.input(p.clone());
            let mut enc_hidden = self.g1.forward(g, p_node);
            if let Some(r) = rng.as_deref_mut() {
                enc_hidden = alpha_dropout.forward(g, enc_hidden, true, r);
            }
            let code = self.g2.forward(g, enc_hidden);
            codes.push(code);

            let mut dec_hidden = self.h1.forward(g, code);
            if let Some(r) = rng.as_deref_mut() {
                dec_hidden = alpha_dropout.forward(g, dec_hidden, true, r);
            }
            let recon = self.h2.forward(g, dec_hidden);
            recon_losses.push(g.tape.mse_loss(recon, &p));
        }

        let m = self.config.essential_props;
        let mut parts = vec![e];
        parts.extend_from_slice(&codes[..m]);
        let optional_mean = g.tape.mean_of_nodes(&codes[m..]);
        parts.push(optional_mean);
        let r = g.tape.concat_cols(&parts);

        let z_hidden = self.z1.forward(g, r);
        let pred = self.z2.forward(g, z_hidden);

        let mut recon = recon_losses[0];
        for &l in &recon_losses[1..] {
            recon = g.tape.add(recon, l);
        }
        let recon = g.tape.scale(recon, 1.0 / recon_losses.len() as f64);

        ForwardOut { pred, recon }
    }

    /// Predicts the runtime (seconds) for a scale-out in a described context.
    ///
    /// A thin single-query wrapper over the batched [`crate::Predictor`]:
    /// the properties are borrowed (never cloned) and this thread's shared
    /// predictor arena is reused, so the call is allocation-free once warm.
    /// For many queries, prefer [`crate::Predictor::predict_batch`] /
    /// [`crate::Predictor::predict_sweep`], which also amortize the graph
    /// setup across the batch.
    ///
    /// # Panics
    /// Panics if the model has not been fitted or loaded.
    pub fn predict(&self, scale_out: f64, props: &ContextProperties) -> f64 {
        crate::Predictor::with_thread_local(|p| p.predict_one(self, scale_out, props))
    }

    /// Predicted runtimes (seconds) for every sample, in order.
    pub(crate) fn predict_encoded(&self, encoded: &[EncodedSample]) -> Vec<f64> {
        crate::Predictor::with_thread_local(|p| p.predict_encoded(self, encoded).to_vec())
    }

    /// The latent code (length `M`) the auto-encoder assigns to one property
    /// — the vectors visualized in Fig. 4.
    pub fn code_for(&self, property: &PropertyValue) -> Vec<f64> {
        crate::Predictor::with_thread_local(|p| p.code_for(self, property))
    }

    /// The seed implementation's prediction path, kept verbatim as the
    /// baseline the `predict` benchmark measures the batched predictor
    /// against: clone the properties into a dummy training sample, encode,
    /// assemble a one-row batch, build a fresh graph, and run the full
    /// training forward (per-property auto-encoder passes, decoder and
    /// reconstruction included) on libm scalar math.
    #[doc(hidden)]
    pub fn predict_reference(&self, scale_out: f64, props: &ContextProperties) -> f64 {
        let sample = TrainingSample {
            scale_out,
            runtime_s: 0.0,
            props: props.clone(),
        };
        let encoded = self.encode_samples(std::slice::from_ref(&sample));
        let batch = self.make_batch(&encoded, &[0]);
        let mut graph = Graph::new(&self.params);
        graph.tape.set_reference_scalars(true);
        let out = self.forward_legacy(&mut graph, &batch, None);
        graph.value(out.pred)[(0, 0)] * self.target_scale
    }

    /// Freezes/unfreezes a component by prefix (`"f."`, `"g."`, `"h."`,
    /// `"z."`). Returns the number of affected parameters.
    pub fn set_component_trainable(&mut self, prefix: &str, trainable: bool) -> usize {
        self.params.set_trainable_by_prefix(prefix, trainable)
    }

    /// Re-initializes a component (used by the reset reuse strategies).
    pub fn reinit_component(&mut self, prefix: &str, seed: u64) -> usize {
        let init = self.config.init;
        let mut rng = StdRng::seed_from_u64(seed);
        self.params.reinit_by_prefix(prefix, init, &mut rng)
    }

    /// Serializes the model (weights + normalization state + dims).
    pub fn to_checkpoint(&self) -> Checkpoint {
        let mut meta = BTreeMap::new();
        meta.insert("model".into(), "bellamy".into());
        meta.insert("property_dim".into(), self.config.property_dim.to_string());
        meta.insert("code_dim".into(), self.config.code_dim.to_string());
        meta.insert("hidden_dim".into(), self.config.hidden_dim.to_string());
        meta.insert(
            "scale_out_hidden_dim".into(),
            self.config.scale_out_hidden_dim.to_string(),
        );
        meta.insert(
            "scale_out_dim".into(),
            self.config.scale_out_dim.to_string(),
        );
        meta.insert(
            "essential_props".into(),
            self.config.essential_props.to_string(),
        );
        meta.insert(
            "optional_props".into(),
            self.config.optional_props.to_string(),
        );
        meta.insert(
            "scale_targets".into(),
            self.config.scale_targets.to_string(),
        );
        meta.insert("huber_delta".into(), self.config.huber_delta.to_string());
        meta.insert("target_scale".into(), format!("{:e}", self.target_scale));
        if let Some(s) = &self.scaler {
            meta.insert("scaler_mins".into(), join_floats(s.mins()));
            meta.insert("scaler_maxs".into(), join_floats(s.maxs()));
        }
        Checkpoint::new(self.params.clone(), meta)
    }

    /// Restores a model from a checkpoint produced by
    /// [`Bellamy::to_checkpoint`].
    pub fn from_checkpoint(ck: &Checkpoint) -> Result<Self, CheckpointError> {
        let get_dim = |key: &str| -> Result<usize, CheckpointError> {
            ck.metadata
                .get(key)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CheckpointError::Io(format!("missing/invalid metadata {key}")))
        };
        let config = BellamyConfig {
            property_dim: get_dim("property_dim")?,
            code_dim: get_dim("code_dim")?,
            hidden_dim: get_dim("hidden_dim")?,
            scale_out_hidden_dim: get_dim("scale_out_hidden_dim")?,
            scale_out_dim: get_dim("scale_out_dim")?,
            essential_props: get_dim("essential_props")?,
            optional_props: get_dim("optional_props")?,
            scale_targets: ck
                .metadata
                .get("scale_targets")
                .map(|v| v == "true")
                .unwrap_or(true),
            huber_delta: ck
                .metadata
                .get("huber_delta")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.0),
            ..BellamyConfig::default()
        };

        let mut model = Bellamy::new(config, 0);
        model
            .params
            .load_values_from(&ck.params)
            .map_err(CheckpointError::Io)?;
        // Restore trainability flags too.
        for (_, p) in ck.params.iter() {
            if let Some(id) = model.params.find(&p.name) {
                model.params.get_mut(id).trainable = p.trainable;
            }
        }
        model.target_scale = ck
            .metadata
            .get("target_scale")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        if let (Some(mins), Some(maxs)) = (
            ck.metadata.get("scaler_mins"),
            ck.metadata.get("scaler_maxs"),
        ) {
            model.scaler = Some(MinMaxScaler::from_bounds(
                parse_floats(mins),
                parse_floats(maxs),
            ));
        }
        Ok(model)
    }

    /// Saves to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        self.to_checkpoint().save(path)
    }

    /// Loads from a file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, CheckpointError> {
        Self::from_checkpoint(&Checkpoint::load(path)?)
    }

    /// Deep-copies the model (fresh parameter storage).
    pub fn clone_model(&self) -> Self {
        Self::from_checkpoint(&self.to_checkpoint()).expect("round trip of a valid model")
    }
}

fn join_floats(v: &[f64]) -> String {
    v.iter()
        .map(|x| format!("{x:e}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_floats(s: &str) -> Vec<f64> {
    s.split(',').filter_map(|t| t.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::context_properties;
    use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};

    fn fitted_model() -> (Bellamy, Vec<TrainingSample>) {
        let ds = generate_c3o(&GeneratorConfig::default());
        let ctx = ds.contexts_for(Algorithm::Sgd)[0];
        let runs = ds.runs_for_context(ctx.id);
        let samples = crate::features::samples_from_runs(&ds, &runs);
        let mut model = Bellamy::new(BellamyConfig::default(), 7);
        model.fit_normalization(&samples);
        (model, samples)
    }

    #[test]
    fn parameter_inventory_matches_architecture() {
        let model = Bellamy::new(BellamyConfig::default(), 0);
        let p = model.params();
        // f: (3x16 + 16) + (16x8 + 8); g: 40x8 + 8x4; h: 4x8 + 8x40;
        // z: (28x8 + 8) + (8x1 + 1).
        let expected = (3 * 16 + 16)
            + (16 * 8 + 8)
            + (40 * 8)
            + (8 * 4)
            + (4 * 8)
            + (8 * 40)
            + (28 * 8 + 8)
            + (8 + 1);
        assert_eq!(p.num_scalars(), expected);
        // Auto-encoder has no biases.
        assert!(p.find("g.l1.bias").is_none());
        assert!(p.find("h.l2.bias").is_none());
        assert!(p.find("f.l1.bias").is_some());
        assert!(p.find("z.l2.bias").is_some());
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let (model, samples) = fitted_model();
        let encoded = model.encode_samples(&samples);
        let batch = model.make_batch(&encoded, &[0, 1, 2, 3]);
        let mut graph = Graph::new(model.params());
        let out = model.forward(&mut graph, &batch, None);
        assert_eq!(graph.value(out.pred).shape(), (4, 1));
        assert_eq!(graph.value(out.recon).shape(), (1, 1));
        assert!(graph.value(out.pred).all_finite());
        assert!(graph.value(out.recon)[(0, 0)] >= 0.0);
    }

    #[test]
    fn predict_is_deterministic_and_finite() {
        let (model, samples) = fitted_model();
        let p1 = model.predict(6.0, &samples[0].props);
        let p2 = model.predict(6.0, &samples[0].props);
        assert_eq!(p1, p2);
        assert!(p1.is_finite());
    }

    #[test]
    fn untrained_model_panics_on_predict() {
        let model = Bellamy::new(BellamyConfig::default(), 0);
        let ds = generate_c3o(&GeneratorConfig::default());
        let props = context_properties(&ds.contexts[0]);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.predict(4.0, &props)));
        assert!(result.is_err(), "unfitted model must refuse to predict");
    }

    #[test]
    fn checkpoint_round_trip_preserves_predictions() {
        let (model, samples) = fitted_model();
        let ck = model.to_checkpoint();
        let restored = Bellamy::from_checkpoint(&ck).unwrap();
        for s in samples.iter().take(3) {
            let a = model.predict(s.scale_out, &s.props);
            let b = restored.predict(s.scale_out, &s.props);
            assert!(
                (a - b).abs() < 1e-12,
                "prediction drift after reload: {a} vs {b}"
            );
        }
        assert_eq!(restored.target_scale(), model.target_scale());
    }

    #[test]
    fn clone_model_is_independent() {
        let (mut model, samples) = fitted_model();
        let copy = model.clone_model();
        let before = copy.predict(4.0, &samples[0].props);
        // Mutate the original; the copy must not move.
        model.reinit_component("z.", 99);
        let after = copy.predict(4.0, &samples[0].props);
        assert_eq!(before, after);
    }

    #[test]
    fn codes_distinguish_contexts() {
        let (model, _) = fitted_model();
        let a = model.code_for(&PropertyValue::text("m4.2xlarge"));
        let b = model.code_for(&PropertyValue::text("r4.2xlarge"));
        assert_eq!(a.len(), 4);
        let diff: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-9, "distinct properties must get distinct codes");
    }

    #[test]
    fn freeze_and_reinit_components() {
        let (mut model, _) = fitted_model();
        assert_eq!(model.set_component_trainable("g.", false), 2);
        assert_eq!(model.set_component_trainable("f.", false), 4);
        assert_eq!(model.reinit_component("z.", 5), 4);
    }

    #[test]
    fn missing_optional_properties_fall_back() {
        let (model, samples) = fitted_model();
        let mut props = samples[0].props.clone();
        props.optional.clear();
        // Must not panic; zero vectors stand in.
        let p = model.predict(4.0, &props);
        assert!(p.is_finite());
    }
}
