//! Fine-tuning and model reuse (paper §III-A, Table I "Fine-Tuning",
//! §IV-C2 reuse strategies).
//!
//! Fine-tuning loads a pre-trained model, freezes most components, and
//! continues training for a short period on the few samples from the
//! concrete context: Huber loss only, no dropout, cyclical learning rate in
//! `(1e-2, 1e-3)`, early stop at MAE ≤ 5 s or 1000 stale epochs, best state
//! kept for inference. Only `z` trains at first; `f` unfreezes after a
//! number of epochs that depends on the sample count. The auto-encoder is
//! never updated.

use crate::config::FinetuneConfig;
use crate::features::TrainingSample;
use crate::model::Bellamy;
use bellamy_nn::{
    metrics, AnyOptimizer, CyclicalAnnealingLr, EarlyStopping, GradWorkspace, Graph, GraphArena,
    LrSchedule, StopDecision,
};
use std::time::Instant;

/// How an existing model's weights are reused in a new context or
/// environment (§IV-C2). `PartialUnfreeze` is also the default ad hoc
/// fine-tuning mode of §IV-C1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseStrategy {
    /// Adapt `z` immediately, unfreeze `f` later (the paper's default).
    PartialUnfreeze,
    /// Adapt `f` and `z` together from the start.
    FullUnfreeze,
    /// Re-initialize `z`, then fine-tune as in `PartialUnfreeze` (escape a
    /// previously found local minimum).
    PartialReset,
    /// Re-initialize both `f` and `z` and train them from the start (derive
    /// a new understanding of the scale-out behaviour).
    FullReset,
}

impl ReuseStrategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [ReuseStrategy; 4] = [
        ReuseStrategy::PartialUnfreeze,
        ReuseStrategy::FullUnfreeze,
        ReuseStrategy::PartialReset,
        ReuseStrategy::FullReset,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            ReuseStrategy::PartialUnfreeze => "partial-unfreeze",
            ReuseStrategy::FullUnfreeze => "full-unfreeze",
            ReuseStrategy::PartialReset => "partial-reset",
            ReuseStrategy::FullReset => "full-reset",
        }
    }

    fn resets_z(self) -> bool {
        matches!(self, ReuseStrategy::PartialReset | ReuseStrategy::FullReset)
    }

    fn resets_f(self) -> bool {
        matches!(self, ReuseStrategy::FullReset)
    }

    fn f_trainable_from_start(self) -> bool {
        matches!(self, ReuseStrategy::FullUnfreeze | ReuseStrategy::FullReset)
    }
}

/// Summary of one fine-tuning run.
#[derive(Debug, Clone)]
pub struct FinetuneReport {
    /// Epochs actually trained (≤ the configured maximum).
    pub epochs: usize,
    /// Best training MAE (seconds) seen; the restored state achieves it.
    pub best_mae_s: f64,
    /// Wall-clock time including pipeline preparation.
    pub elapsed_s: f64,
    /// Whether the MAE target or patience stopped training before the cap.
    pub stopped_early: bool,
}

/// Fine-tunes a (usually pre-trained) model on samples from one concrete
/// context.
pub fn fine_tune(
    model: &mut Bellamy,
    samples: &[TrainingSample],
    cfg: &FinetuneConfig,
    strategy: ReuseStrategy,
    seed: u64,
) -> FinetuneReport {
    assert!(!samples.is_empty(), "fine-tuning needs at least one sample");
    let start = Instant::now();

    // A model that was never pre-trained (the `local` variant) fits its own
    // normalization; a pre-trained model keeps its training-time bounds.
    if !model.is_fitted() {
        model.fit_normalization(samples);
    }

    // Reuse strategy: resets first, then the freeze plan.
    if strategy.resets_z() {
        model.reinit_component("z.", seed ^ 0x5A5A);
    }
    if strategy.resets_f() {
        model.reinit_component("f.", seed ^ 0xF0F0);
    }
    model.set_component_trainable("g.", false);
    model.set_component_trainable("h.", false);
    model.set_component_trainable("z.", true);
    let mut f_frozen = !strategy.f_trainable_from_start();
    model.set_component_trainable("f.", !f_frozen);
    let unfreeze_epoch = cfg.unfreeze_epoch(samples.len());

    let encoded = model.encode_samples(samples);
    let indices: Vec<usize> = (0..encoded.len()).collect();
    let targets: Vec<f64> = samples.iter().map(|s| s.runtime_s).collect();
    let delta = model.config().huber_delta;

    let schedule = CyclicalAnnealingLr::new(cfg.max_lr, cfg.min_lr, cfg.lr_period);
    let mut opt = AnyOptimizer::build(cfg.optimizer, model.params(), cfg.max_lr, cfg.weight_decay);
    let mut stopper = EarlyStopping::new(Some(cfg.target_mae), cfg.patience);
    let mut best_state = model.params().clone();
    let mut best_mae = f64::INFINITY;
    let mut epochs = 0;
    let mut stopped_early = false;

    // Fine-tuning is full-batch: assemble the tensors once, then replay the
    // graph through a recycled arena and gradient workspace every epoch —
    // the steady-state epoch allocates nothing.
    let batch = model.make_batch(&encoded, &indices);
    let mut arena = GraphArena::default();
    let mut ws = GradWorkspace::new();
    let mut preds = vec![0.0; encoded.len()];

    for epoch in 0..cfg.max_epochs {
        if f_frozen && epoch >= unfreeze_epoch {
            model.set_component_trainable("f.", true);
            f_frozen = false;
        }
        opt.set_lr(schedule.lr_at(epoch));

        let mut graph = Graph::from_arena(arena, model.params());
        // Fine-tuning minimizes the Huber objective only (no reconstruction
        // term, Table I), so the prediction-only forward applies: the
        // decoder would be dead weight in both the forward pass and the
        // tape.
        let pred = model.forward_predict(&mut graph, &batch.sx, &batch.props, batch.batch);
        let loss = graph.tape.huber_loss(pred, &batch.targets_scaled, delta);

        // Track the *current* parameters' error before stepping, so the
        // snapshot corresponds to the measured MAE — this is the validation
        // scoring the early-stopping rule consumes, read straight from the
        // training graph's prediction node.
        let scale = model.target_scale();
        for (i, p) in preds.iter_mut().enumerate() {
            *p = graph.value(pred)[(i, 0)] * scale;
        }
        let mae = metrics::mae(&preds, &targets);
        graph.backward_into(loss, &mut ws);
        arena = graph.into_arena();

        epochs = epoch + 1;
        match stopper.update(mae) {
            StopDecision::Improved => {
                best_mae = mae;
                best_state
                    .load_values_from(model.params())
                    .expect("snapshot shares the parameter layout");
            }
            StopDecision::Continue => {}
            StopDecision::Stop => {
                if mae < best_mae {
                    best_mae = mae;
                    best_state
                        .load_values_from(model.params())
                        .expect("snapshot shares the parameter layout");
                }
                stopped_early = true;
                break;
            }
        }

        opt.step(model.params_mut(), ws.map());
    }

    // Use the best state for inference (paper §IV-A).
    model
        .params_mut()
        .load_values_from(&best_state)
        .expect("snapshot shares the parameter layout");

    FinetuneReport {
        epochs,
        best_mae_s: best_mae,
        elapsed_s: start.elapsed().as_secs_f64(),
        stopped_early,
    }
}

/// Fits a fresh (never pre-trained) model on a single context — the paper's
/// `local` variant: no pre-training is possible and the auto-encoder is not
/// trained. Internally this is a [`ReuseStrategy::FullReset`]-style
/// fine-tuning of the freshly initialized model, training `f` and `z` from
/// the start.
pub fn fit_local(
    model: &mut Bellamy,
    samples: &[TrainingSample],
    cfg: &FinetuneConfig,
    seed: u64,
) -> FinetuneReport {
    assert!(!model.is_fitted(), "fit_local expects a fresh model");
    fine_tune(model, samples, cfg, ReuseStrategy::FullUnfreeze, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BellamyConfig, PretrainConfig};
    use crate::features::samples_from_runs;
    use crate::train::pretrain;
    use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};

    fn context_samples(algorithm: Algorithm, skip: usize) -> Vec<Vec<TrainingSample>> {
        let ds = generate_c3o(&GeneratorConfig::default());
        ds.contexts_for(algorithm)
            .into_iter()
            .skip(skip)
            .take(4)
            .map(|ctx| {
                let runs = ds.runs_for_context(ctx.id);
                samples_from_runs(&ds, &runs)
            })
            .collect()
    }

    fn quick_ft() -> FinetuneConfig {
        FinetuneConfig {
            max_epochs: 200,
            patience: 120,
            ..FinetuneConfig::default()
        }
    }

    #[test]
    fn local_fit_learns_a_single_context() {
        let ctxs = context_samples(Algorithm::Grep, 0);
        let samples = &ctxs[0];
        let mut model = Bellamy::new(BellamyConfig::default(), 21);
        let report = fit_local(&mut model, samples, &quick_ft(), 3);
        assert!(report.epochs > 0);
        assert!(report.best_mae_s.is_finite());
        // Grep curves are in the tens-to-hundreds of seconds; a fitted local
        // model should track training points to within ~20%.
        let targets: Vec<f64> = samples.iter().map(|s| s.runtime_s).collect();
        let mean_t = targets.iter().sum::<f64>() / targets.len() as f64;
        assert!(
            report.best_mae_s < 0.2 * mean_t,
            "local fit too weak: MAE {} vs mean runtime {mean_t}",
            report.best_mae_s
        );
    }

    #[test]
    fn finetune_adapts_pretrained_model_faster_than_local() {
        let ctxs = context_samples(Algorithm::Sgd, 0);
        // Pre-train on contexts 1..4, fine-tune on context 0.
        let pretrain_samples: Vec<TrainingSample> = ctxs[1..].iter().flatten().cloned().collect();
        let mut pre = Bellamy::new(BellamyConfig::default(), 5);
        pretrain(
            &mut pre,
            &pretrain_samples,
            &PretrainConfig {
                epochs: 120,
                ..PretrainConfig::default()
            },
            7,
        );

        // Few-shot: three points from the new context.
        let few: Vec<TrainingSample> = ctxs[0].iter().step_by(10).cloned().collect();
        assert!(few.len() >= 3);

        let mut tuned = pre.clone_model();
        let r_tuned = fine_tune(
            &mut tuned,
            &few,
            &quick_ft(),
            ReuseStrategy::PartialUnfreeze,
            1,
        );

        let mut local = Bellamy::new(BellamyConfig::default(), 5);
        let r_local = fit_local(&mut local, &few, &quick_ft(), 1);

        assert!(r_tuned.best_mae_s.is_finite() && r_local.best_mae_s.is_finite());
        // The pre-trained model must converge at least as fast (epochs) in
        // the typical case; allow slack for the small budgets used here.
        assert!(
            r_tuned.epochs <= r_local.epochs + 50,
            "pre-trained fine-tune took {} epochs vs local {}",
            r_tuned.epochs,
            r_local.epochs
        );
    }

    #[test]
    fn early_stop_on_target() {
        // Feed duplicated identical samples: the model can hit MAE <= target
        // quickly with a loose target.
        let ctxs = context_samples(Algorithm::Grep, 2);
        let samples = &ctxs[0];
        let mut model = Bellamy::new(BellamyConfig::default(), 2);
        let cfg = FinetuneConfig {
            max_epochs: 2000,
            target_mae: 1e9, // absurdly loose: stops at epoch 1
            ..FinetuneConfig::default()
        };
        let report = fit_local(&mut model, samples, &cfg, 0);
        assert!(report.stopped_early);
        assert_eq!(report.epochs, 1);
    }

    #[test]
    fn strategies_apply_resets_and_freezes() {
        let ctxs = context_samples(Algorithm::Sgd, 4);
        let samples: Vec<TrainingSample> = ctxs[0].iter().take(6).cloned().collect();
        let mut base = Bellamy::new(BellamyConfig::default(), 9);
        pretrain(
            &mut base,
            &ctxs[1],
            &PretrainConfig {
                epochs: 40,
                ..PretrainConfig::default()
            },
            1,
        );

        for strategy in ReuseStrategy::ALL {
            let mut m = base.clone_model();
            let before_pred = m.predict(6.0, &samples[0].props).unwrap();
            let report = fine_tune(
                &mut m,
                &samples,
                &FinetuneConfig {
                    max_epochs: 30,
                    ..FinetuneConfig::default()
                },
                strategy,
                3,
            );
            assert!(report.epochs > 0, "{}", strategy.name());
            let after_pred = m.predict(6.0, &samples[0].props).unwrap();
            assert!(after_pred.is_finite());
            // Any strategy must actually change the model.
            assert_ne!(before_pred, after_pred, "{}", strategy.name());
        }
    }

    #[test]
    fn autoencoder_is_never_updated() {
        let ctxs = context_samples(Algorithm::KMeans, 0);
        let mut model = Bellamy::new(BellamyConfig::default(), 13);
        let g_before = {
            let id = model.params().find("g.l1.weight").unwrap();
            model.params().get(id).value.clone()
        };
        fit_local(&mut model, &ctxs[0], &quick_ft(), 0);
        let g_after = {
            let id = model.params().find("g.l1.weight").unwrap();
            model.params().get(id).value.clone()
        };
        assert_eq!(
            g_before, g_after,
            "auto-encoder must stay frozen in fine-tuning"
        );
    }

    #[test]
    fn strategy_names_match_paper() {
        let names: Vec<&str> = ReuseStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "partial-unfreeze",
                "full-unfreeze",
                "partial-reset",
                "full-reset"
            ]
        );
    }
}
