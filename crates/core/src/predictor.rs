//! The batched, arena-backed inference subsystem.
//!
//! Bellamy's value proposition is cheap reuse: one pretrained model answers
//! *many* runtime queries per job submission — the §IV allocation search
//! evaluates every candidate scale-out, hyperparameter search scores whole
//! validation sets, and the evaluation harness multiplies both by hundreds
//! of splits. The seed implementation paid per query: a `ContextProperties`
//! clone, a fresh property encoding, a fresh batch assembly, a fresh
//! autograd graph — and it ran the auto-encoder's *decoder* although
//! predictions never use the reconstruction.
//!
//! A [`Predictor`] amortizes all of that:
//!
//! - **Graph arena** — one recycled [`GraphArena`]: the tape replays into
//!   retained node storage, so the forward pass allocates nothing once warm.
//! - **Shared encoding cache** — property encodings are deterministic, so
//!   they are computed once per distinct [`PropertyValue`] *per model* and
//!   served from the lock-sharded cache inside [`ModelState`] — one thread's
//!   warm-up benefits every thread serving the same snapshot.
//! - **Batch assembly** — the scale-out features and stacked property rows
//!   are written straight into two reusable matrices recycled through a
//!   capacity-keyed [`BufferPool`].
//! - **Prediction-only forward** — the forward pass skips the decoder and
//!   reconstruction loss entirely (they exist for the training objective
//!   only) and runs each linear layer as one fused matmul+bias+activation
//!   tape op.
//!
//! # Lifecycle and reuse rules
//!
//! A `Predictor` is a plain reusable workspace: it holds **no** model state,
//! so one instance can serve any number of models (methods take an
//! `&`[`ModelState`] explicitly). Reuse rules:
//!
//! - Keep one `Predictor` per thread and reuse it across calls — that is
//!   what makes the steady state allocation-free. [`ModelState::predict`]
//!   does this automatically through a thread-local instance.
//! - A `Predictor` is *not* `Sync`; give each worker thread its own (they
//!   are cheap when cold: all storage grows on demand). The `ModelState`
//!   *is* `Sync` — share one `Arc` across all workers.
//! - Batch sizes may vary freely between calls; each distinct shape is
//!   served from the buffer pool after it has been seen once.
//! - The shared encoding cache is capped
//!   ([`crate::state::ENCODE_CACHE_CAP`] distinct property values); on
//!   overflow a shard is cleared and re-warms — correctness is never
//!   affected, only the amortization.
//!
//! Batched and one-at-a-time predictions agree **bit-for-bit**: every op in
//! the prediction path (fused linears, row slicing, concatenation, code
//! averaging) is row-independent, so a query's result does not depend on
//! its batch neighbors. The checkpoint/round-trip and batching tests in
//! `crates/core/tests/predictor.rs` pin this down, and
//! `crates/core/tests/concurrency.rs` extends the guarantee across threads
//! hammering one shared snapshot.

use crate::features::{scale_out_features, ContextProperties};
use crate::model::EncodedSample;
use crate::state::ModelState;
use bellamy_encoding::PropertyValue;
use bellamy_linalg::{BufferPool, Matrix};
use bellamy_nn::{Graph, GraphArena};
use std::cell::RefCell;

/// One runtime query: a scale-out in a described context. `Copy`, and the
/// properties are *borrowed* — building a query never clones context state.
#[derive(Debug, Clone, Copy)]
pub struct PredictQuery<'a> {
    /// Horizontal scale-out (number of machines).
    pub scale_out: f64,
    /// Descriptive properties of the execution context.
    pub props: &'a ContextProperties,
}

/// Reusable, allocation-free-after-warm-up inference workspace. See the
/// module docs for the lifecycle.
pub struct Predictor {
    arena: GraphArena,
    pool: BufferPool,
    /// `batch x 3` normalized scale-out features.
    sx: Matrix,
    /// `(m + n)·batch x N` stacked property encodings.
    props: Matrix,
    /// Scratch row for `code_for`.
    code_input: Matrix,
    /// Output buffer returned by the `predict_*` methods.
    preds: Vec<f64>,
}

impl Default for Predictor {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static THREAD_PREDICTOR: RefCell<Predictor> = RefCell::new(Predictor::new());
}

impl Predictor {
    /// A cold predictor; every buffer grows on first use.
    pub fn new() -> Self {
        Self {
            arena: GraphArena::default(),
            pool: BufferPool::new(),
            sx: Matrix::zeros(0, 0),
            props: Matrix::zeros(0, 0),
            code_input: Matrix::zeros(0, 0),
            preds: Vec::new(),
        }
    }

    /// Runs `f` with this thread's shared predictor — the zero-setup path
    /// [`ModelState::predict`] and friends use so that even ad hoc single
    /// queries reuse a warm arena.
    ///
    /// # Panics
    /// Panics if `f` re-enters (calls another `with_thread_local`-based
    /// API); compute inside `f` with the provided instance instead.
    pub fn with_thread_local<R>(f: impl FnOnce(&mut Predictor) -> R) -> R {
        THREAD_PREDICTOR.with(|p| f(&mut p.borrow_mut()))
    }

    /// Predicted runtimes (seconds) for a batch of queries, in query order.
    /// The returned slice borrows the predictor's output buffer and is valid
    /// until the next call.
    pub fn predict_batch(&mut self, state: &ModelState, queries: &[PredictQuery<'_>]) -> &[f64] {
        let b = queries.len();
        if b == 0 {
            self.preds.clear();
            return &self.preds;
        }
        self.ensure_shapes(state, b);
        let scaler = state.scaler();
        for (i, q) in queries.iter().enumerate() {
            scaler.transform_into(&scale_out_features(q.scale_out), self.sx.row_mut(i));
        }
        let (m, n_opt) = (
            state.config().essential_props,
            state.config().optional_props,
        );
        for (i, q) in queries.iter().enumerate() {
            for k in 0..m + n_opt {
                // Mirror `Bellamy::encode_property_vectors`: missing slots
                // (limited context knowledge, §III-C) become zero rows.
                let slot = if k < m {
                    q.props.essential.get(k)
                } else {
                    q.props.optional.get(k - m)
                };
                Self::fill_prop_row(&mut self.props, k * b + i, state, slot);
            }
        }
        self.run_forward(state, b)
    }

    /// Predicted runtimes for one context swept over many scale-outs — the
    /// §IV allocation-search shape. The context's properties are encoded
    /// once (at most once per distinct property per model, via the shared
    /// cache) and replicated across the batch.
    pub fn predict_sweep(
        &mut self,
        state: &ModelState,
        props: &ContextProperties,
        scale_outs: &[f64],
    ) -> &[f64] {
        let b = scale_outs.len();
        if b == 0 {
            self.preds.clear();
            return &self.preds;
        }
        self.ensure_shapes(state, b);
        let scaler = state.scaler();
        for (i, &x) in scale_outs.iter().enumerate() {
            scaler.transform_into(&scale_out_features(x), self.sx.row_mut(i));
        }
        let (m, n_opt) = (
            state.config().essential_props,
            state.config().optional_props,
        );
        let n_dim = state.config().property_dim;
        for k in 0..m + n_opt {
            let slot = if k < m {
                props.essential.get(k)
            } else {
                props.optional.get(k - m)
            };
            // Encode the property once into the block's first row, then
            // replicate it down the block.
            Self::fill_prop_row(&mut self.props, k * b, state, slot);
            let data = self.props.as_mut_slice();
            let base = k * b * n_dim;
            for i in 1..b {
                data.copy_within(base..base + n_dim, base + i * n_dim);
            }
        }
        self.run_forward(state, b)
    }

    /// Single-query convenience over [`Predictor::predict_batch`].
    pub fn predict_one(
        &mut self,
        state: &ModelState,
        scale_out: f64,
        props: &ContextProperties,
    ) -> f64 {
        let q = PredictQuery { scale_out, props };
        self.predict_batch(state, std::slice::from_ref(&q))[0]
    }

    /// Predicted runtimes for pre-encoded samples (the training-internal
    /// path: validation scoring, training MAE).
    pub(crate) fn predict_encoded(
        &mut self,
        state: &ModelState,
        encoded: &[EncodedSample],
    ) -> &[f64] {
        let b = encoded.len();
        if b == 0 {
            self.preds.clear();
            return &self.preds;
        }
        self.ensure_shapes(state, b);
        for (i, e) in encoded.iter().enumerate() {
            self.sx.row_mut(i).copy_from_slice(&e.sx);
            for (k, p) in e.props.iter().enumerate() {
                self.props.row_mut(k * b + i).copy_from_slice(p);
            }
        }
        self.run_forward(state, b)
    }

    /// The latent code (length `M`) the auto-encoder assigns to one property
    /// (Fig. 4), computed through the shared arena and encoding cache.
    pub fn code_for(&mut self, state: &ModelState, property: &PropertyValue) -> Vec<f64> {
        let n_dim = state.config().property_dim;
        if self.code_input.shape() != (1, n_dim) {
            let stale = std::mem::replace(&mut self.code_input, Matrix::zeros(0, 0));
            self.pool.put_matrix(stale);
            self.code_input = self.pool.take_matrix(1, n_dim);
        }
        let code_input = &mut self.code_input;
        state.with_encoding(property, |enc| {
            code_input.row_mut(0).copy_from_slice(enc);
        });
        let arena = std::mem::take(&mut self.arena);
        let mut graph = Graph::from_arena(arena, state.params());
        let code = state.layers().encode_code(&mut graph, &self.code_input);
        let out = graph.value(code).row(0).to_vec();
        self.arena = graph.into_arena();
        out
    }

    /// Resizes the batch matrices for `b` queries, recycling storage through
    /// the pool (allocation-free once each batch size has been seen).
    fn ensure_shapes(&mut self, state: &ModelState, b: usize) {
        let n_dim = state.config().property_dim;
        let n_props = state.config().essential_props + state.config().optional_props;
        if self.sx.shape() != (b, 3) || self.props.shape() != (n_props * b, n_dim) {
            let stale_sx = std::mem::replace(&mut self.sx, Matrix::zeros(0, 0));
            let stale_props = std::mem::replace(&mut self.props, Matrix::zeros(0, 0));
            self.pool.put_matrix(stale_sx);
            self.pool.put_matrix(stale_props);
            self.sx = self.pool.take_matrix(b, 3);
            self.props = self.pool.take_matrix(n_props * b, n_dim);
        }
    }

    /// Writes the encoding of `slot` (or a zero row for a missing property)
    /// into `props` row `row`, through the model's shared cache.
    fn fill_prop_row(
        props: &mut Matrix,
        row: usize,
        state: &ModelState,
        slot: Option<&PropertyValue>,
    ) {
        match slot {
            Some(p) => state.with_encoding(p, |enc| {
                props.row_mut(row).copy_from_slice(enc);
            }),
            None => props.row_mut(row).fill(0.0),
        }
    }

    /// Runs the prediction-only forward pass over the filled batch matrices
    /// and copies the rescaled outputs into the result buffer.
    fn run_forward(&mut self, state: &ModelState, b: usize) -> &[f64] {
        // Batch-size distribution: every prediction entry point funnels
        // through here, so two `fetch_add`s per *batch* capture the whole
        // process (and stay off the per-row cost).
        let global = bellamy_telemetry::global();
        global.predict_batch_rows.record(b as u64);
        global.predict_queries.add(b as u64);
        let arena = std::mem::take(&mut self.arena);
        let mut graph = Graph::from_arena(arena, state.params());
        let pred =
            state
                .layers()
                .forward_predict(state.config(), &mut graph, &self.sx, &self.props, b);
        let scale = state.target_scale();
        let values = graph.value(pred);
        self.preds.clear();
        self.preds.reserve(b);
        for i in 0..b {
            self.preds.push(values[(i, 0)] * scale);
        }
        self.arena = graph.into_arena();
        &self.preds
    }
}
