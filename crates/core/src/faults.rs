//! Deterministic fault injection for the serving stack.
//!
//! Shared-infrastructure failures — slow or failing disks, corrupt
//! checkpoint bytes, panicking model code — are rare in tests and constant
//! in production. This module makes them *injectable on demand*: named
//! failpoints are compiled into the hub's disk probe/persist path, the
//! checkpoint decode step, and the micro-batcher's flush path, and tests
//! arm them with a [`FaultPlan`] to deterministically reproduce I/O errors,
//! corrupt reads, mid-batch panics, and artificial latency.
//!
//! The failpoints are compiled **always** (no test-only `cfg`, so release
//! stress runs exercise exactly the shipped code) but cost one relaxed-ish
//! atomic load per site while disarmed — the armed bookkeeping (a mutex,
//! hit counting, plan sequencing) lives behind that check and is never
//! touched in normal operation.
//!
//! ```no_run
//! use bellamy_core::faults::{self, Fault, FaultPlan};
//!
//! // Panic exactly one flush, then behave normally again.
//! let _armed = faults::SERVE_FLUSH.arm(FaultPlan::once(Fault::Panic));
//! // ... drive the service; the guard disarms the point when dropped.
//! ```
//!
//! Arming is process-global (the failpoints are statics), so tests that arm
//! faults must serialize among themselves — see `crates/core/tests/faults.rs`
//! for the pattern.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The site surfaces an injected I/O-style error ([`Injected::Error`]).
    Error,
    /// The site sees corrupted data ([`Injected::Corrupt`]); each site
    /// documents what "corrupt" means for it (e.g. garbage checkpoint
    /// bytes).
    Corrupt,
    /// The site panics (message `injected fault: <name>`); handled inside
    /// [`Failpoint::check`], so call sites need no panic plumbing.
    Panic,
    /// The site sleeps this long, then proceeds normally — artificial
    /// latency for overload and deadline tests.
    Delay(Duration),
}

/// The data-shaped faults a call site must interpret itself. `Panic` and
/// `Delay` never reach the caller — [`Failpoint::check`] executes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injected {
    /// Fail as if the underlying operation returned an I/O error.
    Error,
    /// Proceed with corrupted data.
    Corrupt,
}

/// When and how often an armed failpoint fires: let `skip` hits pass
/// untouched, then fire `times` hits, then disarm automatically.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// The fault to inject when firing.
    pub fault: Fault,
    /// Hits that pass through unharmed before the first firing.
    pub skip: u64,
    /// Firings before the point disarms itself (`u64::MAX` ≈ forever).
    pub times: u64,
}

impl FaultPlan {
    /// Fire on the next hit, once.
    pub fn once(fault: Fault) -> Self {
        Self {
            fault,
            skip: 0,
            times: 1,
        }
    }

    /// Fire on every hit until disarmed.
    pub fn always(fault: Fault) -> Self {
        Self {
            fault,
            skip: 0,
            times: u64::MAX,
        }
    }

    /// Fire `times` consecutive hits, then self-disarm.
    pub fn times(fault: Fault, times: u64) -> Self {
        Self {
            fault,
            skip: 0,
            times,
        }
    }

    /// Let the first `skip` hits pass before the first firing.
    pub fn after(mut self, skip: u64) -> Self {
        self.skip = skip;
        self
    }
}

struct PlanState {
    plan: FaultPlan,
    /// Hits observed since arming (fired or skipped).
    seen: u64,
}

/// One named injection site. Declare as a `static`; the only cost while
/// disarmed is a single atomic load in [`Failpoint::check`].
pub struct Failpoint {
    name: &'static str,
    /// 0 = disarmed — the fast-path check. Non-zero while a plan is live.
    armed: AtomicU64,
    /// Times the point actually fired (not merely checked) since process
    /// start; monotonic across re-arms so tests can diff around a window.
    fired: AtomicU64,
    plan: Mutex<Option<PlanState>>,
}

impl Failpoint {
    /// A disarmed failpoint named `name` (shown in injected panic messages
    /// and useful for debugging).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            armed: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            plan: Mutex::new(None),
        }
    }

    /// The site's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Arms the point with `plan`; the returned guard disarms it on drop,
    /// so a panicking test cannot leak an armed fault into its neighbors.
    /// Re-arming replaces any live plan.
    pub fn arm(&'static self, plan: FaultPlan) -> ArmedGuard {
        *self.plan.lock().expect("failpoint plan mutex") = Some(PlanState { plan, seen: 0 });
        self.armed.store(1, Ordering::Release);
        ArmedGuard(self)
    }

    /// Disarms the point immediately (the [`ArmedGuard`] does this on drop).
    pub fn disarm(&self) {
        self.armed.store(0, Ordering::Release);
        *self.plan.lock().expect("failpoint plan mutex") = None;
    }

    /// Times the point has fired since process start.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Acquire)
    }

    /// The injection hook: returns `None` (after executing `Panic`/`Delay`
    /// faults in place) or the data-shaped fault the site must act on.
    /// One atomic load when disarmed.
    #[inline]
    pub fn check(&self) -> Option<Injected> {
        if self.armed.load(Ordering::Acquire) == 0 {
            return None;
        }
        self.check_armed()
    }

    #[cold]
    fn check_armed(&self) -> Option<Injected> {
        let fault = {
            let mut guard = self.plan.lock().expect("failpoint plan mutex");
            let state = guard.as_mut()?;
            let seen = state.seen;
            state.seen += 1;
            if seen < state.plan.skip {
                return None;
            }
            let fault = state.plan.fault;
            let last_firing = state
                .plan
                .times
                .checked_add(state.plan.skip)
                .is_some_and(|end| seen + 1 >= end);
            if last_firing {
                *guard = None;
                self.armed.store(0, Ordering::Release);
            }
            fault
        };
        self.fired.fetch_add(1, Ordering::AcqRel);
        // Firings are rare by construction (tests and chaos drills), so the
        // structured event log gets one entry per firing — machine-readable
        // confirmation of which site saw which fault, in order.
        bellamy_telemetry::events().record(
            bellamy_telemetry::event_kind::FAULT_INJECTED,
            format!("failpoint `{}` fired: {fault:?}", self.name),
        );
        match fault {
            Fault::Error => Some(Injected::Error),
            Fault::Corrupt => Some(Injected::Corrupt),
            Fault::Panic => panic!("injected fault: {}", self.name),
            Fault::Delay(d) => {
                std::thread::sleep(d);
                None
            }
        }
    }
}

/// RAII disarm handle returned by [`Failpoint::arm`].
#[must_use = "dropping the guard disarms the failpoint immediately"]
pub struct ArmedGuard(&'static Failpoint);

impl ArmedGuard {
    /// The armed point (to read its fired counter mid-test).
    pub fn point(&self) -> &'static Failpoint {
        self.0
    }
}

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        self.0.disarm();
    }
}

/// Reading the checkpoint file during a hub disk recall. `Error`: the read
/// fails as transient I/O (retried with bounded backoff); `Corrupt`: the
/// read yields garbage bytes (drives the quarantine path); `Delay`: slow
/// disk.
pub static HUB_DISK_PROBE: Failpoint = Failpoint::new("hub.disk.probe");

/// Persisting a checkpoint in [`crate::hub::ModelHub::publish`]. `Error`:
/// the write fails; `Corrupt`: garbage bytes land on disk in place of the
/// checkpoint (a crash mid-write, as later recalls will find it).
pub static HUB_DISK_PERSIST: Failpoint = Failpoint::new("hub.disk.persist");

/// Decoding checkpoint bytes already read from disk. `Corrupt`: the decoder
/// sees mangled bytes; `Error`: decoding aborts with an I/O-style error
/// (not a corruption — no quarantine).
pub static CHECKPOINT_DECODE: Failpoint = Failpoint::new("checkpoint.decode");

/// The micro-batcher's flush (serving loop and assist path alike), hit once
/// per batch just before the forward pass. `Panic`: the forward pass
/// panics mid-batch; `Delay`: a slow model (overload/deadline tests).
/// `Error`/`Corrupt` are ignored at this site.
pub static SERVE_FLUSH: Failpoint = Failpoint::new("serve.flush");

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests use private points so they cannot race the product
    // failpoints used by concurrently running suites.
    static UNIT_A: Failpoint = Failpoint::new("unit.a");
    static UNIT_B: Failpoint = Failpoint::new("unit.b");
    static UNIT_PANIC: Failpoint = Failpoint::new("unit.panic");
    static UNIT_DELAY: Failpoint = Failpoint::new("unit.delay");

    #[test]
    fn disarmed_points_are_silent() {
        for _ in 0..1000 {
            assert_eq!(UNIT_A.check(), None);
        }
        assert_eq!(UNIT_A.fired(), 0);
    }

    #[test]
    fn skip_then_times_then_self_disarm() {
        let armed = UNIT_B.arm(FaultPlan::times(Fault::Error, 2).after(3));
        let got: Vec<Option<Injected>> = (0..8).map(|_| UNIT_B.check()).collect();
        assert_eq!(
            got,
            vec![
                None,
                None,
                None,
                Some(Injected::Error),
                Some(Injected::Error),
                None,
                None,
                None,
            ],
            "3 skips, 2 firings, then self-disarmed"
        );
        assert_eq!(armed.point().fired(), 2);
        drop(armed);
        assert_eq!(UNIT_B.check(), None);
    }

    #[test]
    fn guard_drop_disarms() {
        {
            let _armed = UNIT_A.arm(FaultPlan::always(Fault::Corrupt));
            assert_eq!(UNIT_A.check(), Some(Injected::Corrupt));
        }
        assert_eq!(UNIT_A.check(), None, "guard drop must disarm");
        UNIT_A.disarm();
    }

    #[test]
    fn panic_fault_panics_with_the_site_name() {
        let _armed = UNIT_PANIC.arm(FaultPlan::once(Fault::Panic));
        let err = std::panic::catch_unwind(|| UNIT_PANIC.check()).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("unit.panic"), "got panic message {msg:?}");
        // The once-plan is exhausted: the next hit passes.
        assert_eq!(UNIT_PANIC.check(), None);
    }

    #[test]
    fn delay_fault_sleeps_then_proceeds() {
        let _armed = UNIT_DELAY.arm(FaultPlan::once(Fault::Delay(Duration::from_millis(20))));
        let start = std::time::Instant::now();
        assert_eq!(UNIT_DELAY.check(), None, "delay proceeds normally");
        assert!(start.elapsed() >= Duration::from_millis(15));
        let start = std::time::Instant::now();
        assert_eq!(UNIT_DELAY.check(), None);
        assert!(
            start.elapsed() < Duration::from_millis(15),
            "exhausted plan must not sleep"
        );
    }
}
