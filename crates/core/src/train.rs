//! Pre-training (paper §III-A, Table I "Pre-Training").
//!
//! A general model is trained on all available historical executions of an
//! algorithm — across contexts — minimizing the joint objective
//! Huber(runtime) + MSE(reconstruction) with Adam, minibatches of 64, and
//! alpha-dropout inside the auto-encoder.
//!
//! # The zero-allocation, data-parallel step
//!
//! [`Pretrainer`] owns all per-step state: each of its gradient **shards**
//! keeps a reusable graph arena, gradient workspace, and batch tensors.
//! A step splits the minibatch into `shards` contiguous slices, fans the
//! forward/backward passes out over a persistent
//! [`bellamy_par::WorkTeam`], and reduces the per-shard gradient maps on
//! the coordinating thread in a **fixed binary-tree order** — so results
//! are bit-identical for any worker count, and deterministic run-to-run
//! for a fixed seed. After the first epoch warms the arenas and pools, a
//! step performs zero heap allocations (verified by the counting-allocator
//! test in `tests/zero_alloc.rs`).

use crate::config::PretrainConfig;
use crate::features::TrainingSample;
use crate::model::{BatchTensors, Bellamy, EncodedSample};
use bellamy_linalg::BufferPool;
use bellamy_nn::{metrics, Adam, AdamConfig, GradWorkspace, Graph, GraphArena};
use bellamy_par::WorkTeam;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::cell::UnsafeCell;
use std::time::Instant;

/// Summary of one pre-training run.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Epochs performed.
    pub epochs: usize,
    /// Joint loss of the final epoch (mean over batches).
    pub final_loss: f64,
    /// Training MAE in seconds after the final epoch.
    pub train_mae_s: f64,
    /// Wall-clock time.
    pub elapsed_s: f64,
    /// Number of training samples.
    pub n_samples: usize,
    /// True when training was cut short because the loss or the parameters
    /// went non-finite (e.g. a too-aggressive learning rate in a
    /// hyperparameter-search trial). `final_loss` and `train_mae_s` are NaN
    /// in that case, and the model's parameters are the last *finite* state:
    /// a poisoned gradient skips the update, and an update that itself
    /// overflows is rolled back from the pre-step snapshot.
    pub diverged: bool,
}

/// Everything one gradient shard reuses across steps.
struct Shard {
    arena: Option<GraphArena>,
    ws: GradWorkspace,
    batch: BatchTensors,
    pool: BufferPool,
    /// This step's shard loss (weighted into the batch loss).
    loss: f64,
    /// This step's sample count (the reduction weight numerator).
    rows: usize,
}

impl Shard {
    fn new() -> Self {
        Self {
            arena: Some(GraphArena::default()),
            ws: GradWorkspace::new(),
            batch: BatchTensors::empty(),
            pool: BufferPool::new(),
            loss: 0.0,
            rows: 0,
        }
    }
}

/// Shard cells handed out to the work team; each index is claimed by
/// exactly one worker per step, giving it exclusive access.
struct ShardCells(Vec<UnsafeCell<Shard>>);

// SAFETY: `WorkTeam::run` hands every index to exactly one worker, so no
// cell is ever accessed from two threads at once.
unsafe impl Sync for ShardCells {}

/// A reusable pre-training driver: owns the encoded dataset, the shard
/// workspaces, the optimizer, and the worker team. See the module docs.
pub struct Pretrainer {
    encoded: Vec<EncodedSample>,
    indices: Vec<usize>,
    shards: ShardCells,
    team: WorkTeam,
    opt: Adam,
    rng: StdRng,
    seed: u64,
    cfg: PretrainConfig,
    epoch: usize,
    dropout: f64,
    diverged: bool,
    /// Pre-step parameter snapshot: the rollback target when an optimizer
    /// update overflows to non-finite values (a ~13 KB in-place copy per
    /// step, <1% of a step; keeps the "parameters are always finite"
    /// invariant of [`Pretrainer::diverged`]).
    snapshot: bellamy_nn::ParamSet,
}

impl Pretrainer {
    /// Fits the model's normalization on `samples`, encodes them once, and
    /// prepares shard workspaces and the worker team.
    pub fn new(
        model: &mut Bellamy,
        samples: &[TrainingSample],
        cfg: &PretrainConfig,
        seed: u64,
    ) -> Self {
        assert!(
            !samples.is_empty(),
            "pre-training needs at least one sample"
        );
        assert!(cfg.batch_size > 0, "batch size must be positive");
        model.fit_normalization(samples);
        let encoded = model.encode_samples(samples);
        let n_shards = cfg.effective_shards().max(1);
        let workers = cfg.effective_workers().clamp(1, n_shards);
        Self {
            indices: (0..encoded.len()).collect(),
            encoded,
            shards: ShardCells(
                (0..n_shards)
                    .map(|_| UnsafeCell::new(Shard::new()))
                    .collect(),
            ),
            team: WorkTeam::new(workers),
            opt: Adam::new(
                model.params(),
                AdamConfig::with_lr(cfg.lr).weight_decay(cfg.weight_decay),
            ),
            rng: StdRng::seed_from_u64(seed),
            seed,
            cfg: *cfg,
            epoch: 0,
            dropout: cfg.dropout,
            diverged: false,
            snapshot: model.params().clone(),
        }
    }

    /// Number of encoded training samples.
    pub fn n_samples(&self) -> usize {
        self.encoded.len()
    }

    /// True when a step produced a non-finite loss or would have left
    /// non-finite parameters. Once set, further epochs are no-ops returning
    /// NaN: the forward pass must never run on poisoned parameters (it
    /// would only spread the NaN — and trip the tape's finiteness
    /// debug-assertions).
    pub fn diverged(&self) -> bool {
        self.diverged
    }

    /// Runs one epoch (shuffle + minibatch steps); returns the mean joint
    /// loss over the epoch's batches. Allocation-free once warm.
    pub fn run_epoch(&mut self, model: &mut Bellamy) -> f64 {
        self.epoch_impl(model, false)
    }

    /// The seed implementation's epoch — fresh graph and allocating
    /// backward per step, sequential, per-property auto-encoder passes.
    /// Kept as the benchmark baseline for the zero-allocation path.
    #[doc(hidden)]
    pub fn run_epoch_legacy(&mut self, model: &mut Bellamy) -> f64 {
        self.epoch_impl(model, true)
    }

    fn epoch_impl(&mut self, model: &mut Bellamy, legacy: bool) -> f64 {
        if self.diverged {
            return f64::NAN;
        }
        shuffle(&mut self.indices, &mut self.rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        let n = self.indices.len();
        let mut start = 0usize;
        let mut step = 0usize;
        while start < n {
            let end = (start + self.cfg.batch_size).min(n);
            // Borrow the chunk without holding `self` (step_* take &mut).
            let (chunk_start, chunk_end) = (start, end);
            let step_started = Instant::now();
            epoch_loss += if legacy {
                self.step_legacy(model, chunk_start, chunk_end, step)
            } else {
                self.step(model, chunk_start, chunk_end, step)
            };
            // Step timing: two fetch_adds per minibatch, allocation-free.
            let global = bellamy_telemetry::global();
            global.train_steps.inc();
            global
                .train_step_nanos
                .record_duration(step_started.elapsed());
            if self.diverged {
                self.epoch += 1;
                return f64::NAN;
            }
            batches += 1;
            start = end;
            step += 1;
        }
        self.epoch += 1;
        epoch_loss / batches as f64
    }

    /// One data-parallel minibatch step over `indices[chunk_start..chunk_end]`.
    fn step(
        &mut self,
        model: &mut Bellamy,
        chunk_start: usize,
        chunk_end: usize,
        step: usize,
    ) -> f64 {
        let chunk = &self.indices[chunk_start..chunk_end];
        let b = chunk.len();
        let n_shards = self.shards.0.len().min(b);
        let per_shard = b.div_ceil(n_shards);
        let delta = model.config().huber_delta;
        let dropout = self.dropout;
        let (epoch, seed) = (self.epoch, self.seed);

        {
            // Fan the shard passes out; exclusive access per claimed index.
            let model: &Bellamy = model;
            let encoded = &self.encoded;
            let shards = &self.shards;
            self.team.run(n_shards, move |s| {
                // A short tail batch can leave trailing shards without rows
                // (lo past the end), hence the saturating width.
                let lo = (s * per_shard).min(b);
                let hi = ((s + 1) * per_shard).min(b);
                // SAFETY: each shard index is claimed exactly once per step.
                let shard = unsafe { &mut *shards.0[s].get() };
                shard.rows = hi - lo;
                if lo >= hi {
                    shard.loss = 0.0;
                    return;
                }
                model.make_batch_into(encoded, &chunk[lo..hi], &mut shard.batch, &mut shard.pool);
                let mut graph =
                    Graph::from_arena(shard.arena.take().expect("arena parked"), model.params());
                // Dropout masks draw from a per-(epoch, step, shard) stream,
                // so the trajectory is independent of scheduling.
                let mut rng = StdRng::seed_from_u64(mix_seed(seed, epoch, step, s));
                let dropout = (dropout > 0.0).then_some((dropout, &mut rng));
                let out = model.forward(&mut graph, &shard.batch, dropout);
                let huber = graph
                    .tape
                    .huber_loss(out.pred, &shard.batch.targets_scaled, delta);
                let loss = graph.tape.add(huber, out.recon);
                shard.loss = graph.value(loss)[(0, 0)];
                graph.backward_into(loss, &mut shard.ws);
                shard.arena = Some(graph.into_arena());
            });
        }

        // Deterministic reduction: weight each shard's mean-based gradients
        // by its share of the batch, then sum in a fixed binary tree. The
        // same tree runs for any worker count, so results are bit-identical
        // to the sequential path.
        let active = &mut self.shards.0[..n_shards];
        let mut batch_loss = 0.0;
        for cell in active.iter_mut() {
            let shard = cell.get_mut();
            let w = shard.rows as f64 / b as f64;
            shard.ws.map_mut().scale(w);
            batch_loss += w * shard.loss;
        }
        let mut stride = 1;
        while stride < n_shards {
            let mut i = 0;
            while i + stride < n_shards {
                let (left, right) = active.split_at_mut(i + stride);
                let dst = left[i].get_mut();
                let src = right[0].get_mut();
                dst.ws.map_mut().axpy(1.0, src.ws.map());
                i += 2 * stride;
            }
            stride *= 2;
        }

        // Divergence sentinel (NaN-safe training): a non-finite batch loss
        // means the gradients are already poisoned — skip the update so the
        // parameters stay at their last finite state. A finite loss can
        // still produce non-finite parameters (e.g. a NaN learning rate or
        // an overflowing update), so snapshot, step, verify, and roll back
        // on failure — the model never leaves a step with non-finite
        // parameters.
        if !batch_loss.is_finite() {
            self.diverged = true;
            return batch_loss;
        }
        self.snapshot
            .load_values_from(model.params())
            .expect("snapshot shares the parameter layout");
        let total = self.shards.0[0].get_mut();
        self.opt.step(model.params_mut(), total.ws.map());
        if !model.params().values_all_finite() {
            model
                .params_mut()
                .load_values_from(&self.snapshot)
                .expect("snapshot shares the parameter layout");
            self.diverged = true;
        }
        batch_loss
    }

    /// One seed-style step: allocate a fresh graph, per-property forward,
    /// allocating backward — the baseline the benchmark compares against.
    fn step_legacy(
        &mut self,
        model: &mut Bellamy,
        chunk_start: usize,
        chunk_end: usize,
        step: usize,
    ) -> f64 {
        let chunk = &self.indices[chunk_start..chunk_end];
        let delta = model.config().huber_delta;
        let batch = model.make_batch(&self.encoded, chunk);
        let mut graph = Graph::new(model.params());
        graph.tape.set_reference_scalars(true);
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, self.epoch, step, 0));
        let dropout = (self.dropout > 0.0).then_some((self.dropout, &mut rng));
        let out = model.forward_legacy(&mut graph, &batch, dropout);
        let huber = graph
            .tape
            .huber_loss(out.pred, &batch.targets_scaled, delta);
        let loss = graph.tape.add(huber, out.recon);
        let loss_value = graph.value(loss)[(0, 0)];
        let grads = graph.backward(loss);
        drop(graph);
        self.opt.step(model.params_mut(), &grads);
        loss_value
    }

    /// Training MAE (seconds) of the current parameters over the training
    /// set, scored through a snapshot of the handle.
    pub fn train_mae(&self, model: &Bellamy, samples: &[TrainingSample]) -> f64 {
        let state = model.snapshot().expect("pretrainer fitted normalization");
        let preds = crate::Predictor::with_thread_local(|p| {
            p.predict_encoded(&state, &self.encoded).to_vec()
        });
        let targets: Vec<f64> = samples.iter().map(|s| s.runtime_s).collect();
        metrics::mae(&preds, &targets)
    }
}

/// Derives the dropout stream for one (epoch, step, shard) cell from the
/// master seed (SplitMix64-style finalizer over the packed coordinates).
fn mix_seed(seed: u64, epoch: usize, step: usize, shard: usize) -> u64 {
    let mut z = seed
        ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (step as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (shard as u64).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pre-trains `model` on `samples`, fitting the scale-out normalization and
/// target scale first (their bounds then persist into fine-tuning and
/// inference, §IV-A).
pub fn pretrain(
    model: &mut Bellamy,
    samples: &[TrainingSample],
    cfg: &PretrainConfig,
    seed: u64,
) -> PretrainReport {
    let start = Instant::now();
    let mut trainer = Pretrainer::new(model, samples, cfg, seed);

    let mut final_loss = f64::NAN;
    let mut epochs = 0;
    for _epoch in 0..cfg.epochs {
        final_loss = trainer.run_epoch(model);
        epochs += 1;
        if trainer.diverged() {
            break;
        }
    }

    PretrainReport {
        epochs,
        final_loss,
        // Never run inference on poisoned parameters; the MAE of a diverged
        // run is meaningless anyway.
        train_mae_s: if trainer.diverged() {
            f64::NAN
        } else {
            trainer.train_mae(model, samples)
        },
        elapsed_s: start.elapsed().as_secs_f64(),
        n_samples: samples.len(),
        diverged: trainer.diverged(),
    }
}

/// Fisher–Yates shuffle (kept local: `rand`'s slice-shuffle extension lives
/// behind an optional feature in 0.10).
fn shuffle(indices: &mut [usize], rng: &mut StdRng) {
    for i in (1..indices.len()).rev() {
        let j = rng.random_range(0..=i);
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BellamyConfig;
    use crate::features::samples_from_runs;
    use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};

    fn sgd_cross_context_samples(max_contexts: usize) -> Vec<TrainingSample> {
        let ds = generate_c3o(&GeneratorConfig::default());
        let mut samples = Vec::new();
        for ctx in ds
            .contexts_for(Algorithm::Sgd)
            .into_iter()
            .take(max_contexts)
        {
            let runs = ds.runs_for_context(ctx.id);
            samples.extend(samples_from_runs(&ds, &runs));
        }
        samples
    }

    #[test]
    fn pretraining_reduces_error() {
        let samples = sgd_cross_context_samples(4);
        let mut model = Bellamy::new(BellamyConfig::default(), 3);

        // Error of the untrained (but normalized) model.
        model.fit_normalization(&samples);
        let encoded = model.encode_samples(&samples);
        let state0 = model.snapshot().unwrap();
        let preds0 =
            crate::Predictor::with_thread_local(|p| p.predict_encoded(&state0, &encoded).to_vec());
        let targets: Vec<f64> = samples.iter().map(|s| s.runtime_s).collect();
        let mae0 = bellamy_nn::metrics::mae(&preds0, &targets);

        let cfg = PretrainConfig {
            epochs: 150,
            ..PretrainConfig::default()
        };
        let report = pretrain(&mut model, &samples, &cfg, 11);
        assert!(report.final_loss.is_finite());
        assert!(
            report.train_mae_s < mae0 * 0.8,
            "training should cut MAE substantially: {mae0} -> {}",
            report.train_mae_s
        );
    }

    #[test]
    fn pretraining_is_deterministic() {
        let samples = sgd_cross_context_samples(2);
        let cfg = PretrainConfig {
            epochs: 30,
            ..PretrainConfig::default()
        };
        let mut m1 = Bellamy::new(BellamyConfig::default(), 5);
        let mut m2 = Bellamy::new(BellamyConfig::default(), 5);
        let r1 = pretrain(&mut m1, &samples, &cfg, 9);
        let r2 = pretrain(&mut m2, &samples, &cfg, 9);
        assert_eq!(r1.final_loss, r2.final_loss);
        let p1 = m1.predict(6.0, &samples[0].props).unwrap();
        let p2 = m2.predict(6.0, &samples[0].props).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn sharded_gradients_match_single_shard_bitwise() {
        // The tree reduction must make the data-parallel path bit-identical
        // to the sequential (one worker, same shard structure) path, and
        // shard count 1 must equal a plain full-batch step.
        let samples = sgd_cross_context_samples(1);
        let run = |workers: usize, shards: usize| {
            let cfg = PretrainConfig {
                epochs: 8,
                workers,
                shards,
                ..PretrainConfig::default()
            };
            let mut model = Bellamy::new(BellamyConfig::default(), 17);
            let report = pretrain(&mut model, &samples, &cfg, 23);
            (
                report.final_loss,
                model.predict(6.0, &samples[0].props).unwrap(),
            )
        };
        let sequential = run(1, 4);
        let parallel = run(4, 4);
        assert_eq!(sequential, parallel, "worker count must not change results");
        let two_workers = run(2, 4);
        assert_eq!(sequential, two_workers);
    }

    #[test]
    fn legacy_and_optimized_steps_converge_alike() {
        // Same schedule, same seeds: the batched zero-allocation step and
        // the seed-style legacy step follow numerically close trajectories
        // (identical math, different floating-point association).
        let samples = sgd_cross_context_samples(1);
        let cfg = PretrainConfig {
            epochs: 0,
            dropout: 0.0,
            shards: 1,
            workers: 1,
            ..PretrainConfig::default()
        };
        let mut m1 = Bellamy::new(BellamyConfig::default(), 8);
        let mut m2 = Bellamy::new(BellamyConfig::default(), 8);
        let mut t1 = Pretrainer::new(&mut m1, &samples, &cfg, 31);
        let mut t2 = Pretrainer::new(&mut m2, &samples, &cfg, 31);
        let mut l1 = 0.0;
        let mut l2 = 0.0;
        for _ in 0..5 {
            l1 = t1.run_epoch(&mut m1);
            l2 = t2.run_epoch_legacy(&mut m2);
        }
        assert!(
            (l1 - l2).abs() < 1e-6 * l1.abs().max(1.0),
            "optimized {l1} vs legacy {l2}"
        );
        let p1 = m1.predict(6.0, &samples[0].props).unwrap();
        let p2 = m2.predict(6.0, &samples[0].props).unwrap();
        assert!(
            (p1 - p2).abs() < 1e-6 * p1.abs().max(1.0),
            "optimized {p1} vs legacy {p2}"
        );
    }

    #[test]
    fn tail_batch_with_empty_shards_trains_cleanly() {
        // Regression: 13 samples with batch 8 and 4 shards leaves the tail
        // batch (5 rows, per-shard 2) with an empty fourth shard — its row
        // count must clamp to zero (not underflow) and its stale gradients
        // must not leak into the reduction.
        let samples: Vec<TrainingSample> =
            sgd_cross_context_samples(1).into_iter().take(13).collect();
        let cfg = PretrainConfig {
            epochs: 4,
            batch_size: 8,
            workers: 2,
            shards: 4,
            ..PretrainConfig::default()
        };
        let mut model = Bellamy::new(BellamyConfig::default(), 2);
        let report = pretrain(&mut model, &samples, &cfg, 6);
        assert!(report.final_loss.is_finite());
        let p = model.predict(6.0, &samples[0].props).unwrap();
        assert!(
            p.is_finite(),
            "empty shards must not corrupt the update: {p}"
        );

        // And the empty-shard schedule stays bit-identical across worker
        // counts.
        let mut sequential = Bellamy::new(BellamyConfig::default(), 2);
        let seq_report = pretrain(
            &mut sequential,
            &samples,
            &PretrainConfig { workers: 1, ..cfg },
            6,
        );
        assert_eq!(seq_report.final_loss, report.final_loss);
        assert_eq!(sequential.predict(6.0, &samples[0].props).unwrap(), p);
    }

    #[test]
    fn diverging_run_stops_early_and_keeps_finite_parameters() {
        // A NaN learning rate poisons the very first optimizer update. The
        // trainer must detect it, roll the update back, stop training, and
        // report the divergence — leaving the model's parameters finite.
        let samples = sgd_cross_context_samples(1);
        let mut model = Bellamy::new(BellamyConfig::default(), 3);
        let cfg = PretrainConfig {
            epochs: 10,
            lr: f64::NAN,
            ..PretrainConfig::default()
        };
        let report = pretrain(&mut model, &samples, &cfg, 5);
        assert!(report.diverged);
        assert!(report.final_loss.is_nan());
        assert!(report.train_mae_s.is_nan());
        assert!(
            report.epochs < cfg.epochs,
            "training must stop at the diverging epoch, not run the budget"
        );
        assert!(
            model.params().values_all_finite(),
            "the poisoning update must be rolled back"
        );
        // The rolled-back model is still usable for inference.
        assert!(model.predict(6.0, &samples[0].props).unwrap().is_finite());
    }

    #[test]
    fn report_counts_samples() {
        let samples = sgd_cross_context_samples(1);
        let mut model = Bellamy::new(BellamyConfig::default(), 0);
        let cfg = PretrainConfig {
            epochs: 5,
            ..PretrainConfig::default()
        };
        let report = pretrain(&mut model, &samples, &cfg, 0);
        assert_eq!(report.n_samples, samples.len());
        assert_eq!(report.epochs, 5);
        assert!(report.elapsed_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        let mut model = Bellamy::new(BellamyConfig::default(), 0);
        let _ = pretrain(&mut model, &[], &PretrainConfig::default(), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should actually permute");
    }
}
