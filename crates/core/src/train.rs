//! Pre-training (paper §III-A, Table I "Pre-Training").
//!
//! A general model is trained on all available historical executions of an
//! algorithm — across contexts — minimizing the joint objective
//! Huber(runtime) + MSE(reconstruction) with Adam, minibatches of 64, and
//! alpha-dropout inside the auto-encoder.

use crate::config::PretrainConfig;
use crate::features::TrainingSample;
use crate::model::Bellamy;
use bellamy_nn::{metrics, Adam, AdamConfig, Graph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Summary of one pre-training run.
#[derive(Debug, Clone)]
pub struct PretrainReport {
    /// Epochs performed.
    pub epochs: usize,
    /// Joint loss of the final epoch (mean over batches).
    pub final_loss: f64,
    /// Training MAE in seconds after the final epoch.
    pub train_mae_s: f64,
    /// Wall-clock time.
    pub elapsed_s: f64,
    /// Number of training samples.
    pub n_samples: usize,
}

/// Pre-trains `model` on `samples`, fitting the scale-out normalization and
/// target scale first (their bounds then persist into fine-tuning and
/// inference, §IV-A).
pub fn pretrain(
    model: &mut Bellamy,
    samples: &[TrainingSample],
    cfg: &PretrainConfig,
    seed: u64,
) -> PretrainReport {
    assert!(!samples.is_empty(), "pre-training needs at least one sample");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    let start = Instant::now();

    model.fit_normalization(samples);
    let encoded = model.encode_samples(samples);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Adam::new(
        model.params(),
        AdamConfig::with_lr(cfg.lr).weight_decay(cfg.weight_decay),
    );
    let delta = model.config().huber_delta;

    let mut indices: Vec<usize> = (0..encoded.len()).collect();
    let mut final_loss = f64::NAN;

    for _epoch in 0..cfg.epochs {
        shuffle(&mut indices, &mut rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in indices.chunks(cfg.batch_size) {
            let batch = model.make_batch(&encoded, chunk);
            let mut graph = Graph::new(model.params());
            let out = model.forward(&mut graph, &batch, Some((cfg.dropout, &mut rng)));
            let huber = graph.tape.huber_loss(out.pred, batch.targets_scaled.clone(), delta);
            let loss = graph.tape.add(huber, out.recon);
            epoch_loss += graph.value(loss)[(0, 0)];
            batches += 1;
            let grads = graph.backward(loss);
            opt.step(model.params_mut(), &grads);
        }
        final_loss = epoch_loss / batches as f64;
    }

    let preds = model.predict_encoded(&encoded);
    let targets: Vec<f64> = samples.iter().map(|s| s.runtime_s).collect();
    PretrainReport {
        epochs: cfg.epochs,
        final_loss,
        train_mae_s: metrics::mae(&preds, &targets),
        elapsed_s: start.elapsed().as_secs_f64(),
        n_samples: samples.len(),
    }
}

/// Fisher–Yates shuffle (kept local: `rand`'s slice-shuffle extension lives
/// behind an optional feature in 0.10).
fn shuffle(indices: &mut [usize], rng: &mut StdRng) {
    for i in (1..indices.len()).rev() {
        let j = rng.random_range(0..=i);
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BellamyConfig;
    use crate::features::samples_from_runs;
    use bellamy_data::{generate_c3o, Algorithm, GeneratorConfig};

    fn sgd_cross_context_samples(max_contexts: usize) -> Vec<TrainingSample> {
        let ds = generate_c3o(&GeneratorConfig::default());
        let mut samples = Vec::new();
        for ctx in ds.contexts_for(Algorithm::Sgd).into_iter().take(max_contexts) {
            let runs = ds.runs_for_context(ctx.id);
            samples.extend(samples_from_runs(&ds, &runs));
        }
        samples
    }

    #[test]
    fn pretraining_reduces_error() {
        let samples = sgd_cross_context_samples(4);
        let mut model = Bellamy::new(BellamyConfig::default(), 3);

        // Error of the untrained (but normalized) model.
        model.fit_normalization(&samples);
        let encoded = model.encode_samples(&samples);
        let preds0 = model.predict_encoded(&encoded);
        let targets: Vec<f64> = samples.iter().map(|s| s.runtime_s).collect();
        let mae0 = bellamy_nn::metrics::mae(&preds0, &targets);

        let cfg = PretrainConfig { epochs: 150, ..PretrainConfig::default() };
        let report = pretrain(&mut model, &samples, &cfg, 11);
        assert!(report.final_loss.is_finite());
        assert!(
            report.train_mae_s < mae0 * 0.8,
            "training should cut MAE substantially: {mae0} -> {}",
            report.train_mae_s
        );
    }

    #[test]
    fn pretraining_is_deterministic() {
        let samples = sgd_cross_context_samples(2);
        let cfg = PretrainConfig { epochs: 30, ..PretrainConfig::default() };
        let mut m1 = Bellamy::new(BellamyConfig::default(), 5);
        let mut m2 = Bellamy::new(BellamyConfig::default(), 5);
        let r1 = pretrain(&mut m1, &samples, &cfg, 9);
        let r2 = pretrain(&mut m2, &samples, &cfg, 9);
        assert_eq!(r1.final_loss, r2.final_loss);
        let p1 = m1.predict(6.0, &samples[0].props);
        let p2 = m2.predict(6.0, &samples[0].props);
        assert_eq!(p1, p2);
    }

    #[test]
    fn report_counts_samples() {
        let samples = sgd_cross_context_samples(1);
        let mut model = Bellamy::new(BellamyConfig::default(), 0);
        let cfg = PretrainConfig { epochs: 5, ..PretrainConfig::default() };
        let report = pretrain(&mut model, &samples, &cfg, 0);
        assert_eq!(report.n_samples, samples.len());
        assert_eq!(report.epochs, 5);
        assert!(report.elapsed_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_rejected() {
        let mut model = Bellamy::new(BellamyConfig::default(), 0);
        let _ = pretrain(&mut model, &[], &PretrainConfig::default(), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should actually permute");
    }
}
