//! The unified error type of the serving front door.
//!
//! The subsystems each have a precise local error — [`PredictError`] for
//! inference on unfitted models, [`HubError`] for registry operations,
//! [`SearchError`] for hyperparameter search — and keep them, because their
//! callers match on the specific cases. The [`crate::serve`] API sits above
//! all three, so it speaks one language: [`BellamyError`], with `From`
//! conversions from every local error (the `?` operator just works) and
//! `source()` preserving the original for callers that want to drill down.

use crate::hub::HubError;
use crate::model::PredictError;
use crate::search::SearchError;
use std::time::Duration;

/// Any error the Bellamy serving stack can surface: the union of the
/// per-subsystem errors plus the service lifecycle cases.
#[derive(Debug)]
pub enum BellamyError {
    /// Inference was requested from an unfitted model.
    Predict(PredictError),
    /// A model-hub operation failed (unknown key, divergence, disk I/O).
    Hub(HubError),
    /// Hyperparameter search could not produce a usable model.
    Search(SearchError),
    /// A query was submitted to a service whose serving loop has stopped
    /// (the service was shut down or its loop terminated abnormally).
    ServiceStopped,
    /// The micro-batcher's admission window
    /// ([`crate::serve::BatcherConfig::max_inflight`]) is full: submitters
    /// are outrunning the predictor and this query was shed instead of
    /// parking unboundedly. Back off for roughly `retry_after_hint` (the
    /// configured flush wait plus the recently observed batch service
    /// time) before retrying.
    Overloaded {
        /// A back-off hint derived from the batcher's flush cadence.
        retry_after_hint: Duration,
    },
    /// The query's deadline budget elapsed before a result was delivered;
    /// the submitter revoked its queue slot (or discarded a too-late
    /// result) and gave up. Retry with a larger budget or at lower load.
    DeadlineExceeded,
    /// The batched forward pass containing this query panicked. Only that
    /// batch failed — the supervised serving loop restarts and subsequent
    /// queries are served normally (unless repeated panics degraded the
    /// client to direct per-caller prediction). Safe to retry.
    BatchPanicked,
}

impl std::fmt::Display for BellamyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BellamyError::Predict(e) => write!(f, "predict: {e}"),
            BellamyError::Hub(e) => write!(f, "hub: {e}"),
            BellamyError::Search(e) => write!(f, "search: {e}"),
            BellamyError::ServiceStopped => {
                write!(
                    f,
                    "the serving loop has stopped; no further queries are accepted"
                )
            }
            BellamyError::Overloaded { retry_after_hint } => {
                write!(
                    f,
                    "service overloaded: the admission window is full; retry after ~{}us",
                    retry_after_hint.as_micros()
                )
            }
            BellamyError::DeadlineExceeded => {
                write!(f, "query deadline exceeded before a result was delivered")
            }
            BellamyError::BatchPanicked => {
                write!(
                    f,
                    "the serving batch containing this query panicked; the loop \
                     restarts and the query is safe to retry"
                )
            }
        }
    }
}

impl std::error::Error for BellamyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BellamyError::Predict(e) => Some(e),
            BellamyError::Hub(e) => Some(e),
            BellamyError::Search(e) => Some(e),
            BellamyError::ServiceStopped
            | BellamyError::Overloaded { .. }
            | BellamyError::DeadlineExceeded
            | BellamyError::BatchPanicked => None,
        }
    }
}

impl From<PredictError> for BellamyError {
    fn from(e: PredictError) -> Self {
        BellamyError::Predict(e)
    }
}

impl From<HubError> for BellamyError {
    fn from(e: HubError) -> Self {
        BellamyError::Hub(e)
    }
}

impl From<SearchError> for BellamyError {
    fn from(e: SearchError) -> Self {
        BellamyError::Search(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BellamyError = PredictError::NotFitted.into();
        assert!(e.to_string().contains("not fitted"));
        let e: BellamyError = HubError::UnknownModel("k".into()).into();
        assert!(e.to_string().contains("no model registered"));
        let e: BellamyError = SearchError::AllTrialsDiverged { trials: 3 }.into();
        assert!(e.to_string().contains("diverged"));
        assert!(BellamyError::ServiceStopped.to_string().contains("stopped"));
        let e = BellamyError::Overloaded {
            retry_after_hint: std::time::Duration::from_micros(250),
        };
        assert!(e.to_string().contains("overloaded"));
        assert!(e.to_string().contains("250us"));
        assert!(BellamyError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(BellamyError::BatchPanicked.to_string().contains("retry"));
    }

    #[test]
    fn source_preserves_the_wrapped_error() {
        use std::error::Error;
        let e: BellamyError = PredictError::NotFitted.into();
        assert!(e.source().is_some());
        assert!(BellamyError::ServiceStopped.source().is_none());
    }

    #[test]
    fn question_mark_operator_converts() {
        fn recall() -> Result<(), BellamyError> {
            Err(HubError::UnknownModel("missing".into()))?
        }
        assert!(matches!(recall(), Err(BellamyError::Hub(_))));
    }
}
