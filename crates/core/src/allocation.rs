//! Resource allocation from runtime predictions (the use case motivating
//! the paper, §I/§V: "the predicted runtimes can be used to effectively
//! choose a suitable resource configuration").
//!
//! The helpers are generic over any `scale-out -> predicted seconds`
//! function, so they work with Bellamy, Ernest, Bell, or the ground truth.

/// A recommended scale-out with its predicted runtime and, when a price is
/// involved, the predicted cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleOutRecommendation {
    /// Number of machines to allocate.
    pub scale_out: u32,
    /// Predicted runtime in seconds at that scale-out.
    pub predicted_runtime_s: f64,
    /// Predicted cost in currency units (0 when no price was given).
    pub predicted_cost: f64,
}

/// The smallest scale-out in `[lo, hi]` whose predicted runtime meets
/// `target_s`. Returns `None` when no candidate meets the target (the caller
/// should then surface "runtime target not achievable in this range").
pub fn min_scale_out_meeting(
    predict: impl Fn(u32) -> f64,
    target_s: f64,
    lo: u32,
    hi: u32,
) -> Option<ScaleOutRecommendation> {
    assert!(lo >= 1 && lo <= hi, "invalid scale-out range {lo}..={hi}");
    (lo..=hi).find_map(|x| {
        let t = predict(x);
        (t <= target_s).then_some(ScaleOutRecommendation {
            scale_out: x,
            predicted_runtime_s: t,
            predicted_cost: 0.0,
        })
    })
}

/// The cheapest scale-out in `[lo, hi]` under a per-machine-hour price,
/// optionally subject to a runtime target. Cost model:
/// `machines * hours * price`.
pub fn cheapest_scale_out(
    predict: impl Fn(u32) -> f64,
    price_per_machine_hour: f64,
    target_s: Option<f64>,
    lo: u32,
    hi: u32,
) -> Option<ScaleOutRecommendation> {
    assert!(lo >= 1 && lo <= hi, "invalid scale-out range {lo}..={hi}");
    assert!(price_per_machine_hour >= 0.0, "negative price");
    (lo..=hi)
        .filter_map(|x| {
            let t = predict(x);
            if let Some(limit) = target_s {
                if t > limit {
                    return None;
                }
            }
            let cost = x as f64 * (t / 3600.0) * price_per_machine_hour;
            Some(ScaleOutRecommendation {
                scale_out: x,
                predicted_runtime_s: t,
                predicted_cost: cost,
            })
        })
        .min_by(|a, b| {
            a.predicted_cost
                .partial_cmp(&b.predicted_cost)
                .expect("finite costs")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An Ernest-shaped curve with a sweet spot.
    fn curve(x: u32) -> f64 {
        let x = x as f64;
        30.0 + 600.0 / x + 5.0 * x.ln() + 2.0 * x
    }

    #[test]
    fn picks_smallest_meeting_target() {
        // curve(2)=343.5.., curve(4)=..., decreasing early on.
        let rec = min_scale_out_meeting(curve, 200.0, 2, 12).unwrap();
        // Verify minimality: no smaller scale-out meets the target.
        for x in 2..rec.scale_out {
            assert!(curve(x) > 200.0);
        }
        assert!(rec.predicted_runtime_s <= 200.0);
    }

    #[test]
    fn unreachable_target_is_none() {
        assert!(min_scale_out_meeting(curve, 1.0, 2, 12).is_none());
    }

    #[test]
    fn cheapest_balances_machines_and_time() {
        let rec = cheapest_scale_out(curve, 1.0, None, 1, 30).unwrap();
        // Cost = x * t(x)/3600; brute-force check optimality.
        for x in 1..=30u32 {
            let cost = x as f64 * curve(x) / 3600.0;
            assert!(
                rec.predicted_cost <= cost + 1e-12,
                "x={x} cheaper than chosen"
            );
        }
        // The cheapest configuration for this curve uses few machines.
        assert!(rec.scale_out <= 5);
    }

    #[test]
    fn cheapest_respects_target() {
        let unconstrained = cheapest_scale_out(curve, 1.0, None, 1, 30).unwrap();
        let constrained = cheapest_scale_out(
            curve,
            1.0,
            Some(unconstrained.predicted_runtime_s * 0.7),
            1,
            30,
        )
        .unwrap();
        assert!(constrained.predicted_runtime_s <= unconstrained.predicted_runtime_s * 0.7);
        assert!(constrained.predicted_cost >= unconstrained.predicted_cost);
    }

    #[test]
    fn impossible_constraint_is_none() {
        assert!(cheapest_scale_out(curve, 1.0, Some(0.5), 1, 30).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid scale-out range")]
    fn bad_range_rejected() {
        let _ = min_scale_out_meeting(curve, 100.0, 5, 2);
    }
}
