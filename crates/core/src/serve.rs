//! `bellamy::serve` — the unified serving front door.
//!
//! Everything below this module already exists as parts: the [`ModelHub`]
//! registry, `Arc`-shared [`ModelState`] snapshots, the allocation-free
//! [`Predictor`]. What callers had to do by hand — build a key, recall,
//! snapshot, keep a per-thread predictor, drive fine-tune strategies — is
//! one object here: a [`Service`] built via [`Service::builder`] hands out
//! cheap, cloneable [`ModelClient`] handles per [`ModelKey`], and every
//! client serves through the same shared machinery.
//!
//! # Caller → batcher → predictor lifecycle
//!
//! ```text
//!   caller A ──predict()──┐                       ┌────────────────────┐
//!   caller B ──predict()──┼──► pending slots ───► │ serving loop       │
//!   caller C ──predict()──┘    (per-key queue)    │ (bellamy_par pool) │
//!        ▲                                        │  Predictor::       │
//!        │        flush on capacity or timeout ──►│  predict_batch     │
//!        └──── per-caller result slots ◄──────────┴────────────────────┘
//! ```
//!
//! 1. **Submit.** [`ModelClient::predict`] writes the query into its
//!    model's pending queue (a preallocated slot ring — no allocation on
//!    the steady-state submit path) and waits on a stack-local result slot
//!    (spin-polling with yields, parking the thread only when the result
//!    is slow).
//! 2. **Collect.** The *micro-batcher*'s persistent serving loop — one
//!    parked job on a [`bellamy_par::ThreadPool`] per served model —
//!    collects queries from any number of submitting threads until the
//!    batch is full ([`BatcherConfig::max_batch`]), arrivals quiesce
//!    (under the default [`FlushPolicy::Eager`]), or the oldest query has
//!    waited [`BatcherConfig::max_wait`].
//! 3. **Predict.** The whole batch runs through one arena-backed
//!    [`Predictor::predict_batch`] call. Every op in the prediction path is
//!    row-independent, so micro-batched results are **bit-identical** to
//!    direct per-query calls — batching changes latency and throughput,
//!    never values (proven under ≥ 8 concurrent submitters in
//!    `crates/core/tests/serve.rs`).
//! 4. **Deliver.** Results land in the per-caller slots; each submitter
//!    wakes and returns its own prediction.
//!
//! When the serving loop is starved of CPU — the normal condition on a
//! single-core host, where the loop cannot run while submitters hold the
//! core — eager-policy submitters *assist* (flat combining): a submitter
//! whose result has not landed claims the entire pending batch under the
//! queue lock and serves it inline on its own thread, through the same
//! batched predictor math. With free cores the spin-polling loop claims
//! new work first and assists stay rare; without them the batcher degrades
//! gracefully toward direct serving instead of paying two context switches
//! per query. [`FlushPolicy::Deadline`] disables assists — the loop alone
//! decides when to flush, maximizing coalescing.
//!
//! Batched work that is already batched — [`ModelClient::predict_batch`],
//! [`ModelClient::predict_sweep`], [`ModelClient::recommend_scale_out`] —
//! bypasses the micro-batcher and runs directly on this thread's warm
//! predictor arena; coalescing exists for the many-callers-one-query-each
//! serving shape, not for callers that batch themselves.
//!
//! # Failure semantics
//!
//! The front door is built to *degrade*, never to hang or go dark. Every
//! failure is typed, counted, and tells the caller what to do next:
//!
//! | error | cause | caller action | counter |
//! |---|---|---|---|
//! | [`BellamyError::Overloaded`] | admission window ([`BatcherConfig::max_inflight`]) full — submitters outran the predictor | back off `retry_after_hint`, retry | [`BatcherStats::shed`] |
//! | [`BellamyError::DeadlineExceeded`] | the query's budget ([`BatcherConfig::deadline`] / [`ModelClient::predict_with_deadline`]) elapsed while still queued | retry with a larger budget or at lower load | [`BatcherStats::deadline_expired`] |
//! | [`BellamyError::BatchPanicked`] | the forward pass panicked mid-batch; only that batch failed, the supervised loop restarts | retry (the next batch serves normally) | [`BatcherStats::panics`], [`BatcherStats::restarts`] |
//! | [`BellamyError::ServiceStopped`] | the service was dropped / shut down | rebuild the client from a live service | [`BatcherStats::shutdown_flushes`] |
//!
//! The pieces behind the table:
//!
//! - **Admission control.** At most [`BatcherConfig::max_inflight`] queries
//!   are admitted (queued or mid-flush) per model. Beyond that, `submit`
//!   *sheds* — fails fast with [`BellamyError::Overloaded`] instead of
//!   parking an unbounded convoy of threads behind a saturated predictor.
//! - **Deadline budgets.** Every query can carry a budget. A submitter
//!   whose budget elapses while its query is still *queued* revokes the
//!   query (removal and batch claims serialize on the queue mutex, so a
//!   racing deliverer can never touch the revoked — popped — stack slot)
//!   and returns [`BellamyError::DeadlineExceeded`]. Once a batch has
//!   *claimed* the query, delivery is guaranteed (normal, panic-failed, or
//!   shutdown-failed), so the submitter waits it out — and even a lost
//!   unpark costs at most one bounded park interval, never a hang.
//! - **Supervised serving loop.** A panic in the forward pass fails only
//!   the in-flight batch ([`BellamyError::BatchPanicked`]); the supervisor
//!   records it and restarts the loop with capped exponential backoff.
//!   [`PANIC_DEGRADE_LIMIT`] panics within [`PANIC_WINDOW`] degrade the
//!   batcher: submitters switch to direct per-caller prediction
//!   ([`BatcherStats::degraded`]) — reduced coalescing, but the model
//!   keeps serving instead of going dark. (Assist flushes run on the
//!   submitter's own thread, so a panicking assist surfaces on that caller
//!   directly, like any direct prediction.)
//! - **Fault injection.** The flush path hits the
//!   [`crate::faults::SERVE_FLUSH`] failpoint once per batch, so tests
//!   inject mid-batch panics and artificial latency deterministically; the
//!   hub's disk paths carry their own failpoints.
//!
//! Errors from every layer surface as one [`BellamyError`].

use crate::allocation::{cheapest_scale_out, min_scale_out_meeting, ScaleOutRecommendation};
use crate::config::{FinetuneConfig, PretrainConfig};
use crate::error::BellamyError;
use crate::faults;
use crate::features::{ContextProperties, TrainingSample};
use crate::finetune::ReuseStrategy;
use crate::hub::{HubStats, ModelHub, ModelKey, RecallMode};
use crate::model::Bellamy;
use crate::predictor::{PredictQuery, Predictor};
use crate::state::ModelState;
use bellamy_linalg::kernels::{self, RequestSource, TierRequest};
use bellamy_par::ThreadPool;
use bellamy_telemetry::{
    self as telemetry, event_kind, Counter, Histogram, Sampler, TelemetrySnapshot,
};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// When the serving loop flushes a non-empty, non-full batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush as soon as arrivals *quiesce* — one scheduler yield passes
    /// with no new query — or at `max_wait`, whichever comes first.
    /// Minimizes latency; batches form from natural arrival bursts (the
    /// queries that accumulate while the loop is busy predicting).
    #[default]
    Eager,
    /// Hold the batch the full `max_wait` unless it fills to `max_batch`.
    /// Maximizes coalescing at a bounded latency cost — for throughput-
    /// over-latency deployments with many more submitters than cores.
    Deadline,
}

/// Micro-batcher tuning: when a collecting batch is flushed to the
/// predictor.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Flush as soon as this many queries are pending. Also sizes the
    /// preallocated pending-slot ring, so it bounds submit-side memory.
    pub max_batch: usize,
    /// Flush once the *oldest* pending query has waited this long, even if
    /// the batch is neither full nor (under [`FlushPolicy::Eager`])
    /// quiesced.
    pub max_wait: Duration,
    /// When to flush a partial batch (see [`FlushPolicy`]).
    pub policy: FlushPolicy,
    /// Admission window: the most queries allowed in flight (queued or
    /// mid-flush) before `submit` sheds with [`BellamyError::Overloaded`]
    /// instead of parking yet another thread behind a saturated predictor.
    /// `0` (the default) derives the window as `4 * max_batch` — the
    /// collecting batch plus a few flushes' worth of headroom.
    pub max_inflight: usize,
    /// Default per-query deadline budget. `None` (the default): queries
    /// wait indefinitely. [`ModelClient::predict_with_deadline`] overrides
    /// this per call.
    pub deadline: Option<Duration>,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_wait: Duration::from_micros(100),
            policy: FlushPolicy::Eager,
            max_inflight: 0,
            deadline: None,
        }
    }
}

/// Operation counters of one model's micro-batcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatcherStats {
    /// Queries served through the batcher.
    pub queries: u64,
    /// Batches flushed to the predictor. At quiescence (no flush in
    /// flight) the per-reason counters below (capacity + timeout +
    /// quiesce + assist + shutdown) sum to this; a snapshot taken while a
    /// flush is being counted may transiently be off by one.
    pub batches: u64,
    /// Batches flushed because they filled to `max_batch`.
    pub capacity_flushes: u64,
    /// Batches flushed because the oldest query aged past `max_wait`.
    pub timeout_flushes: u64,
    /// Batches flushed because arrivals quiesced ([`FlushPolicy::Eager`]).
    pub quiesce_flushes: u64,
    /// Batches served inline by an assisting submitter (flat combining,
    /// [`FlushPolicy::Eager`] only) because the serving loop was starved
    /// of CPU.
    pub assist_flushes: u64,
    /// Batches drained because the batcher was shutting down (queries that
    /// were pending when the service dropped are still served, once).
    pub shutdown_flushes: u64,
    /// Queries shed at admission because [`BatcherConfig::max_inflight`]
    /// was reached ([`BellamyError::Overloaded`]). Shed queries never enter
    /// the pending queue and are not counted in `queries`.
    pub shed: u64,
    /// Queries revoked because their deadline budget elapsed while still
    /// queued ([`BellamyError::DeadlineExceeded`]).
    pub deadline_expired: u64,
    /// Forward-pass panics absorbed by the supervised serving loop (each
    /// failed exactly one batch with [`BellamyError::BatchPanicked`]).
    pub panics: u64,
    /// Times the supervisor respawned the serving loop after a panic.
    pub restarts: u64,
    /// True once repeated panics ([`PANIC_DEGRADE_LIMIT`] within
    /// [`PANIC_WINDOW`]) degraded this batcher to direct per-caller
    /// prediction.
    pub degraded: bool,
    /// Kernel tier requested for this process (`"auto"`, `"scalar"`,
    /// `"simd"`, or `"fma"` — see `bellamy_linalg::kernels::resolution`).
    /// Empty only on [`BatcherStats::default`].
    pub kernel_requested: &'static str,
    /// Kernel backend the request actually resolved to (e.g. `"avx2-fma"`).
    /// Differs from an honored request only when the hardware forced a
    /// degradation — compare with `kernel_requested` to detect silent
    /// fallback from operational stats.
    pub kernel_resolved: &'static str,
}

impl BatcherStats {
    /// Stamps the process-wide kernel resolution onto a stats snapshot.
    fn with_kernel_resolution(mut self) -> Self {
        let res = kernels::resolution();
        self.kernel_requested = res.requested_name();
        self.kernel_resolved = res.resolved_name();
        self
    }
}

/// Why the serving loop decided to flush the collecting batch.
enum FlushReason {
    Capacity,
    Timeout,
    Quiesce,
    Shutdown,
}

/// Scheduler yields the serving loop spends polling for new work before
/// parking on the condvar, and a submitter spends polling its result slot
/// before parking. Yield-polling keeps the steady-state handoff free of
/// futex syscalls on both sides; the parked path only pays when traffic
/// actually pauses.
const IDLE_SPINS: usize = 256;
const SLOT_SPINS: usize = 256;

/// Forward-pass panics within [`PANIC_WINDOW`] that degrade the batcher to
/// direct per-caller prediction instead of restarting the loop again.
pub const PANIC_DEGRADE_LIMIT: usize = 5;
/// The sliding window over which panics count toward
/// [`PANIC_DEGRADE_LIMIT`].
pub const PANIC_WINDOW: Duration = Duration::from_secs(30);

/// Supervisor restart backoff: doubles per panic inside the window,
/// starting at the base, never exceeding the cap. Kept small — the backoff
/// exists to stop a deterministically panicking model from spinning a core,
/// not to make callers wait.
const RESTART_BACKOFF_BASE: Duration = Duration::from_millis(1);
const RESTART_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// Upper bound on any single park while waiting for delivery. Delivery
/// normally ends the park via `unpark`; the backstop means a lost wakeup
/// (or an unpark token consumed by an unrelated park) costs one bounded
/// re-check instead of hanging the submitter forever.
const PARK_BACKSTOP: Duration = Duration::from_millis(100);

/// One caller's parked query. The raw pointers refer to the submitting
/// caller's stack frame; they stay valid because `submit` blocks until the
/// serving loop has delivered the result into the slot (the same contract
/// `bellamy_par::WorkTeam` uses for its type-erased tasks).
struct Request {
    scale_out: f64,
    props: *const ContextProperties,
    slot: *const ResponseSlot,
}

// SAFETY: the pointers are only dereferenced by the serving loop while the
// submitting caller is parked inside `submit`, so the referents outlive
// every access. The slot's interior is coordinated by its atomic status
// protocol (see `ResponseSlot`).
unsafe impl Send for Request {}

const SLOT_EMPTY: u32 = 0;
const SLOT_PARKED: u32 = 1;
/// Deliverer mid-publish: the result is decided but the final status has
/// not landed. A waiter observing this spins in [`ResponseSlot::take`]
/// instead of returning, which keeps the slot's stack frame alive for the
/// deliverer's last store.
const SLOT_DELIVERING: u32 = 2;
const SLOT_READY: u32 = 3;
const SLOT_FAILED: u32 = 4;
/// The batch containing this query panicked mid-forward-pass; the query
/// was never served but the service survives ([`BellamyError::BatchPanicked`]).
const SLOT_PANICKED: u32 = 5;

/// Stack-local rendezvous cell for one query's result: the submitter
/// spin-polls `status` (yielding between polls), parking its thread only
/// when the result is slow; the serving loop publishes the value in two
/// phases (`DELIVERING`, then the final status) so its last access to the
/// slot is an atomic store — the wakeup itself goes through a cloned,
/// internally refcounted [`std::thread::Thread`] handle that stays valid
/// even after the submitter returns and pops the frame owning this slot.
struct ResponseSlot {
    value: std::cell::UnsafeCell<f64>,
    status: std::sync::atomic::AtomicU32,
    /// The parked submitter's handle; written before `PARKED` is
    /// advertised, read by the deliverer only after observing `PARKED`.
    waiter: std::cell::UnsafeCell<Option<std::thread::Thread>>,
}

impl ResponseSlot {
    fn new() -> Self {
        Self {
            value: std::cell::UnsafeCell::new(0.0),
            status: std::sync::atomic::AtomicU32::new(SLOT_EMPTY),
            waiter: std::cell::UnsafeCell::new(None),
        }
    }

    /// Callable only once `status >= SLOT_DELIVERING`.
    fn take(&self) -> Result<f64, BellamyError> {
        let mut spins = 0usize;
        loop {
            match self.status.load(Ordering::Acquire) {
                // Mid-publish: the final status lands within a few
                // instructions — unless the deliverer was preempted, so
                // after a bounded spin yield the core to let it finish
                // (a pure spin could stall a whole quantum, or livelock
                // under real-time priorities, on a single-core host).
                // Staying in this loop is what keeps the slot alive for
                // the deliverer's last store.
                SLOT_DELIVERING if spins < SLOT_SPINS => {
                    spins += 1;
                    std::hint::spin_loop();
                }
                SLOT_DELIVERING => std::thread::yield_now(),
                // SAFETY: READY is only published (release) after the
                // deliverer wrote the value; our acquire load sees it.
                SLOT_READY => return Ok(unsafe { *self.value.get() }),
                SLOT_PANICKED => return Err(BellamyError::BatchPanicked),
                _ => return Err(BellamyError::ServiceStopped),
            }
        }
    }

    /// Loop side: publish a result (`None`: the batcher is shutting down
    /// and the query will never be served) and wake the waiter if it
    /// parked.
    fn deliver(&self, result: Option<f64>) {
        self.finish(result, SLOT_FAILED);
    }

    /// Loop side: fail the query because its batch's forward pass panicked.
    /// The service itself survives (the supervisor restarts the loop), so
    /// the waiter gets the retryable [`BellamyError::BatchPanicked`].
    fn deliver_panicked(&self) {
        self.finish(None, SLOT_PANICKED);
    }

    fn finish(&self, result: Option<f64>, failure: u32) {
        let final_status = match result {
            Some(v) => {
                // SAFETY: the submitter only reads after observing READY.
                unsafe { *self.value.get() = v };
                SLOT_READY
            }
            None => failure,
        };
        // Two-phase publish. DELIVERING freezes the slot: a waiter that
        // wakes now spins in `take` instead of returning, so neither the
        // handle read nor the final store below can race the submitter
        // popping the stack frame that owns this slot.
        let was = self.status.swap(SLOT_DELIVERING, Ordering::AcqRel);
        let waiter = if was == SLOT_PARKED {
            // SAFETY: PARKED is advertised (release) only after the
            // submitter wrote the handle, and the submitter cannot return
            // while the status is DELIVERING.
            unsafe { (*self.waiter.get()).take() }
        } else {
            None
        };
        // The deliverer's LAST access to the slot: after this store the
        // submitter may return at any moment. `Thread` is internally
        // refcounted, so the unpark below stays safe even then.
        self.status.store(final_status, Ordering::Release);
        if let Some(thread) = waiter {
            thread.unpark();
        }
    }
}

struct BatchQueue {
    /// The collecting batch; capacity fixed at `max_batch`, so pushes never
    /// reallocate.
    pending: Vec<Request>,
    /// Arrival time of the oldest pending query (the flush-deadline anchor).
    oldest: Option<Instant>,
    shutdown: bool,
}

struct BatcherShared {
    cfg: BatcherConfig,
    /// The served snapshot (the loop and assisting submitters predict
    /// against it).
    state: Arc<ModelState>,
    queue: Mutex<BatchQueue>,
    /// Wakes the serving loop when it is parked (new work or shutdown).
    work: Condvar,
    /// True while the serving loop is parked on `work` — submitters skip
    /// the notify syscall entirely while the loop is spinning.
    loop_parked: std::sync::atomic::AtomicBool,
    /// Wakes submitters waiting for a free pending slot.
    space: Condvar,
    /// Resolved admission window (config value, or `4 * max_batch` when the
    /// config said `0`), never less than `max_batch` so a full batch can
    /// always form.
    max_inflight: u64,
    /// Queries currently admitted: incremented at admission, decremented on
    /// every submit exit (delivered, revoked, failed).
    inflight: AtomicU64,
    /// True once repeated panics degraded this batcher; submitters then
    /// predict directly on their own threads and never enqueue.
    degraded: AtomicBool,
    /// EWMA of batch service time in nanoseconds (feeds the
    /// [`BellamyError::Overloaded`] retry hint).
    flush_nanos: AtomicU64,
    /// Operation counters and latency distributions (see
    /// [`BatcherMetrics`]). [`BatcherStats`] and [`Service::telemetry`]
    /// both read these same atomics.
    metrics: BatcherMetrics,
}

/// The single source of truth for one batcher's operation counts and
/// latency distributions, built on the lock-free `bellamy_telemetry`
/// primitives. Every count lives exactly once: [`MicroBatcher::stats`]
/// (the `BatcherStats` view) and [`Service::telemetry`] are both cheap
/// snapshot reads of these handles, so the two views cannot drift.
struct BatcherMetrics {
    queries: Counter,
    batches: Counter,
    capacity_flushes: Counter,
    timeout_flushes: Counter,
    quiesce_flushes: Counter,
    assist_flushes: Counter,
    shutdown_flushes: Counter,
    shed: Counter,
    deadline_expired: Counter,
    panics: Counter,
    restarts: Counter,
    /// Gates the submit-latency `Instant` pair to 1 in
    /// [`SUBMIT_LATENCY_SAMPLE_PERIOD`] queries: a clock read costs more
    /// than the entire rest of the record path (~75 ns on VM hosts without
    /// a vDSO fast path), so timing every query would dominate the
    /// instrumentation budget on µs-scale submits. Sampling keeps the
    /// histogram's quantiles representative of a steady workload at ~1/8th
    /// the cost.
    submit_sampler: Sampler,
    /// Sampled submit → response latency in nanoseconds. Recorded only
    /// while `bellamy_telemetry::timing_enabled()` (the default); the
    /// record is one `fetch_add`, keeping the submit path allocation-free.
    submit_latency: Histogram,
    /// Per-batch forward-pass latency in nanoseconds (loop and assist
    /// flushes; reuses the `Instant` pair the EWMA already pays for).
    flush_latency: Histogram,
    /// Distribution of claimed batch sizes (queries per flush).
    batch_size: Histogram,
}

/// Every `N`-th delivered query pays the submit-latency clock pair.
const SUBMIT_LATENCY_SAMPLE_PERIOD: u64 = 8;

impl Default for BatcherMetrics {
    fn default() -> Self {
        Self {
            queries: Counter::new(),
            batches: Counter::new(),
            capacity_flushes: Counter::new(),
            timeout_flushes: Counter::new(),
            quiesce_flushes: Counter::new(),
            assist_flushes: Counter::new(),
            shutdown_flushes: Counter::new(),
            shed: Counter::new(),
            deadline_expired: Counter::new(),
            panics: Counter::new(),
            restarts: Counter::new(),
            submit_sampler: Sampler::every(SUBMIT_LATENCY_SAMPLE_PERIOD),
            submit_latency: Histogram::new(),
            flush_latency: Histogram::new(),
            batch_size: Histogram::new(),
        }
    }
}

thread_local! {
    /// Reusable scratch for the assist path (flat combining): claimed
    /// requests, their query views, and the copied-out results. Grows to
    /// the largest claimed batch once, then steady-state assists are
    /// allocation-free.
    #[allow(clippy::type_complexity)]
    static ASSIST_SCRATCH: std::cell::RefCell<(Vec<Request>, Vec<PredictQuery<'static>>, Vec<f64>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new(), Vec::new())) };
}

impl BatcherShared {
    /// Human-readable identity of the served model for events and metric
    /// labels: the hub registry key, or `<unkeyed>` for ad hoc snapshots.
    fn model_label(&self) -> &str {
        self.state.registry_key().unwrap_or("<unkeyed>")
    }

    /// Folds one batch service time into the EWMA (weight 1/4 — responsive
    /// to load shifts, stable against single outliers).
    fn record_flush(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let old = self.flush_nanos.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 4 + sample / 4
        };
        self.flush_nanos.store(new, Ordering::Relaxed);
    }

    /// How long a shed caller should back off: one flush wait plus the
    /// recently observed batch service time — roughly when the current
    /// congestion will have drained one batch.
    fn retry_after_hint(&self) -> Duration {
        let service = Duration::from_nanos(self.flush_nanos.load(Ordering::Relaxed));
        (self.cfg.max_wait + service).max(Duration::from_micros(50))
    }

    /// Direct per-caller prediction — the degraded-mode path (no batching,
    /// no queue, no admission; a panicking model surfaces on this caller
    /// like any direct `Predictor` use).
    fn predict_direct(&self, scale_out: f64, props: &ContextProperties) -> f64 {
        Predictor::with_thread_local(|p| p.predict_one(&self.state, scale_out, props))
    }

    /// Removes this submitter's still-queued request. Every claim — the
    /// serving loop's swap, an assister's append — and this removal run
    /// under the queue mutex, so exactly one of two things is true when it
    /// returns:
    ///
    /// - `true`: the request was still queued and is now gone. No
    ///   deliverer has seen it or ever will, so the caller may pop the
    ///   slot's stack frame immediately.
    /// - `false`: a batch already claimed the request. Delivery into the
    ///   slot is then guaranteed (normal, panic-failed, or shutdown-failed)
    ///   and the caller must keep the frame alive until it lands.
    ///
    /// This lock-serialized handoff is what keeps a racing deliverer from
    /// ever touching a revoked — popped — stack slot.
    fn try_revoke(&self, slot: &ResponseSlot) -> bool {
        let mut q = self.queue.lock();
        let before = q.pending.len();
        q.pending
            .retain(|r| !std::ptr::eq(r.slot, slot as *const _));
        let revoked = q.pending.len() < before;
        if revoked && q.pending.is_empty() {
            q.oldest = None;
        }
        revoked
    }

    /// Submitter side: spin briefly, then park until delivery — bounded by
    /// the query's deadline while it is still revocable, and by
    /// [`PARK_BACKSTOP`] always (a lost unpark costs one re-check, never a
    /// hang).
    fn wait_slot(
        &self,
        slot: &ResponseSlot,
        deadline_at: Option<Instant>,
    ) -> Result<f64, BellamyError> {
        for _ in 0..SLOT_SPINS {
            if slot.status.load(Ordering::Acquire) >= SLOT_DELIVERING {
                return slot.take();
            }
            // An expired budget ends the spin phase early: on a crowded
            // host a full yield round can outlast a short budget, and the
            // revocation machinery below must get its turn.
            if deadline_at.is_some_and(|at| Instant::now() >= at) {
                break;
            }
            std::thread::yield_now();
        }
        // Publish the park handle before advertising PARKED: the deliverer
        // reads it only after its swap observes PARKED (acquire), which
        // orders that read after this write.
        unsafe { *slot.waiter.get() = Some(std::thread::current()) };
        if slot
            .status
            .compare_exchange(SLOT_EMPTY, SLOT_PARKED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let mut deadline_at = deadline_at;
            while slot.status.load(Ordering::Acquire) == SLOT_PARKED {
                let wait = match deadline_at {
                    Some(at) => {
                        let now = Instant::now();
                        if now >= at {
                            if self.try_revoke(slot) {
                                self.metrics.deadline_expired.inc();
                                return Err(BellamyError::DeadlineExceeded);
                            }
                            // Already claimed by a batch: delivery is
                            // guaranteed, so stop watching the clock and
                            // wait it out on the backstop alone.
                            deadline_at = None;
                            PARK_BACKSTOP
                        } else {
                            (at - now).min(PARK_BACKSTOP)
                        }
                    }
                    None => PARK_BACKSTOP,
                };
                // Spurious returns (timeouts, stale unpark tokens from an
                // earlier slot) just re-check the status.
                std::thread::park_timeout(wait);
            }
        }
        slot.take()
    }

    /// Serves one claimed batch on *this* thread — the flat-combining
    /// fallback for when the serving loop is starved of CPU (the common
    /// case on single-core hosts: the loop cannot run while submitters
    /// hold the core). Returns false when there was nothing to claim.
    ///
    /// Safe to run concurrently with the loop and other assisters: the
    /// queue mutex makes claims disjoint, and whoever claims a request
    /// delivers it. Results stay bit-identical — the same
    /// [`Predictor::predict_batch`] math runs, just on a different thread.
    /// A panicking forward pass fails the whole claimed batch (every
    /// submitter gets the retryable [`BellamyError::BatchPanicked`] instead
    /// of hanging, and no stale request pointers survive in the scratch)
    /// before the panic resumes on this caller.
    fn assist_once(&self) -> bool {
        ASSIST_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let (requests, queries, results) = &mut *scratch;
            {
                let mut q = self.queue.lock();
                if q.pending.is_empty() {
                    return false;
                }
                // Append (not swap): `pending` keeps its preallocated
                // capacity so loop-side pushes never reallocate.
                requests.append(&mut q.pending);
                q.oldest = None;
            }
            self.space.notify_all();
            for r in requests.iter() {
                queries.push(PredictQuery {
                    scale_out: r.scale_out,
                    // SAFETY: the owning submitter is blocked until this
                    // batch delivers (see `Request`).
                    props: unsafe { &*r.props },
                });
            }
            let flush_started = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = faults::SERVE_FLUSH.check();
                Predictor::with_thread_local(|p| {
                    results.extend_from_slice(p.predict_batch(&self.state, queries));
                });
            }));
            match outcome {
                Ok(()) => {
                    let flush_elapsed = flush_started.elapsed();
                    self.record_flush(flush_elapsed);
                    self.metrics.flush_latency.record_duration(flush_elapsed);
                    self.metrics.batch_size.record(requests.len() as u64);
                    // Count before delivering, matching the serving loop:
                    // a caller whose query this assist served must never
                    // read stats that omit its own completed query.
                    self.metrics.queries.add(requests.len() as u64);
                    self.metrics.batches.inc();
                    self.metrics.assist_flushes.inc();
                    for (r, &pred) in requests.iter().zip(results.iter()) {
                        // SAFETY: as above — the submitter is blocked.
                        unsafe { &*r.slot }.deliver(Some(pred));
                    }
                }
                Err(payload) => {
                    // No request was delivered yet (delivery is the step
                    // after the forward pass): fail them all so their
                    // submitters unblock, clear the raw-pointer scratch,
                    // and let the panic continue on this caller.
                    self.metrics.panics.inc();
                    for r in requests.iter() {
                        // SAFETY: as above — the submitter is blocked.
                        unsafe { &*r.slot }.deliver_panicked();
                    }
                    requests.clear();
                    queries.clear();
                    results.clear();
                    std::panic::resume_unwind(payload);
                }
            }
            requests.clear();
            queries.clear();
            results.clear();
            true
        })
    }

    /// Eager-policy wait: serve unclaimed work ourselves until our own
    /// result lands. No grace yields before assisting — a yield on a busy
    /// single-core host costs two context switches, more than serving the
    /// claimable batch inline, while with free cores the spin-polling loop
    /// claims new work before our first status check anyway, so assists
    /// naturally fire only when the loop is starved of CPU.
    fn wait_with_assist(
        &self,
        slot: &ResponseSlot,
        deadline_at: Option<Instant>,
    ) -> Result<f64, BellamyError> {
        while slot.status.load(Ordering::Acquire) < SLOT_DELIVERING {
            if let Some(at) = deadline_at {
                if Instant::now() >= at {
                    if self.try_revoke(slot) {
                        self.metrics.deadline_expired.inc();
                        return Err(BellamyError::DeadlineExceeded);
                    }
                    // Claimed (possibly by this thread's own last assist):
                    // delivery is guaranteed, wait it out.
                    return self.wait_slot(slot, None);
                }
            }
            if !self.assist_once() {
                // Nothing claimable: our query is already in flight on the
                // loop (or another assister); park until it delivers.
                return self.wait_slot(slot, deadline_at);
            }
        }
        slot.take()
    }
}

/// The cross-caller micro-batcher for one served model: a preallocated
/// pending queue plus a persistent serving loop parked on a
/// [`bellamy_par::ThreadPool`]. See the module docs for the lifecycle.
struct MicroBatcher {
    shared: Arc<BatcherShared>,
    /// Owns the parked serving-loop job; dropped (and joined) after
    /// shutdown is signalled in [`MicroBatcher::drop`].
    _pool: ThreadPool,
}

impl MicroBatcher {
    fn new(state: Arc<ModelState>, cfg: BatcherConfig) -> Self {
        let cfg = BatcherConfig {
            max_batch: cfg.max_batch.max(1),
            ..cfg
        };
        let max_inflight = if cfg.max_inflight == 0 {
            cfg.max_batch.saturating_mul(4)
        } else {
            // Never smaller than the batch, so a full batch can form.
            cfg.max_inflight.max(cfg.max_batch)
        } as u64;
        let shared = Arc::new(BatcherShared {
            cfg,
            state,
            queue: Mutex::new(BatchQueue {
                pending: Vec::with_capacity(cfg.max_batch),
                oldest: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            loop_parked: std::sync::atomic::AtomicBool::new(false),
            space: Condvar::new(),
            max_inflight,
            inflight: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            flush_nanos: AtomicU64::new(0),
            metrics: BatcherMetrics::default(),
        });
        let pool = ThreadPool::named("bellamy-serve", 1);
        {
            let shared = Arc::clone(&shared);
            pool.execute(move || supervised_loop(shared));
        }
        Self {
            shared,
            _pool: pool,
        }
    }

    /// Submits one query and blocks until its result is delivered, it is
    /// shed at admission, or its deadline budget runs out.
    /// Allocation-free at steady state: the pending push stays within the
    /// preallocated capacity and the result slot lives on this stack frame.
    fn submit(&self, scale_out: f64, props: &ContextProperties) -> Result<f64, BellamyError> {
        self.submit_with_deadline(scale_out, props, self.shared.cfg.deadline)
    }

    fn submit_with_deadline(
        &self,
        scale_out: f64,
        props: &ContextProperties,
        deadline: Option<Duration>,
    ) -> Result<f64, BellamyError> {
        // Supplemental latency timing: one `Instant` pair plus one
        // histogram `fetch_add`, paid by 1 query in 8 (see
        // `SUBMIT_LATENCY_SAMPLE_PERIOD`; the sampler tick itself is one
        // relaxed `fetch_add`) and gated so the bench harness can measure
        // its cost. Still allocation-free either way.
        let started = (telemetry::timing_enabled() && self.shared.metrics.submit_sampler.tick())
            .then(Instant::now);
        let result = self.submit_inner(scale_out, props, deadline);
        if result.is_ok() {
            if let Some(t0) = started {
                self.shared
                    .metrics
                    .submit_latency
                    .record_duration(t0.elapsed());
            }
        }
        result
    }

    fn submit_inner(
        &self,
        scale_out: f64,
        props: &ContextProperties,
        deadline: Option<Duration>,
    ) -> Result<f64, BellamyError> {
        let shared = &*self.shared;
        // Degraded (repeated forward-pass panics): predict directly on this
        // thread — no queue, no admission window to consume.
        if shared.degraded.load(Ordering::Acquire) {
            return Ok(shared.predict_direct(scale_out, props));
        }
        // Admission control: shed instead of joining an unbounded convoy.
        if shared.inflight.fetch_add(1, Ordering::AcqRel) >= shared.max_inflight {
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
            shared.metrics.shed.inc();
            return Err(BellamyError::Overloaded {
                retry_after_hint: shared.retry_after_hint(),
            });
        }
        let _admission = AdmissionGuard(&shared.inflight);
        let deadline_at = deadline.map(|d| Instant::now() + d);
        let slot = ResponseSlot::new();
        {
            let mut q = shared.queue.lock();
            loop {
                if shared.degraded.load(Ordering::Acquire) {
                    drop(q);
                    return Ok(shared.predict_direct(scale_out, props));
                }
                if q.shutdown {
                    return Err(BellamyError::ServiceStopped);
                }
                if q.pending.len() < shared.cfg.max_batch {
                    break;
                }
                // The batch is full and mid-flush; wait for slots to free —
                // within the deadline budget, if the query carries one.
                if shared.loop_parked.load(Ordering::Acquire) {
                    shared.work.notify_one();
                }
                match deadline_at {
                    Some(at) => {
                        let now = Instant::now();
                        if now >= at {
                            shared.metrics.deadline_expired.inc();
                            return Err(BellamyError::DeadlineExceeded);
                        }
                        let _ = shared.space.wait_for(&mut q, at - now);
                    }
                    None => shared.space.wait(&mut q),
                }
            }
            if q.pending.is_empty() {
                q.oldest = Some(Instant::now());
            }
            q.pending.push(Request {
                scale_out,
                props,
                slot: &slot,
            });
        }
        // The loop normally yield-polls the queue; pay the notify syscall
        // only when it actually parked.
        if shared.loop_parked.load(Ordering::Acquire) {
            shared.work.notify_one();
        }
        match shared.cfg.policy {
            // Eager: combine on this thread when the loop is starved.
            FlushPolicy::Eager => shared.wait_with_assist(&slot, deadline_at),
            // Deadline: the loop alone decides when to flush.
            FlushPolicy::Deadline => shared.wait_slot(&slot, deadline_at),
        }
    }

    fn stats(&self) -> BatcherStats {
        let m = &self.shared.metrics;
        BatcherStats {
            queries: m.queries.get(),
            batches: m.batches.get(),
            capacity_flushes: m.capacity_flushes.get(),
            timeout_flushes: m.timeout_flushes.get(),
            quiesce_flushes: m.quiesce_flushes.get(),
            assist_flushes: m.assist_flushes.get(),
            shutdown_flushes: m.shutdown_flushes.get(),
            shed: m.shed.get(),
            deadline_expired: m.deadline_expired.get(),
            panics: m.panics.get(),
            restarts: m.restarts.get(),
            degraded: self.shared.degraded.load(Ordering::Acquire),
            ..BatcherStats::default()
        }
        .with_kernel_resolution()
    }

    /// Contributes this batcher's metrics to a telemetry snapshot, labelled
    /// by the served model's registry key.
    fn collect_telemetry(&self, snap: &mut TelemetrySnapshot) {
        let model = self.shared.model_label().to_string();
        let m = &self.shared.metrics;
        let with_model = |extra: Option<(&'static str, &'static str)>| {
            let mut labels = vec![("model", model.clone())];
            if let Some((k, v)) = extra {
                labels.push((k, v.to_string()));
            }
            labels
        };
        snap.push_counter(
            "bellamy_serve_queries_total",
            with_model(None),
            "queries",
            "Queries served through the micro-batcher.",
            m.queries.get(),
        );
        snap.push_counter(
            "bellamy_serve_batches_total",
            with_model(None),
            "batches",
            "Batches flushed to the predictor.",
            m.batches.get(),
        );
        for (reason, counter) in [
            ("capacity", &m.capacity_flushes),
            ("timeout", &m.timeout_flushes),
            ("quiesce", &m.quiesce_flushes),
            ("assist", &m.assist_flushes),
            ("shutdown", &m.shutdown_flushes),
        ] {
            snap.push_counter(
                "bellamy_serve_flushes_total",
                with_model(Some(("reason", reason))),
                "flushes",
                "Batch flushes by trigger reason.",
                counter.get(),
            );
        }
        snap.push_counter(
            "bellamy_serve_shed_total",
            with_model(None),
            "queries",
            "Queries shed at admission (max_inflight reached).",
            m.shed.get(),
        );
        snap.push_counter(
            "bellamy_serve_deadline_expired_total",
            with_model(None),
            "queries",
            "Queries revoked because their deadline budget elapsed.",
            m.deadline_expired.get(),
        );
        snap.push_counter(
            "bellamy_serve_panics_total",
            with_model(None),
            "panics",
            "Forward-pass panics absorbed by the supervised loop.",
            m.panics.get(),
        );
        snap.push_counter(
            "bellamy_serve_restarts_total",
            with_model(None),
            "restarts",
            "Serving-loop respawns after a panic.",
            m.restarts.get(),
        );
        snap.push_gauge(
            "bellamy_serve_degraded",
            with_model(None),
            "",
            "1 once repeated panics degraded this batcher to direct prediction.",
            self.shared.degraded.load(Ordering::Acquire) as i64,
        );
        snap.push_gauge(
            "bellamy_serve_queue_depth",
            with_model(None),
            "queries",
            "Queries currently admitted (queued or mid-flush).",
            self.shared.inflight.load(Ordering::Relaxed) as i64,
        );
        snap.push_histogram(
            "bellamy_serve_submit_latency_seconds",
            with_model(None),
            "seconds",
            "Submit-to-response latency, sampled 1 query in 8.",
            m.submit_latency.snapshot(),
        );
        snap.push_histogram(
            "bellamy_serve_flush_latency_seconds",
            with_model(None),
            "seconds",
            "Per-batch forward-pass latency.",
            m.flush_latency.snapshot(),
        );
        snap.push_histogram(
            "bellamy_serve_batch_size",
            with_model(None),
            "queries",
            "Distribution of claimed batch sizes.",
            m.batch_size.snapshot(),
        );
    }
}

/// Decrements the admission window on every `submit` exit — delivered,
/// deadline-revoked, or failed — including panics propagating out of an
/// assist flush.
struct AdmissionGuard<'a>(&'a AtomicU64);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        // Wake the loop (to drain and exit) and any slot waiters (to error
        // out); then `_pool` drops and joins the loop job.
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }
}

/// Marks the batcher stopped when the serving loop exits — including by
/// panic — so parked and future submitters error out instead of hanging.
/// On a *degraded* exit the stragglers are served one final time (direct
/// batch on this thread) instead of failed: their submitters enqueued
/// before the degrade flag diverted traffic, and nobody else will ever
/// claim them.
struct LoopGuard(Arc<BatcherShared>);

impl Drop for LoopGuard {
    fn drop(&mut self) {
        let degraded = self.0.degraded.load(Ordering::Acquire);
        let drained = {
            let mut q = self.0.queue.lock();
            q.shutdown = true;
            q.oldest = None;
            std::mem::take(&mut q.pending)
        };
        if degraded {
            serve_drained(&self.0, &drained);
        } else {
            for request in &drained {
                // SAFETY: the submitter is still blocked in `submit`.
                let slot = unsafe { &*request.slot };
                slot.deliver(None);
            }
        }
        self.0.space.notify_all();
    }
}

/// Best-effort final drain: one direct batched pass over `requests`,
/// delivering results — or panic-failures, should the model panic once
/// more — so every straggler's submitter unblocks.
fn serve_drained(shared: &BatcherShared, requests: &[Request]) {
    if requests.is_empty() {
        return;
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Predictor::with_thread_local(|p| {
            let queries: Vec<PredictQuery<'_>> = requests
                .iter()
                .map(|r| PredictQuery {
                    scale_out: r.scale_out,
                    // SAFETY: the submitter is blocked in `submit` until
                    // this drain delivers.
                    props: unsafe { &*r.props },
                })
                .collect();
            p.predict_batch(&shared.state, &queries).to_vec()
        })
    }));
    match outcome {
        Ok(results) => {
            shared.metrics.batch_size.record(requests.len() as u64);
            shared.metrics.queries.add(requests.len() as u64);
            shared.metrics.batches.inc();
            shared.metrics.shutdown_flushes.inc();
            for (r, &pred) in requests.iter().zip(results.iter()) {
                // SAFETY: as above — the submitter is blocked.
                unsafe { &*r.slot }.deliver(Some(pred));
            }
        }
        Err(_) => {
            shared.metrics.panics.inc();
            for r in requests {
                // SAFETY: as above — the submitter is blocked.
                unsafe { &*r.slot }.deliver_panicked();
            }
        }
    }
}

/// Supervises the serving loop. A panicking forward pass has already
/// failed its own batch (see `serve_rounds`); here the panic is absorbed,
/// counted, and the loop respawned with capped exponential backoff — one
/// bad batch never takes the service down. [`PANIC_DEGRADE_LIMIT`] panics
/// within [`PANIC_WINDOW`] stop the respawning: the batcher *degrades* to
/// direct per-caller prediction (reduced coalescing, but a deterministically
/// panicking model fails only the callers that hit it, and a recovering one
/// keeps serving) instead of burning a core on a crash loop.
fn supervised_loop(shared: Arc<BatcherShared>) {
    // The guard lives on the *supervisor* frame: an inner panic must not
    // mark the batcher stopped — only a real exit (shutdown or degrade)
    // drains stragglers and turns submitters away.
    let _guard = LoopGuard(Arc::clone(&shared));
    let mut recent: Vec<Instant> = Vec::new();
    loop {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serve_rounds(&shared)));
        match outcome {
            // Clean shutdown; the guard drains any stragglers.
            Ok(()) => return,
            Err(_) => {
                shared.metrics.panics.inc();
                let now = Instant::now();
                recent.retain(|t| now.duration_since(*t) <= PANIC_WINDOW);
                recent.push(now);
                if recent.len() >= PANIC_DEGRADE_LIMIT {
                    // Divert future submitters to direct prediction, then
                    // exit: the `LoopGuard` serves whatever is still queued
                    // one final time on this thread.
                    shared.degraded.store(true, Ordering::Release);
                    telemetry::events().record(
                        event_kind::BATCHER_DEGRADED,
                        format!(
                            "model `{}`: {} panics within {:?}; degraded to direct prediction",
                            shared.model_label(),
                            recent.len(),
                            PANIC_WINDOW
                        ),
                    );
                    return;
                }
                shared.metrics.restarts.inc();
                telemetry::events().record(
                    event_kind::LOOP_RESTART,
                    format!(
                        "model `{}`: serving loop respawned after panic {} in window",
                        shared.model_label(),
                        recent.len()
                    ),
                );
                let exp = (recent.len() - 1).min(16) as u32;
                let backoff = RESTART_BACKOFF_BASE
                    .saturating_mul(1 << exp)
                    .min(RESTART_BACKOFF_CAP);
                std::thread::sleep(backoff);
            }
        }
    }
}

/// The persistent serving loop: collect → flush → predict → deliver.
/// Returns on shutdown; panics propagate to `supervised_loop` *after*
/// failing the in-flight batch.
fn serve_rounds(shared: &BatcherShared) {
    let cap = shared.cfg.max_batch;
    let eager = shared.cfg.policy == FlushPolicy::Eager;
    let mut predictor = Predictor::new();
    let mut processing: Vec<Request> = Vec::with_capacity(cap);
    let mut queries: Vec<PredictQuery<'static>> = Vec::with_capacity(cap);
    let mut results: Vec<f64> = Vec::with_capacity(cap);

    loop {
        // Collect until a flush condition holds. The lock is dropped
        // between polls so submitters enqueue while we yield.
        let mut idle_spins = 0usize;
        let mut seen_len = 0usize;
        let (mut q, reason) = loop {
            let mut q = shared.queue.lock();
            if q.shutdown {
                if q.pending.is_empty() {
                    drop(q);
                    return;
                }
                break (q, FlushReason::Shutdown);
            }
            let len = q.pending.len();
            if len >= cap {
                break (q, FlushReason::Capacity);
            }
            if len == 0 {
                seen_len = 0;
                if idle_spins < IDLE_SPINS {
                    idle_spins += 1;
                    drop(q);
                    std::thread::yield_now();
                    continue;
                }
                // Traffic paused: park until a submitter notifies. The
                // flag is set under the lock, so a submitter either sees
                // it (and notifies) or pushed before we sleep (and we see
                // the non-empty queue on the next iteration).
                shared.loop_parked.store(true, Ordering::Release);
                shared.work.wait(&mut q);
                shared.loop_parked.store(false, Ordering::Release);
                idle_spins = 0;
                drop(q);
                continue;
            }
            idle_spins = 0;
            let deadline = q.oldest.expect("non-empty queue has an oldest") + shared.cfg.max_wait;
            let now = Instant::now();
            if now >= deadline {
                break (q, FlushReason::Timeout);
            }
            if eager {
                if len == seen_len {
                    // One yield passed with no new arrival: quiesced.
                    break (q, FlushReason::Quiesce);
                }
                seen_len = len;
                drop(q);
                std::thread::yield_now();
            } else {
                // Parked in the timed wait too: submitters must notify so
                // a capacity fill flushes now, not at the deadline.
                shared.loop_parked.store(true, Ordering::Release);
                let _ = shared.work.wait_for(&mut q, deadline - now);
                shared.loop_parked.store(false, Ordering::Release);
                drop(q);
            }
        };
        std::mem::swap(&mut q.pending, &mut processing);
        q.oldest = None;
        drop(q);
        shared.space.notify_all();

        // One batched forward pass for the whole flush. The 'static
        // lifetime is a local fiction: the queries only live for this call,
        // while every referenced caller is blocked in `submit`.
        for request in &processing {
            queries.push(PredictQuery {
                scale_out: request.scale_out,
                props: unsafe { &*request.props },
            });
        }
        let flush_started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = faults::SERVE_FLUSH.check();
            results.extend_from_slice(predictor.predict_batch(&shared.state, &queries));
        }));
        if let Err(payload) = outcome {
            // The claimed batch never reached delivery (delivery is the
            // step after the forward pass). Fail every claimed submitter
            // so no one hangs — `LoopGuard` only covers still-pending
            // requests — then hand the panic to `supervised_loop`, which
            // counts it and respawns this loop.
            for request in &processing {
                // SAFETY: the submitter is blocked in `submit`.
                unsafe { &*request.slot }.deliver_panicked();
            }
            std::panic::resume_unwind(payload);
        }
        let flush_elapsed = flush_started.elapsed();
        shared.record_flush(flush_elapsed);
        shared.metrics.flush_latency.record_duration(flush_elapsed);
        shared.metrics.batch_size.record(processing.len() as u64);

        shared.metrics.queries.add(processing.len() as u64);
        shared.metrics.batches.inc();
        match reason {
            FlushReason::Capacity => shared.metrics.capacity_flushes.inc(),
            FlushReason::Timeout => shared.metrics.timeout_flushes.inc(),
            FlushReason::Quiesce => shared.metrics.quiesce_flushes.inc(),
            FlushReason::Shutdown => shared.metrics.shutdown_flushes.inc(),
        };

        for (request, &pred) in processing.iter().zip(results.iter()) {
            // SAFETY: the submitter is blocked in `submit` until this
            // delivery.
            let slot = unsafe { &*request.slot };
            slot.deliver(Some(pred));
        }
        results.clear();
        queries.clear();
        processing.clear();
    }
}

/// The service's fine-tuning defaults, applied by
/// [`Service::finetuned_client`].
#[derive(Debug, Clone)]
pub struct FinetunePolicy {
    /// Fine-tuning budget and optimizer settings.
    pub config: FinetuneConfig,
    /// Which components to freeze/reset (paper §IV-C2).
    pub strategy: ReuseStrategy,
    /// Seed for the fine-tuning run.
    pub seed: u64,
}

impl Default for FinetunePolicy {
    fn default() -> Self {
        Self {
            config: FinetuneConfig::default(),
            strategy: ReuseStrategy::PartialUnfreeze,
            seed: 0,
        }
    }
}

struct ServiceInner {
    hub: Arc<ModelHub>,
    batcher_cfg: BatcherConfig,
    finetune: FinetunePolicy,
    /// One micro-batcher per served model, keyed by snapshot identity
    /// (`Arc` address — stable because each batcher holds its state alive).
    /// Created lazily on the first single-query `predict` through a client;
    /// clients that only run batched calls never spawn one.
    batchers: Mutex<HashMap<usize, Arc<MicroBatcher>>>,
}

impl ServiceInner {
    fn batcher_for(self: &Arc<Self>, state: &Arc<ModelState>) -> Arc<MicroBatcher> {
        let id = Arc::as_ptr(state) as usize;
        let mut batchers = self.batchers.lock();
        // Reap batchers no client references anymore (strong count 1 =
        // registry only; clients cache the Arc in their OnceLock, and the
        // map lock serializes every clone out of the registry, so the
        // check cannot race a new borrower). Without this, a long-running
        // service creating clients per context would pin one serving
        // thread + one ModelState per served snapshot forever.
        let dead: Vec<usize> = batchers
            .iter()
            .filter(|(&key, batcher)| key != id && Arc::strong_count(batcher) == 1)
            .map(|(&key, _)| key)
            .collect();
        let reaped: Vec<Arc<MicroBatcher>> =
            dead.iter().filter_map(|key| batchers.remove(key)).collect();
        let batcher =
            Arc::clone(batchers.entry(id).or_insert_with(|| {
                Arc::new(MicroBatcher::new(Arc::clone(state), self.batcher_cfg))
            }));
        drop(batchers);
        // Dropping joins each reaped serving loop — off the lock, so other
        // clients are never blocked on a thread wind-down.
        drop(reaped);
        batcher
    }
}

/// Builder for [`Service`]; see [`Service::builder`].
#[derive(Default)]
pub struct ServiceBuilder {
    hub: Option<Arc<ModelHub>>,
    hub_dir: Option<PathBuf>,
    recall_mode: Option<RecallMode>,
    batcher: Option<BatcherConfig>,
    finetune: Option<FinetunePolicy>,
    kernel: Option<TierRequest>,
}

impl ServiceBuilder {
    /// Serves from an existing hub (shared with other services or direct
    /// hub users). Overrides [`ServiceBuilder::hub_dir`].
    pub fn hub(mut self, hub: Arc<ModelHub>) -> Self {
        self.hub = Some(hub);
        self
    }

    /// Serves from a disk-backed hub at `dir` (created if absent); two
    /// services pointed at the same directory share the pretrained
    /// registry across processes and restarts.
    pub fn hub_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.hub_dir = Some(dir.into());
        self
    }

    /// How a [`ServiceBuilder::hub_dir`] hub recalls checkpoints from
    /// disk (mmap by default; see [`RecallMode`]). Ignored when an
    /// existing hub is supplied via [`ServiceBuilder::hub`].
    pub fn recall_mode(mut self, mode: RecallMode) -> Self {
        self.recall_mode = Some(mode);
        self
    }

    /// Overrides the micro-batcher flush bounds.
    pub fn batcher(mut self, cfg: BatcherConfig) -> Self {
        self.batcher = Some(cfg);
        self
    }

    /// Sets the fine-tuning defaults used by [`Service::finetuned_client`].
    pub fn finetune_policy(mut self, policy: FinetunePolicy) -> Self {
        self.finetune = Some(policy);
        self
    }

    /// Requests a kernel tier for this **process** (e.g.
    /// [`TierRequest::Fma`] for the ULP-bounded Fast tier; see
    /// `bellamy_linalg::kernels` for the tier contract). Kernel dispatch
    /// resolves once per process: a programmatic request made before the
    /// first kernel runs takes precedence over `BELLAMY_KERNEL`; after
    /// that, the standing resolution wins and this call has no effect.
    /// Either way [`ModelClient::batcher_stats`] reports requested vs
    /// resolved so a lost or degraded request is visible, and an
    /// unsupported tier logs a one-time warning while degrading
    /// (fma → simd → scalar) rather than failing the build.
    pub fn kernel_tier(mut self, tier: TierRequest) -> Self {
        self.kernel = Some(tier);
        self
    }

    /// Builds the service. Fails only when a [`ServiceBuilder::hub_dir`]
    /// cannot be created.
    pub fn build(self) -> Result<Service, BellamyError> {
        if let Some(tier) = self.kernel {
            // First resolution wins process-wide; a lost request is
            // surfaced through stats rather than failing the build.
            let _ = kernels::request_tier(tier);
        }
        let hub = match (self.hub, self.hub_dir) {
            (Some(hub), _) => hub,
            (None, Some(dir)) => {
                let mut hub = ModelHub::at(dir)?;
                if let Some(mode) = self.recall_mode {
                    hub = hub.with_recall_mode(mode);
                }
                Arc::new(hub)
            }
            (None, None) => Arc::new(ModelHub::in_memory()),
        };
        Ok(Service {
            inner: Arc::new(ServiceInner {
                hub,
                batcher_cfg: self.batcher.unwrap_or_default(),
                finetune: self.finetune.unwrap_or_default(),
                batchers: Mutex::new(HashMap::new()),
            }),
        })
    }
}

/// The serving front door: one shared hub, one micro-batcher per served
/// model, cheap [`ModelClient`] handles for callers. Cloning a `Service`
/// clones a handle to the same service. See the module docs.
#[derive(Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

impl Service {
    /// Starts building a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// A service over a fresh in-memory hub with default batching and
    /// fine-tuning policies.
    pub fn in_memory() -> Self {
        Self::builder()
            .build()
            .expect("in-memory build cannot fail")
    }

    /// The underlying model hub (for direct registry operations).
    pub fn hub(&self) -> &ModelHub {
        &self.inner.hub
    }

    /// Hub operation counters.
    pub fn stats(&self) -> HubStats {
        self.inner.hub.stats()
    }

    /// A typed point-in-time snapshot of every metric this service can see:
    /// per-model serve metrics (latency histograms, queue depth, shed /
    /// deadline / panic / restart counts), hub recall metrics (per-mode
    /// latency, retries, quarantines), process-wide predictor and train
    /// metrics, the kernel resolution, and the recent structured events.
    /// Render it with [`TelemetrySnapshot::to_json`] or
    /// [`TelemetrySnapshot::to_prometheus`].
    ///
    /// Reading is lock-free on the hot-path atomics (the per-service batcher
    /// registry lock is held only to walk the batcher list) and safe to call
    /// from a scrape loop at any frequency.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        let res = kernels::resolution();
        let source = match res.source {
            RequestSource::Default => "default",
            RequestSource::Env => "env",
            RequestSource::Program => "program",
        };
        snap.push_gauge(
            "bellamy_kernel_info",
            vec![
                ("requested", res.requested_name().to_string()),
                ("resolved", res.resolved_name().to_string()),
                ("source", source.to_string()),
            ],
            "",
            "Kernel dispatch resolution for this process (constant 1).",
            1,
        );
        snap.push_gauge(
            "bellamy_kernel_degraded",
            Vec::new(),
            "",
            "1 if the requested kernel tier was unavailable and dispatch degraded.",
            res.degraded as i64,
        );
        self.inner.hub.collect_telemetry(&mut snap);
        {
            let batchers = self.inner.batchers.lock();
            for batcher in batchers.values() {
                batcher.collect_telemetry(&mut snap);
            }
        }
        let g = telemetry::global();
        snap.push_histogram(
            "bellamy_predict_batch_rows",
            Vec::new(),
            "rows",
            "Rows per forward pass (process-wide, direct and batched paths).",
            g.predict_batch_rows.snapshot(),
        );
        snap.push_counter(
            "bellamy_predict_queries_total",
            Vec::new(),
            "rows",
            "Total rows pushed through the forward pass (process-wide).",
            g.predict_queries.get(),
        );
        snap.push_counter(
            "bellamy_train_steps_total",
            Vec::new(),
            "steps",
            "Total optimizer steps taken (process-wide).",
            g.train_steps.get(),
        );
        snap.push_histogram(
            "bellamy_train_step_latency_seconds",
            Vec::new(),
            "seconds",
            "Per-step optimizer wall time (process-wide).",
            g.train_step_nanos.snapshot(),
        );
        snap.set_events(telemetry::events().recent());
        snap
    }

    /// A client for the model registered under `key` (memory, then disk).
    /// Never trains.
    pub fn client(&self, key: &ModelKey) -> Result<ModelClient, BellamyError> {
        Ok(self.client_for_state(self.inner.hub.recall(key)?))
    }

    /// A client for `key`, pre-training on `samples()` when the hub has
    /// never seen the key (see [`ModelHub::recall_or_pretrain`]).
    pub fn client_or_pretrain(
        &self,
        key: &ModelKey,
        cfg: &PretrainConfig,
        seed: u64,
        samples: impl FnOnce() -> Vec<TrainingSample>,
    ) -> Result<ModelClient, BellamyError> {
        let state = self.inner.hub.recall_or_pretrain(key, cfg, seed, samples)?;
        Ok(self.client_for_state(state))
    }

    /// Publishes an externally trained model under `key` and returns a
    /// client serving it.
    pub fn publish(&self, key: &ModelKey, model: &Bellamy) -> Result<ModelClient, BellamyError> {
        Ok(self.client_for_state(self.inner.hub.publish(key, model)?))
    }

    /// A client for the fine-tuned descendant of `key` in `context`, using
    /// the service's [`FinetunePolicy`] (see
    /// [`ServiceBuilder::finetune_policy`]). Descendants are cached in the
    /// hub's LRU, so identical requests share one fine-tuning run.
    pub fn finetuned_client(
        &self,
        key: &ModelKey,
        context: &str,
        samples: &[TrainingSample],
    ) -> Result<ModelClient, BellamyError> {
        let policy = self.inner.finetune.clone();
        self.finetuned_client_with(
            key,
            context,
            samples,
            &policy.config,
            policy.strategy,
            policy.seed,
        )
    }

    /// [`Service::finetuned_client`] with explicit fine-tuning settings
    /// overriding the service policy.
    pub fn finetuned_client_with(
        &self,
        key: &ModelKey,
        context: &str,
        samples: &[TrainingSample],
        cfg: &FinetuneConfig,
        strategy: ReuseStrategy,
        seed: u64,
    ) -> Result<ModelClient, BellamyError> {
        let state = self
            .inner
            .hub
            .fine_tuned_for(key, context, samples, cfg, strategy, seed)?;
        Ok(self.client_for_state(state))
    }

    /// A client serving an arbitrary snapshot — models that live outside
    /// the hub (locally trained baselines, ad hoc states). Clients for the
    /// same `Arc` share one micro-batcher.
    pub fn client_for_state(&self, state: Arc<ModelState>) -> ModelClient {
        ModelClient {
            state,
            service: Arc::clone(&self.inner),
            batcher: OnceLock::new(),
        }
    }
}

/// A cheap, cloneable handle serving one model through the service: single
/// queries are micro-batched across all callers of that model; batched
/// entry points run directly on this thread's predictor arena. Create via
/// [`Service::client`] and friends; clone freely (clones share the same
/// underlying state and batcher).
pub struct ModelClient {
    state: Arc<ModelState>,
    service: Arc<ServiceInner>,
    /// Lazily resolved micro-batcher (shared through the service registry,
    /// cached here so steady-state submits skip the registry lock).
    batcher: OnceLock<Arc<MicroBatcher>>,
}

impl Clone for ModelClient {
    fn clone(&self) -> Self {
        let batcher = OnceLock::new();
        if let Some(b) = self.batcher.get() {
            let _ = batcher.set(Arc::clone(b));
        }
        Self {
            state: Arc::clone(&self.state),
            service: Arc::clone(&self.service),
            batcher,
        }
    }
}

impl std::fmt::Debug for ModelClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelClient")
            .field("registry_key", &self.state.registry_key())
            .field("params_fingerprint", &self.state.params_fingerprint())
            .finish_non_exhaustive()
    }
}

impl ModelClient {
    /// The served snapshot.
    pub fn state(&self) -> &Arc<ModelState> {
        &self.state
    }

    /// The hub registry key of the served model, if it has one.
    pub fn registry_key(&self) -> Option<&str> {
        self.state.registry_key()
    }

    fn batcher(&self) -> &Arc<MicroBatcher> {
        self.batcher
            .get_or_init(|| self.service.batcher_for(&self.state))
    }

    /// Predicts the runtime (seconds) for one scale-out in a described
    /// context, routed through the cross-caller micro-batcher: concurrent
    /// callers' queries coalesce into one batched forward pass, with
    /// results bit-identical to a direct [`Predictor::predict_one`] call.
    /// Allocation-free at steady state.
    pub fn predict(&self, scale_out: f64, props: &ContextProperties) -> Result<f64, BellamyError> {
        self.batcher().submit(scale_out, props)
    }

    /// [`ModelClient::predict`] with an explicit deadline budget overriding
    /// [`BatcherConfig::deadline`]. If the budget elapses while the query
    /// is still queued (a full admission window ahead of it, a saturated
    /// predictor), the query is revoked and
    /// [`BellamyError::DeadlineExceeded`] returned; once a batch has
    /// claimed the query, its result is returned even if delivery lands
    /// marginally past the budget. See the module docs' failure-semantics
    /// table.
    pub fn predict_with_deadline(
        &self,
        scale_out: f64,
        props: &ContextProperties,
        deadline: Duration,
    ) -> Result<f64, BellamyError> {
        self.batcher()
            .submit_with_deadline(scale_out, props, Some(deadline))
    }

    /// Predicted runtimes for a caller-assembled batch, in query order.
    /// Already batched, so it bypasses the micro-batcher and runs on this
    /// thread's warm predictor arena.
    pub fn predict_batch(&self, queries: &[PredictQuery<'_>]) -> Vec<f64> {
        Predictor::with_thread_local(|p| p.predict_batch(&self.state, queries).to_vec())
    }

    /// Predicted runtimes for one context swept over many scale-outs (the
    /// §IV allocation-search shape). Bypasses the micro-batcher.
    pub fn predict_sweep(&self, props: &ContextProperties, scale_outs: &[f64]) -> Vec<f64> {
        Predictor::with_thread_local(|p| p.predict_sweep(&self.state, props, scale_outs).to_vec())
    }

    /// The smallest scale-out in `[lo, hi]` predicted to meet `target_s`,
    /// or `None` when no candidate does. The candidate curve is evaluated
    /// in one batched sweep.
    pub fn recommend_scale_out(
        &self,
        props: &ContextProperties,
        target_s: f64,
        lo: u32,
        hi: u32,
    ) -> Option<ScaleOutRecommendation> {
        let xs: Vec<f64> = (lo..=hi).map(f64::from).collect();
        let curve = self.predict_sweep(props, &xs);
        min_scale_out_meeting(|x| curve[(x - lo) as usize], target_s, lo, hi)
    }

    /// The cheapest scale-out in `[lo, hi]` under a per-machine-hour price,
    /// optionally subject to a runtime deadline. One batched sweep.
    pub fn cheapest_scale_out(
        &self,
        props: &ContextProperties,
        price_per_machine_hour: f64,
        target_s: Option<f64>,
        lo: u32,
        hi: u32,
    ) -> Option<ScaleOutRecommendation> {
        let xs: Vec<f64> = (lo..=hi).map(f64::from).collect();
        let curve = self.predict_sweep(props, &xs);
        cheapest_scale_out(
            |x| curve[(x - lo) as usize],
            price_per_machine_hour,
            target_s,
            lo,
            hi,
        )
    }

    /// Micro-batcher counters for this model (zeros until the first
    /// single-query [`ModelClient::predict`] — through *any* client of the
    /// state — spins the batcher up).
    pub fn batcher_stats(&self) -> BatcherStats {
        if let Some(b) = self.batcher.get() {
            return b.stats();
        }
        // This handle never submitted, but a clone may have: consult the
        // service registry without creating a batcher.
        let id = Arc::as_ptr(&self.state) as usize;
        match self.service.batchers.lock().get(&id) {
            Some(b) => b.stats(),
            None => BatcherStats::default().with_kernel_resolution(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BellamyConfig;
    use bellamy_encoding::PropertyValue;

    fn tiny_state() -> Arc<ModelState> {
        let samples: Vec<TrainingSample> = (0..6)
            .map(|i| TrainingSample {
                scale_out: 2.0 + i as f64,
                runtime_s: 100.0 - 5.0 * i as f64,
                props: ContextProperties {
                    essential: vec![PropertyValue::Number(1024 + i as u64)],
                    optional: vec![],
                },
            })
            .collect();
        let mut model = Bellamy::new(BellamyConfig::default(), 1);
        model.fit_normalization(&samples);
        model.snapshot().expect("fitted")
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let service = Service::builder()
            .batcher(BatcherConfig {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
                ..BatcherConfig::default()
            })
            .finetune_policy(FinetunePolicy {
                seed: 42,
                ..FinetunePolicy::default()
            })
            .build()
            .expect("in-memory service");
        assert_eq!(service.inner.batcher_cfg.max_batch, 8);
        assert_eq!(service.inner.finetune.seed, 42);
        assert_eq!(service.stats(), HubStats::default());
    }

    #[test]
    fn client_of_unknown_key_errors() {
        let service = Service::in_memory();
        let key = ModelKey::new("sgd", "runtime", &BellamyConfig::default());
        assert!(matches!(
            service.client(&key),
            Err(BellamyError::Hub(crate::hub::HubError::UnknownModel(_)))
        ));
    }

    #[test]
    fn clients_for_one_state_share_a_batcher() {
        let service = Service::in_memory();
        let state = tiny_state();
        let props = ContextProperties {
            essential: vec![PropertyValue::Number(1024)],
            optional: vec![],
        };
        let a = service.client_for_state(Arc::clone(&state));
        let b = a.clone();
        let c = service.client_for_state(state);
        let direct = a.predict(4.0, &props).unwrap();
        let clone_pred = b.predict(4.0, &props).unwrap();
        let fresh = c.predict(4.0, &props).unwrap();
        assert_eq!(direct.to_bits(), clone_pred.to_bits());
        assert_eq!(direct.to_bits(), fresh.to_bits());
        // All three handles route through one batcher.
        assert!(Arc::ptr_eq(a.batcher(), b.batcher()));
        assert!(Arc::ptr_eq(a.batcher(), c.batcher()));
        assert_eq!(a.batcher_stats().queries, 3);
        assert_eq!(service.inner.batchers.lock().len(), 1);
    }

    #[test]
    fn dead_batchers_are_reaped_when_new_ones_spin_up() {
        let service = Service::in_memory();
        let props = ContextProperties {
            essential: vec![PropertyValue::Number(1024)],
            optional: vec![],
        };
        {
            let first = service.client_for_state(tiny_state());
            first.predict(4.0, &props).unwrap();
            assert_eq!(service.inner.batchers.lock().len(), 1);
        } // `first` (and its cached batcher Arc) dropped: registry-only now.
        let second = service.client_for_state(tiny_state());
        second.predict(4.0, &props).unwrap();
        assert_eq!(
            service.inner.batchers.lock().len(),
            1,
            "spinning up a new batcher must reap client-less ones"
        );
    }

    #[test]
    fn submit_after_shutdown_errors_instead_of_hanging() {
        let state = tiny_state();
        let batcher = MicroBatcher::new(state, BatcherConfig::default());
        batcher.shared.queue.lock().shutdown = true;
        let props = ContextProperties {
            essential: vec![PropertyValue::Number(7)],
            optional: vec![],
        };
        assert!(matches!(
            batcher.submit(4.0, &props),
            Err(BellamyError::ServiceStopped)
        ));
    }

    #[test]
    fn recommendations_come_from_the_swept_curve() {
        let service = Service::in_memory();
        let client = service.client_for_state(tiny_state());
        let props = ContextProperties {
            essential: vec![PropertyValue::Number(2048)],
            optional: vec![],
        };
        let xs: Vec<f64> = (2..=12).map(f64::from).collect();
        let curve = client.predict_sweep(&props, &xs);
        // A target below the whole curve is unreachable; the max is always
        // reachable.
        let max = curve.iter().cloned().fold(f64::MIN, f64::max);
        let min = curve.iter().cloned().fold(f64::MAX, f64::min);
        assert!(client
            .recommend_scale_out(&props, min - 1.0, 2, 12)
            .is_none());
        let rec = client
            .recommend_scale_out(&props, max, 2, 12)
            .expect("max is reachable");
        assert_eq!(
            rec.predicted_runtime_s.to_bits(),
            curve[(rec.scale_out - 2) as usize].to_bits(),
            "recommendation must quote the swept curve"
        );
        let cheapest = client
            .cheapest_scale_out(&props, 1.0, None, 2, 12)
            .expect("unconstrained cheapest exists");
        // Untrained weights may predict negative runtimes; the cost just
        // has to be the curve's minimum, finite, and curve-derived.
        assert!(cheapest.predicted_cost.is_finite());
        assert_eq!(
            cheapest.predicted_runtime_s.to_bits(),
            curve[(cheapest.scale_out - 2) as usize].to_bits()
        );
    }
}
